//! Sparse raw memory with implementation-defined junk.
//!
//! The VM models a flat 64-bit address space in 4 KiB pages. A page
//! materializes on first touch *filled with junk bytes* that are a
//! deterministic function of (implementation seed, address) — this is what
//! "uninitialized memory" reads as under a given compiler implementation.
//! Determinism per binary keeps program output deterministic (CompDiff's
//! precondition) while different implementations see different junk.
//!
//! ## Persistent-mode layout
//!
//! Pages live in an arena (`Vec<Page>`) indexed by a page-number map, so a
//! [`reset`](Memory::reset) between executions keeps every allocation.
//! Each page carries an *epoch* and a *dirty watermark* (the byte range
//! written since its last restore) plus a snapshot of its pristine junk:
//! on the first touch after a reset, a written page is restored by one
//! `memcpy` of just the watermarked window from the snapshot instead of
//! re-deriving 4096 junk bytes, and a page that was only ever read needs
//! no work at all. Either way the post-reset contents are bit-identical to a fresh
//! `Memory`, which is what makes session reuse observably equivalent to
//! fresh-VM execution.
//!
//! The hot path avoids the page map entirely when consecutive accesses hit
//! the same page (the common case for stack and array traffic), and
//! aligned-width accesses within one page go through `from_le_bytes` /
//! `to_le_bytes` instead of a per-byte loop.

use minc_compile::Personality;
use std::collections::HashMap;

/// Page size in bytes.
pub const PAGE_SIZE: u64 = 4096;

const NO_PAGE: u32 = u32::MAX;

/// One materialized page: live bytes plus the pristine junk snapshot used
/// to restore it cheaply after a [`Memory::reset`].
#[derive(Debug, Clone)]
struct Page {
    data: Box<[u8]>,
    pristine: Box<[u8]>,
    /// Post-loader snapshot (junk overlaid with this binary's rodata and
    /// global initializers) captured by
    /// [`capture_loader_image`](Memory::capture_loader_image). When
    /// present it replaces `pristine` as the page's reset base, so a
    /// loader page the program never writes needs *no* per-run work at
    /// all — neither a restore nor a reload.
    loaded: Option<Box<[u8]>>,
    epoch: u64,
    /// Dirty watermark: `data[lo..hi]` may differ from the page's reset
    /// base (`loaded` when present, `pristine` otherwise); bytes outside
    /// the window are known to match it. `lo >= hi` means clean. Restores
    /// copy only the window, so a run that touches a few stack slots pays
    /// for those bytes rather than the whole page.
    lo: u32,
    hi: u32,
}

/// Raw byte-addressable memory.
#[derive(Debug, Clone)]
pub struct Memory {
    index: HashMap<u64, u32>,
    pages: Vec<Page>,
    seed: u64,
    epoch: u64,
    cached_no: u64,
    cached_idx: u32,
    /// Dirty pages restored from their pristine snapshot (cumulative).
    pub(crate) restored: u64,
    /// Pages materialized with fresh junk (cumulative).
    pub(crate) materialized: u64,
}

impl Memory {
    /// Creates memory whose junk pattern follows `personality`.
    pub fn new(personality: &Personality) -> Self {
        Memory {
            index: HashMap::new(),
            pages: Vec::new(),
            seed: personality.seed,
            epoch: 0,
            cached_no: 0,
            cached_idx: NO_PAGE,
            restored: 0,
            materialized: 0,
        }
    }

    /// Starts a new execution epoch: every page reads as pristine junk
    /// again (bit-identical to a fresh `Memory`), but no allocation is
    /// freed or re-made. Dirty pages are restored lazily on first touch.
    /// Pages carrying a loader image (see
    /// [`capture_loader_image`](Memory::capture_loader_image)) restore to
    /// that image instead — bit-identical to fresh memory *plus* the
    /// loader's writes.
    pub fn reset(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        self.cached_idx = NO_PAGE;
    }

    /// Snapshots every page written in the current epoch as that page's
    /// *post-loader image*: from now on the page resets to this snapshot
    /// rather than to pristine junk, and — because the snapshot is the
    /// page's new reset base — a run that never writes the page pays no
    /// restore for it at all.
    ///
    /// Call immediately after the loader pass (rodata strings + global
    /// initializers) and before any program execution, so the captured
    /// bytes are a pure function of the binary. The caller owns the
    /// keying: images describe *one* binary's loader output, so switching
    /// a session to a different binary must first call
    /// [`clear_loader_image`](Memory::clear_loader_image).
    pub fn capture_loader_image(&mut self) {
        for page in &mut self.pages {
            if page.epoch == self.epoch && page.lo < page.hi {
                page.loaded = Some(page.data.clone());
                page.lo = PAGE_SIZE as u32;
                page.hi = 0;
            }
        }
    }

    /// Drops every captured loader image, returning pages to plain
    /// pristine-junk reset semantics. Pages that carried an image are
    /// marked dirty (their live bytes no longer match their reset base).
    pub fn clear_loader_image(&mut self) {
        for page in &mut self.pages {
            if page.loaded.take().is_some() {
                page.lo = 0;
                page.hi = PAGE_SIZE as u32;
            }
        }
    }

    fn junk_byte(seed: u64, addr: u64) -> u8 {
        let mut x = addr ^ seed;
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        (x & 0xff) as u8
    }

    /// Resolves `page_no` to its arena slot, materializing or restoring
    /// the page as needed, and memoizes the result.
    #[inline]
    fn locate(&mut self, page_no: u64) -> usize {
        if self.cached_idx != NO_PAGE && self.cached_no == page_no {
            return self.cached_idx as usize;
        }
        let idx = match self.index.get(&page_no) {
            Some(&i) => {
                let page = &mut self.pages[i as usize];
                if page.epoch != self.epoch {
                    if page.lo < page.hi {
                        let (lo, hi) = (page.lo as usize, page.hi as usize);
                        match &page.loaded {
                            Some(l) => page.data[lo..hi].copy_from_slice(&l[lo..hi]),
                            None => page.data[lo..hi].copy_from_slice(&page.pristine[lo..hi]),
                        }
                        page.lo = PAGE_SIZE as u32;
                        page.hi = 0;
                        self.restored += 1;
                    }
                    page.epoch = self.epoch;
                }
                i
            }
            None => {
                let base = page_no * PAGE_SIZE;
                let mut p = vec![0u8; PAGE_SIZE as usize];
                for (i, b) in p.iter_mut().enumerate() {
                    *b = Self::junk_byte(self.seed, base + i as u64);
                }
                let data = p.into_boxed_slice();
                self.materialized += 1;
                let idx = self.pages.len() as u32;
                self.pages.push(Page {
                    pristine: data.clone(),
                    data,
                    loaded: None,
                    epoch: self.epoch,
                    lo: PAGE_SIZE as u32,
                    hi: 0,
                });
                self.index.insert(page_no, idx);
                idx
            }
        };
        self.cached_no = page_no;
        self.cached_idx = idx;
        idx as usize
    }

    #[inline]
    fn page_ref(&mut self, page_no: u64) -> &[u8] {
        let idx = self.locate(page_no);
        &self.pages[idx].data
    }

    /// Mutable page access that records `lo..hi` (page offsets) as the
    /// byte range the caller is about to write, widening the page's dirty
    /// watermark.
    #[inline]
    fn page_mut(&mut self, page_no: u64, lo: usize, hi: usize) -> &mut [u8] {
        let idx = self.locate(page_no);
        let page = &mut self.pages[idx];
        page.lo = page.lo.min(lo as u32);
        page.hi = page.hi.max(hi as u32);
        &mut page.data
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&mut self, addr: u64) -> u8 {
        let off = (addr % PAGE_SIZE) as usize;
        self.page_ref(addr / PAGE_SIZE)[off]
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        let off = (addr % PAGE_SIZE) as usize;
        self.page_mut(addr / PAGE_SIZE, off, off + 1)[off] = v;
    }

    /// Reads `width` bytes little-endian (1, 4, or 8).
    #[inline]
    pub fn read(&mut self, addr: u64, width: u64) -> u64 {
        let off = (addr % PAGE_SIZE) as usize;
        if off + width as usize <= PAGE_SIZE as usize {
            let page = self.page_ref(addr / PAGE_SIZE);
            match width {
                1 => u64::from(page[off]),
                4 => u64::from(u32::from_le_bytes(
                    page[off..off + 4].try_into().expect("4-byte slice"),
                )),
                8 => u64::from_le_bytes(page[off..off + 8].try_into().expect("8-byte slice")),
                _ => {
                    let mut v: u64 = 0;
                    for (i, &b) in page[off..off + width as usize].iter().enumerate() {
                        v |= (b as u64) << (8 * i);
                    }
                    v
                }
            }
        } else {
            let mut v: u64 = 0;
            for i in 0..width {
                v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
            }
            v
        }
    }

    /// Writes the low `width` bytes of `v` little-endian.
    #[inline]
    pub fn write(&mut self, addr: u64, v: u64, width: u64) {
        let off = (addr % PAGE_SIZE) as usize;
        if off + width as usize <= PAGE_SIZE as usize {
            let page = self.page_mut(addr / PAGE_SIZE, off, off + width as usize);
            match width {
                1 => page[off] = v as u8,
                4 => page[off..off + 4].copy_from_slice(&(v as u32).to_le_bytes()),
                8 => page[off..off + 8].copy_from_slice(&v.to_le_bytes()),
                _ => {
                    for (i, b) in page[off..off + width as usize].iter_mut().enumerate() {
                        *b = (v >> (8 * i)) as u8;
                    }
                }
            }
        } else {
            for i in 0..width {
                self.write_u8(addr.wrapping_add(i), (v >> (8 * i)) as u8);
            }
        }
    }

    /// Copies `len` bytes from `src` to `dst`, byte-forward like a naive
    /// `memcpy` — *not* like `memmove`: when the ranges overlap with
    /// `dst` inside `[src, src+len)`, already-copied bytes are re-read, so
    /// the source pattern repeats with period `dst - src`. That quirk is
    /// personality-observable (real allocator/libc copies differ the same
    /// way), so it is pinned by test and must be preserved.
    pub fn copy(&mut self, dst: u64, src: u64, len: u64) {
        // Forward-overlap (dst strictly inside the source range) is the
        // one case where chunked copying would diverge from the byte-
        // forward semantics; keep the byte loop there.
        let delta = dst.wrapping_sub(src);
        if len == 0 {
            return;
        }
        if delta != 0 && delta < len {
            for i in 0..len {
                let b = self.read_u8(src.wrapping_add(i));
                self.write_u8(dst.wrapping_add(i), b);
            }
            return;
        }
        let mut buf = [0u8; 256];
        let mut i = 0u64;
        while i < len {
            let s = src.wrapping_add(i);
            let d = dst.wrapping_add(i);
            let chunk = (len - i)
                .min(buf.len() as u64)
                .min(PAGE_SIZE - s % PAGE_SIZE)
                .min(PAGE_SIZE - d % PAGE_SIZE);
            let n = chunk as usize;
            let soff = (s % PAGE_SIZE) as usize;
            buf[..n].copy_from_slice(&self.page_ref(s / PAGE_SIZE)[soff..soff + n]);
            let doff = (d % PAGE_SIZE) as usize;
            self.page_mut(d / PAGE_SIZE, doff, doff + n)[doff..doff + n].copy_from_slice(&buf[..n]);
            i += chunk;
        }
    }

    /// Writes `bytes` starting at `addr` (page-chunked bulk store).
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let mut i = 0usize;
        while i < bytes.len() {
            let a = addr.wrapping_add(i as u64);
            let off = (a % PAGE_SIZE) as usize;
            let chunk = (bytes.len() - i).min((PAGE_SIZE - a % PAGE_SIZE) as usize);
            self.page_mut(a / PAGE_SIZE, off, off + chunk)[off..off + chunk]
                .copy_from_slice(&bytes[i..i + chunk]);
            i += chunk;
        }
    }

    /// Fills `[addr, addr+len)` with `v`.
    pub fn fill(&mut self, addr: u64, v: u8, len: u64) {
        let mut i = 0u64;
        while i < len {
            let a = addr.wrapping_add(i);
            let off = (a % PAGE_SIZE) as usize;
            let chunk = (len - i).min(PAGE_SIZE - a % PAGE_SIZE) as usize;
            self.page_mut(a / PAGE_SIZE, off, off + chunk)[off..off + chunk].fill(v);
            i += chunk as u64;
        }
    }

    /// Reads a NUL-terminated C string, bounded by `max` bytes.
    pub fn read_cstr(&mut self, addr: u64, max: u64) -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..max {
            let b = self.read_u8(addr.wrapping_add(i));
            if b == 0 {
                break;
            }
            out.push(b);
        }
        out
    }

    /// Number of materialized pages (memory footprint proxy). Pages stay
    /// materialized across [`reset`](Memory::reset), so in a persistent
    /// session this counts the high-water mark over all executions.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minc_compile::CompilerImpl;

    fn mem(name: &str) -> Memory {
        Memory::new(&CompilerImpl::parse(name).unwrap().personality())
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = mem("gcc-O0");
        m.write(0x5000, 0xdead_beef_cafe_f00d, 8);
        assert_eq!(m.read(0x5000, 8), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read(0x5000, 4), 0xcafe_f00d);
        assert_eq!(m.read(0x5000, 1), 0x0d);
    }

    #[test]
    fn cross_page_access_works() {
        let mut m = mem("gcc-O0");
        let addr = PAGE_SIZE - 3;
        m.write(addr, 0x1122_3344_5566_7788, 8);
        assert_eq!(m.read(addr, 8), 0x1122_3344_5566_7788);
    }

    #[test]
    fn junk_is_deterministic_per_impl() {
        let mut a1 = mem("gcc-O0");
        let mut a2 = mem("gcc-O0");
        let mut b = mem("clang-O0");
        let j1: Vec<u8> = (0..64).map(|i| a1.read_u8(0x7000 + i)).collect();
        let j2: Vec<u8> = (0..64).map(|i| a2.read_u8(0x7000 + i)).collect();
        let j3: Vec<u8> = (0..64).map(|i| b.read_u8(0x7000 + i)).collect();
        assert_eq!(j1, j2);
        assert_ne!(j1, j3);
    }

    #[test]
    fn copy_and_fill() {
        let mut m = mem("gcc-O1");
        m.fill(0x8000, 0xab, 16);
        m.copy(0x9000, 0x8000, 16);
        assert_eq!(m.read_u8(0x900f), 0xab);
    }

    #[test]
    fn copy_overlap_is_byte_forward_not_memmove() {
        // Pinned personality-observable semantics: copying forward into an
        // overlapping range repeats the leading `delta` bytes, where
        // memmove would preserve the original run.
        let mut m = mem("gcc-O0");
        for i in 0..8u64 {
            m.write_u8(0x4000 + i, b'0' + i as u8);
        }
        m.copy(0x4002, 0x4000, 6); // delta 2: "01" repeats
        let got: Vec<u8> = (0..8).map(|i| m.read_u8(0x4000 + i)).collect();
        assert_eq!(&got, b"01010101", "byte-forward overlap must repeat");

        // Backward overlap (dst < src) matches memmove and bulk copy.
        let mut m2 = mem("gcc-O0");
        for i in 0..8u64 {
            m2.write_u8(0x4000 + i, b'0' + i as u8);
        }
        m2.copy(0x4000, 0x4002, 6);
        let got2: Vec<u8> = (0..8).map(|i| m2.read_u8(0x4000 + i)).collect();
        assert_eq!(&got2, b"23456767");
    }

    #[test]
    fn copy_and_fill_cross_page_bulk() {
        let mut m = mem("gcc-O2");
        let base = 3 * PAGE_SIZE - 100;
        m.fill(base, 0x5a, 300); // spans a page boundary
        for i in 0..300 {
            assert_eq!(m.read_u8(base + i), 0x5a);
        }
        let dst = 7 * PAGE_SIZE - 150;
        m.copy(dst, base, 300);
        for i in 0..300 {
            assert_eq!(m.read_u8(dst + i), 0x5a);
        }
    }

    #[test]
    fn cstr_stops_at_nul_and_max() {
        let mut m = mem("gcc-O0");
        m.write_u8(0xa000, b'h');
        m.write_u8(0xa001, b'i');
        m.write_u8(0xa002, 0);
        assert_eq!(m.read_cstr(0xa000, 100), b"hi");
        assert_eq!(m.read_cstr(0xa000, 1), b"h");
    }

    #[test]
    fn reset_restores_pristine_junk() {
        let mut m = mem("gcc-O0");
        let fresh: Vec<u8> = (0..64).map(|i| m.read_u8(0x7000 + i)).collect();
        m.fill(0x7000, 0xee, 64);
        m.write(0x7100, 0x1234, 4);
        m.reset();
        let after: Vec<u8> = (0..64).map(|i| m.read_u8(0x7000 + i)).collect();
        assert_eq!(fresh, after, "reset must restore pristine junk");
        // And the restored contents match a genuinely fresh memory.
        let mut f = mem("gcc-O0");
        assert_eq!(f.read(0x7100, 4), m.read(0x7100, 4));
        // Pages stay materialized (no allocation churn).
        assert!(m.page_count() >= 1);
    }

    #[test]
    fn reset_keeps_read_only_pages_cheap_and_correct() {
        let mut m = mem("clang-O2");
        let a: Vec<u8> = (0..32).map(|i| m.read_u8(0x9000 + i)).collect();
        m.reset();
        let b: Vec<u8> = (0..32).map(|i| m.read_u8(0x9000 + i)).collect();
        assert_eq!(a, b);
    }
}
