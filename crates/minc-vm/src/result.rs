//! Execution outcomes.

use std::fmt;

/// A hardware-like trap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trap {
    /// Invalid memory access (SIGSEGV analog).
    Segv,
    /// Integer division fault (SIGFPE analog: `/0`, `INT_MIN / -1`).
    Sigfpe,
    /// `abort()` or allocator-detected corruption (SIGABRT analog).
    Abort,
    /// Stack exhausted.
    StackOverflow,
    /// Executed an `Unreachable` terminator (SIGILL analog).
    IllegalInstruction,
}

impl Trap {
    /// Conventional `128 + signal` exit code.
    pub fn exit_code(self) -> u8 {
        match self {
            Trap::Segv => 139,
            Trap::Sigfpe => 136,
            Trap::Abort => 134,
            Trap::StackOverflow => 139,
            Trap::IllegalInstruction => 132,
        }
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Trap::Segv => "segmentation fault",
            Trap::Sigfpe => "floating point exception (integer divide)",
            Trap::Abort => "aborted",
            Trap::StackOverflow => "stack overflow",
            Trap::IllegalInstruction => "illegal instruction",
        };
        f.write_str(s)
    }
}

/// The sanitizer that produced a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SanitizerKind {
    /// AddressSanitizer analog.
    Asan,
    /// UndefinedBehaviorSanitizer analog.
    Ubsan,
    /// MemorySanitizer analog.
    Msan,
}

impl fmt::Display for SanitizerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SanitizerKind::Asan => "ASan",
            SanitizerKind::Ubsan => "UBSan",
            SanitizerKind::Msan => "MSan",
        };
        f.write_str(s)
    }
}

/// A sanitizer report (aborts execution, like real sanitizers).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fault {
    /// Which sanitizer fired.
    pub kind: SanitizerKind,
    /// Short machine-readable category, e.g. `heap-buffer-overflow`.
    pub category: String,
    /// Human-readable detail.
    pub message: String,
}

impl Fault {
    /// Creates a fault report.
    pub fn new(
        kind: SanitizerKind,
        category: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Fault {
            kind,
            category: category.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}: {}", self.kind, self.category, self.message)
    }
}

/// How an execution ended.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ExitStatus {
    /// Normal termination with an exit code (shell-style low 8 bits).
    Code(u8),
    /// Killed by a trap.
    Trapped(Trap),
    /// A sanitizer reported and aborted.
    Sanitizer(Fault),
    /// Exceeded the step budget.
    TimedOut,
}

impl ExitStatus {
    /// The byte that enters the output checksum (what a shell would see).
    pub fn as_code(&self) -> u8 {
        match self {
            ExitStatus::Code(c) => *c,
            ExitStatus::Trapped(t) => t.exit_code(),
            ExitStatus::Sanitizer(_) => 1,
            ExitStatus::TimedOut => 124,
        }
    }

    /// True for crash-like endings (what a fuzzer saves as a crash).
    pub fn is_crash(&self) -> bool {
        matches!(self, ExitStatus::Trapped(_) | ExitStatus::Sanitizer(_))
    }
}

impl fmt::Display for ExitStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExitStatus::Code(c) => write!(f, "exit {c}"),
            ExitStatus::Trapped(t) => write!(f, "killed: {t}"),
            ExitStatus::Sanitizer(r) => write!(f, "sanitizer: {r}"),
            ExitStatus::TimedOut => write!(f, "timeout"),
        }
    }
}

/// The result of one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    /// How execution ended.
    pub status: ExitStatus,
    /// Captured stdout bytes.
    pub stdout: Vec<u8>,
    /// Instructions executed.
    pub steps: u64,
}

impl ExecResult {
    /// The observable output: stdout plus the exit code byte. This is what
    /// CompDiff checksums (paper §3.2: stdout+stderr redirected to a file,
    /// compared by MurmurHash3).
    pub fn observable(&self) -> Vec<u8> {
        let mut v = self.stdout.clone();
        v.push(0x1e); // record separator between stream and status
        v.push(self.status.as_code());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_shell_convention() {
        assert_eq!(Trap::Segv.exit_code(), 139);
        assert_eq!(Trap::Abort.exit_code(), 134);
        assert_eq!(ExitStatus::Code(3).as_code(), 3);
        assert_eq!(ExitStatus::Trapped(Trap::Sigfpe).as_code(), 136);
    }

    #[test]
    fn observable_differs_on_status() {
        let a = ExecResult {
            status: ExitStatus::Code(0),
            stdout: b"x".to_vec(),
            steps: 1,
        };
        let b = ExecResult {
            status: ExitStatus::Trapped(Trap::Segv),
            stdout: b"x".to_vec(),
            steps: 1,
        };
        assert_ne!(a.observable(), b.observable());
    }

    #[test]
    fn crash_classification() {
        assert!(ExitStatus::Trapped(Trap::Abort).is_crash());
        assert!(!ExitStatus::Code(1).is_crash());
        assert!(!ExitStatus::TimedOut.is_crash());
    }
}
