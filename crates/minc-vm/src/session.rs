//! Persistent-mode execution sessions — the forkserver analogue.
//!
//! CompDiff's pipeline executes every fuzzer-generated input on all `k`
//! differential binaries; AFL++ only makes that tractable with
//! persistent-mode / forkserver execution, where per-run setup cost is
//! paid once. [`ExecSession`] is this repo's equivalent: it owns the VM
//! state that is expensive to rebuild — the paged [`Memory`] (pages stay
//! allocated across runs and are restored via an epoch/dirty scheme), the
//! activation-record pool (register and poison vectors are recycled
//! instead of re-allocated per call frame), and the allocator maps — and
//! resets it between runs.
//!
//! A session run is **bit-for-bit equivalent** to a fresh
//! [`execute`](crate::execute): same status, same stdout, same step count,
//! same junk bytes. The equivalence holds because every piece of reused
//! state is either restored to its pristine value (memory junk is a pure
//! function of the personality seed and the address, so an epoch reset
//! reproduces it exactly) or fully re-initialized per run (registers are
//! zeroed on frame entry, allocator maps are cleared). The top-level
//! `session_equivalence` suite pins this across the whole target catalog,
//! including runs immediately after traps and sanitizer faults.
//!
//! ```
//! use minc_compile::{compile_source, CompilerImpl};
//! use minc_vm::{execute, ExecSession, VmConfig};
//!
//! # fn main() -> Result<(), minc::FrontendError> {
//! let bin = compile_source(
//!     "int main() { printf(\"%d\\n\", (int)input_size()); return 0; }",
//!     CompilerImpl::parse("gcc-O2").unwrap(),
//! )?;
//! let cfg = VmConfig::default();
//! let mut session = ExecSession::new(&bin);
//! for input in [&b"a"[..], b"bc", b"def"] {
//!     assert_eq!(session.run(&bin, input, &cfg), execute(&bin, input, &cfg));
//! }
//! # Ok(())
//! # }
//! ```

use crate::block::BlockProgram;
use crate::exec::{run_in_session, LoaderMode, VmConfig};
use crate::hooks::{Hooks, NoHooks};
use crate::memory::Memory;
use crate::result::ExecResult;
use minc_compile::ir::ValueId;
use minc_compile::Binary;
use std::collections::HashMap;
use std::sync::Arc;

/// One call frame (an activation record). Owned by the session so the
/// register/poison vectors can be pooled across runs.
#[derive(Debug, Clone, Default)]
pub(crate) struct Activation {
    pub(crate) func: u32,
    pub(crate) block: u32,
    pub(crate) inst: usize,
    pub(crate) regs: Vec<u64>,
    pub(crate) poison: Vec<bool>,
    pub(crate) frame_lo: u64,
    pub(crate) frame_hi: u64,
    pub(crate) ret_dst: Option<ValueId>,
}

/// Cumulative execution statistics of one [`ExecSession`] — intrinsic
/// plain-`u64` counters, cheap enough to maintain unconditionally (the
/// telemetry layer samples them per job and turns deltas into metrics;
/// the VM itself has no telemetry dependency).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Executions performed by this session.
    pub runs: u64,
    /// Dirty pages lazily restored from their pristine snapshot — the
    /// per-reset write-set size, summed over all resets.
    pub pages_restored: u64,
    /// Pages materialized with fresh junk (first-touch cost).
    pub pages_materialized: u64,
    /// Builtin memory ops (memcpy/memset/read_input) that took the
    /// page-chunked bulk path.
    pub bulk_builtin_ops: u64,
    /// Builtin memory ops that fell back to the per-byte loop (poison
    /// tracking active, or a range that may trap part-way).
    pub fallback_builtin_ops: u64,
    /// Full memory rebuilds forced because a previous run was abandoned
    /// mid-execution (a panic unwound through the VM), leaving the
    /// session state unknown.
    pub poisoned_rebuilds: u64,
    /// Superblocks translated by this session (block mode, cache miss).
    /// Pre-seeded translations (campaign `BinaryCache`) count at the
    /// cache, not here.
    pub blocks_translated: u64,
    /// Block-mode runs that found their translation already cached.
    pub block_cache_hits: u64,
    /// Runs executed through the block dispatcher.
    pub block_exec: u64,
    /// Runs executed through the per-instruction interpreter
    /// (`VmMode::Interp`).
    pub interp_fallback: u64,
    /// Batched runs that skipped the loader pass because the session
    /// already held this binary's post-loader page image (see
    /// [`ExecSession::run_batched`]).
    pub loader_skips: u64,
}

impl SessionStats {
    /// Folds another session's statistics into this one (e.g. summing
    /// across the per-implementation sessions of one differential job).
    pub fn merge(&mut self, other: SessionStats) {
        self.runs += other.runs;
        self.pages_restored += other.pages_restored;
        self.pages_materialized += other.pages_materialized;
        self.bulk_builtin_ops += other.bulk_builtin_ops;
        self.fallback_builtin_ops += other.fallback_builtin_ops;
        self.poisoned_rebuilds += other.poisoned_rebuilds;
        self.blocks_translated += other.blocks_translated;
        self.block_cache_hits += other.block_cache_hits;
        self.block_exec += other.block_exec;
        self.interp_fallback += other.interp_fallback;
        self.loader_skips += other.loader_skips;
    }
}

/// A reusable per-binary execution context (persistent mode).
///
/// Create one per [`Binary`] and call [`run`](ExecSession::run) for each
/// input; state is reset between runs without releasing allocations. The
/// binary is passed per run rather than borrowed, so sessions can live in
/// long-lived structs (oracles, fuzz targets, campaign workers) without
/// lifetime plumbing; a session keyed to one implementation that is handed
/// a binary with a different junk seed transparently rebuilds its memory
/// (a cache miss, never a wrong answer).
#[derive(Debug, Clone)]
pub struct ExecSession {
    pub(crate) seed: u64,
    pub(crate) mem: Memory,
    pub(crate) frames: Vec<Activation>,
    pub(crate) frame_pool: Vec<Activation>,
    pub(crate) free_lists: HashMap<u64, Vec<u64>>,
    pub(crate) live_chunks: HashMap<u64, u64>,
    pub(crate) runs: u64,
    pub(crate) bulk_ops: u64,
    pub(crate) fallback_ops: u64,
    /// True while a run is executing. Still set on the *next* `prepare`
    /// if the previous run never returned (a panic unwound through the
    /// VM — e.g. a panicking instrumentation hook caught by the
    /// campaign's `catch_unwind`): the session state is then unknown and
    /// is rebuilt from scratch instead of trusted.
    pub(crate) in_flight: bool,
    pub(crate) poisoned: u64,
    /// Cached block translation, keyed by [`Binary::uid`]. Shared (`Arc`)
    /// so the campaign's `BinaryCache` can translate once per binary and
    /// seed every session.
    pub(crate) block: Option<Arc<BlockProgram>>,
    pub(crate) blocks_translated: u64,
    pub(crate) block_cache_hits: u64,
    pub(crate) block_exec: u64,
    pub(crate) interp_fallback: u64,
    /// [`Binary::uid`] whose post-loader page image is currently baked
    /// into `mem` (see [`run_batched`](ExecSession::run_batched)), or
    /// `None` when memory resets to plain pristine junk.
    pub(crate) loaded_uid: Option<u64>,
    pub(crate) loader_skips: u64,
    /// Pooled scratch for printf's format string and rendered output —
    /// printf is the hottest builtin and per-call buffer allocations
    /// dominated its cost.
    pub(crate) printf_fmt: Vec<u8>,
    pub(crate) printf_out: Vec<u8>,
}

impl ExecSession {
    /// Creates a session for `binary`'s compiler implementation.
    pub fn new(binary: &Binary) -> Self {
        ExecSession {
            seed: binary.personality.seed,
            mem: Memory::new(&binary.personality),
            frames: Vec::new(),
            frame_pool: Vec::new(),
            free_lists: HashMap::new(),
            live_chunks: HashMap::new(),
            runs: 0,
            bulk_ops: 0,
            fallback_ops: 0,
            in_flight: false,
            poisoned: 0,
            block: None,
            blocks_translated: 0,
            block_cache_hits: 0,
            block_exec: 0,
            interp_fallback: 0,
            loaded_uid: None,
            loader_skips: 0,
            printf_fmt: Vec::new(),
            printf_out: Vec::new(),
        }
    }

    /// Pre-seeds the block-translation cache (no counter bump): campaign
    /// workers translate once per binary in the `BinaryCache` and hand the
    /// shared translation to every session they create.
    pub fn set_block_program(&mut self, prog: Arc<BlockProgram>) {
        self.block = Some(prog);
    }

    /// Returns the cached block translation for `bin`, translating on a
    /// uid mismatch (same self-heal contract as the memory rebuild above:
    /// a miss, never a wrong answer).
    pub(crate) fn block_program(&mut self, bin: &Binary) -> Arc<BlockProgram> {
        match &self.block {
            Some(p) if p.uid() == bin.uid => {
                self.block_cache_hits += 1;
                Arc::clone(p)
            }
            _ => {
                let p = Arc::new(BlockProgram::translate(bin));
                self.blocks_translated += p.block_count() as u64;
                self.block = Some(Arc::clone(&p));
                p
            }
        }
    }

    /// Resets per-run state: memory enters a new epoch (pristine junk,
    /// allocations kept), leftover frames from a trapped run return to the
    /// pool, and the allocator maps are emptied.
    fn prepare(&mut self, binary: &Binary) {
        if self.in_flight {
            // The previous run unwound mid-execution: the epoch/dirty
            // bookkeeping may be torn, so the incremental reset cannot be
            // trusted. Rebuild memory wholesale (page counters stay
            // cumulative, like the seed-mismatch rebuild below).
            let (restored, materialized) = (self.mem.restored, self.mem.materialized);
            self.seed = binary.personality.seed;
            self.mem = Memory::new(&binary.personality);
            self.mem.restored = restored;
            self.mem.materialized = materialized;
            self.frames.clear();
            self.poisoned += 1;
            self.in_flight = false;
            self.loaded_uid = None;
        } else if binary.personality.seed != self.seed {
            // Session built for a different implementation: the junk
            // pattern would be wrong, so rebuild memory from scratch.
            // Page counters stay cumulative across the rebuild.
            let (restored, materialized) = (self.mem.restored, self.mem.materialized);
            self.seed = binary.personality.seed;
            self.mem = Memory::new(&binary.personality);
            self.mem.restored = restored;
            self.mem.materialized = materialized;
            self.loaded_uid = None;
        } else {
            self.mem.reset();
            // A loader image describes exactly one binary's rodata and
            // globals; a same-seed run of a *different* binary must drop
            // it so untouched loader pages read as pristine junk again
            // (a cache miss, never a wrong answer). Runs this early in
            // the new epoch, before any page is touched, so the cleared
            // pages restore lazily like any other dirty page.
            if self.loaded_uid.is_some_and(|u| u != binary.uid) {
                self.mem.clear_loader_image();
                self.loaded_uid = None;
            }
        }
        self.frame_pool.append(&mut self.frames);
        self.free_lists.clear();
        self.live_chunks.clear();
    }

    /// Runs `binary` on `input` with no instrumentation, reusing this
    /// session's memory and frame pool. Equivalent to
    /// [`execute`](crate::execute) bit for bit.
    pub fn run(&mut self, binary: &Binary, input: &[u8], config: &VmConfig) -> ExecResult {
        self.run_with_hooks(binary, input, config, &mut NoHooks)
    }

    /// Runs `binary` on `input` with instrumentation hooks. Equivalent to
    /// [`execute_with_hooks`](crate::execute_with_hooks) bit for bit
    /// (hooks state is the caller's concern, exactly as with the fresh
    /// entry point).
    pub fn run_with_hooks<H: Hooks>(
        &mut self,
        binary: &Binary,
        input: &[u8],
        config: &VmConfig,
        hooks: &mut H,
    ) -> ExecResult {
        self.prepare(binary);
        self.runs += 1;
        self.in_flight = true;
        let result = run_in_session(self, binary, input, config, hooks, LoaderMode::Load);
        self.in_flight = false;
        result
    }

    /// Runs `binary` on `input` like [`run`](ExecSession::run), but
    /// additionally maintains a *post-loader page image* keyed by
    /// [`Binary::uid`]: the first batched run of a binary captures its
    /// loader output (rodata strings, zeroed globals, initializers) as the
    /// memory's reset base, and every consecutive batched run of the same
    /// binary then skips the loader pass entirely — and pays no restore
    /// for loader pages the program never writes.
    ///
    /// Built for the batched differential sweep, where one binary runs a
    /// whole input batch back to back; results are bit-for-bit those of
    /// [`run`](ExecSession::run) (the image is a pure function of the
    /// binary, so restoring it is indistinguishable from re-running the
    /// loader on freshly reset memory). Handing a different binary to the
    /// session — batched or not — transparently invalidates the image (a
    /// cache miss, never a wrong answer), so interleaving with plain
    /// [`run`](ExecSession::run) calls (e.g. timeout-escalation re-runs)
    /// is safe.
    pub fn run_batched(&mut self, binary: &Binary, input: &[u8], config: &VmConfig) -> ExecResult {
        self.run_batched_with_hooks(binary, input, config, &mut NoHooks)
    }

    /// [`run_batched`](ExecSession::run_batched) with instrumentation
    /// hooks. Equivalent to
    /// [`run_with_hooks`](ExecSession::run_with_hooks) bit for bit.
    pub fn run_batched_with_hooks<H: Hooks>(
        &mut self,
        binary: &Binary,
        input: &[u8],
        config: &VmConfig,
        hooks: &mut H,
    ) -> ExecResult {
        self.prepare(binary);
        let loader = if self.loaded_uid == Some(binary.uid) {
            self.loader_skips += 1;
            LoaderMode::Skip
        } else {
            LoaderMode::LoadAndCapture
        };
        self.runs += 1;
        self.in_flight = true;
        let result = run_in_session(self, binary, input, config, hooks, loader);
        self.in_flight = false;
        if loader == LoaderMode::LoadAndCapture {
            self.loaded_uid = Some(binary.uid);
        }
        result
    }

    /// Number of memory pages this session keeps resident (the high-water
    /// mark across all runs so far).
    pub fn resident_pages(&self) -> usize {
        self.mem.page_count()
    }

    /// Cumulative execution statistics (see [`SessionStats`]).
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            runs: self.runs,
            pages_restored: self.mem.restored,
            pages_materialized: self.mem.materialized,
            bulk_builtin_ops: self.bulk_ops,
            fallback_builtin_ops: self.fallback_ops,
            poisoned_rebuilds: self.poisoned,
            blocks_translated: self.blocks_translated,
            block_cache_hits: self.block_cache_hits,
            block_exec: self.block_exec,
            interp_fallback: self.interp_fallback,
            loader_skips: self.loader_skips,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::result::{ExitStatus, Trap};
    use minc_compile::{compile_source, CompilerImpl};

    fn bin(src: &str, impl_name: &str) -> Binary {
        compile_source(src, CompilerImpl::parse(impl_name).unwrap()).unwrap()
    }

    #[test]
    fn session_matches_fresh_execute_across_inputs() {
        let b = bin(
            r#"
            int main() {
                char buf[32];
                long n = read_input(buf, 31L);
                buf[n] = '\0';
                int i; int acc = 0;
                for (i = 0; i < (int)n; i++) { acc += buf[i]; }
                printf("%s -> %d\n", buf, acc);
                return acc % 7;
            }
            "#,
            "gcc-O2",
        );
        let cfg = VmConfig::default();
        let mut s = ExecSession::new(&b);
        for input in [&b""[..], b"a", b"hello", b"\xff\x00\x7f", b"longer input!"] {
            assert_eq!(
                s.run(&b, input, &cfg),
                execute(&b, input, &cfg),
                "{input:?}"
            );
        }
    }

    #[test]
    fn session_reuses_pages_across_runs() {
        let b = bin(
            r#"
            int main() {
                char* p = (char*)malloc(20000L);
                memset(p, 7, 20000L);
                printf("%d\n", (int)p[19999]);
                free(p);
                return 0;
            }
            "#,
            "clang-O1",
        );
        let cfg = VmConfig::default();
        let mut s = ExecSession::new(&b);
        let first = s.run(&b, b"", &cfg);
        let pages = s.resident_pages();
        assert!(pages >= 5, "the heap walk must materialize pages: {pages}");
        for _ in 0..3 {
            assert_eq!(s.run(&b, b"", &cfg), first);
        }
        assert_eq!(s.resident_pages(), pages, "no page growth on re-run");
    }

    #[test]
    fn session_recovers_after_trap() {
        // A run that dies mid-frame (segv) must not poison the next run.
        let b = bin(
            r#"
            int main() {
                char buf[4];
                long n = read_input(buf, 4L);
                if (n > 0 && buf[0] == '!') { int* p = 0; *p = 1; }
                printf("ok\n");
                return 0;
            }
            "#,
            "gcc-O0",
        );
        let cfg = VmConfig::default();
        let mut s = ExecSession::new(&b);
        let crash = s.run(&b, b"!x", &cfg);
        assert_eq!(crash.status, ExitStatus::Trapped(Trap::Segv));
        assert_eq!(s.run(&b, b"ab", &cfg), execute(&b, b"ab", &cfg));
        assert_eq!(s.run(&b, b"!y", &cfg), execute(&b, b"!y", &cfg));
    }

    #[test]
    fn session_heals_on_binary_mismatch() {
        let src = "int main() { int u; printf(\"%d\\n\", u); return 0; }";
        let a = bin(src, "gcc-O0");
        let c = bin(src, "clang-O0");
        let cfg = VmConfig::default();
        let mut s = ExecSession::new(&a);
        assert_eq!(s.run(&a, b"", &cfg), execute(&a, b"", &cfg));
        // Junk-seed mismatch: the session must rebuild, not misread junk.
        assert_eq!(s.run(&c, b"", &cfg), execute(&c, b"", &cfg));
        assert_eq!(s.run(&a, b"", &cfg), execute(&a, b"", &cfg));
    }

    #[test]
    fn stats_count_runs_pages_and_bulk_ops() {
        let b = bin(
            r#"
            int main() {
                char* p = (char*)malloc(9000L);
                memset(p, 3, 9000L);
                char q[16];
                memcpy(q, p, 16L);
                printf("%d\n", (int)q[7]);
                free(p);
                return 0;
            }
            "#,
            "gcc-O1",
        );
        let cfg = VmConfig::default();
        let mut s = ExecSession::new(&b);
        assert_eq!(s.stats(), SessionStats::default());
        s.run(&b, b"", &cfg);
        let first = s.stats();
        assert_eq!(first.runs, 1);
        assert!(first.pages_materialized >= 3, "{first:?}");
        assert_eq!(first.pages_restored, 0, "nothing to restore on run 1");
        assert!(first.bulk_builtin_ops >= 2, "memset + memcpy: {first:?}");
        s.run(&b, b"", &cfg);
        let second = s.stats();
        assert_eq!(second.runs, 2);
        assert!(
            second.pages_restored > 0,
            "run 2 must lazily restore run 1's dirty pages: {second:?}"
        );
        assert_eq!(
            second.pages_materialized, first.pages_materialized,
            "no new pages on an identical re-run"
        );
    }

    #[test]
    fn session_recovers_after_panic_unwinds_mid_run() {
        use crate::hooks::Loc;
        use crate::result::Fault;

        // A hook that panics after a few loads — the stand-in for any bug
        // (or injected fault) that unwinds through the VM while a run is
        // in flight. The campaign's `catch_unwind` swallows the panic;
        // the *session* must then detect the abandoned run and rebuild
        // instead of resuming from torn state.
        struct PanicAfter(u32);
        impl Hooks for PanicAfter {
            fn check_load(&mut self, _addr: u64, _width: u64, _loc: Loc) -> Option<Fault> {
                self.0 -= 1;
                assert!(self.0 > 0, "injected mid-run panic");
                None
            }
        }

        let b = bin(
            r#"
            int main() {
                char* p = (char*)malloc(6000L);
                memset(p, 5, 6000L);
                int i; int acc = 0;
                for (i = 0; i < 50; i++) { acc += p[i * 100]; }
                printf("%d\n", acc);
                free(p);
                return 0;
            }
            "#,
            "gcc-O2",
        );
        let cfg = VmConfig::default();
        let mut s = ExecSession::new(&b);
        assert_eq!(s.run(&b, b"", &cfg), execute(&b, b"", &cfg));

        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.run_with_hooks(&b, b"", &cfg, &mut PanicAfter(5))
        }));
        assert!(unwound.is_err(), "the hook must have panicked");
        assert_eq!(s.stats().poisoned_rebuilds, 0, "not yet detected");

        // The next run self-heals: full rebuild, bit-identical result.
        assert_eq!(s.run(&b, b"", &cfg), execute(&b, b"", &cfg));
        assert_eq!(s.stats().poisoned_rebuilds, 1);
        // And the one after that is back on the incremental fast path.
        assert_eq!(s.run(&b, b"", &cfg), execute(&b, b"", &cfg));
        assert_eq!(s.stats().poisoned_rebuilds, 1);
    }

    #[test]
    fn batched_runs_match_plain_runs_bit_for_bit() {
        // The loader-image fast path (capture on run 1, skip afterwards)
        // must be invisible in results — including uninitialized reads of
        // loader-page junk and global mutation across runs.
        let b = bin(
            r#"
            int g_acc;
            char g_buf[64];
            char* msg = "batched";
            int main() {
                char in[8];
                long n = read_input(in, 7L);
                g_acc += (int)n;
                g_buf[0] = in[0];
                int u;
                printf("%s %d %d %d\n", msg, g_acc, (int)g_buf[1], u);
                return 0;
            }
            "#,
            "gcc-O2",
        );
        let cfg = VmConfig::default();
        let mut s = ExecSession::new(&b);
        for input in [&b"a"[..], b"bb", b"ccc", b"", b"dddd"] {
            assert_eq!(
                s.run_batched(&b, input, &cfg),
                execute(&b, input, &cfg),
                "{input:?}"
            );
        }
        assert!(
            s.stats().loader_skips >= 4,
            "warm runs must skip the loader: {:?}",
            s.stats()
        );
    }

    #[test]
    fn batched_and_plain_runs_interleave() {
        // Timeout escalation re-runs use plain `run` on a session warmed
        // by `run_batched`; both directions must stay bit-identical.
        let b = bin(
            "int main() { char c[4]; long n = read_input(c, 4L); printf(\"%d\\n\", (int)n); return 0; }",
            "clang-O1",
        );
        let cfg = VmConfig::default();
        let mut s = ExecSession::new(&b);
        assert_eq!(s.run_batched(&b, b"x", &cfg), execute(&b, b"x", &cfg));
        assert_eq!(s.run(&b, b"yy", &cfg), execute(&b, b"yy", &cfg));
        assert_eq!(s.run_batched(&b, b"zzz", &cfg), execute(&b, b"zzz", &cfg));
    }

    #[test]
    fn batched_run_heals_on_binary_switch() {
        // A different binary with the *same* junk seed must invalidate the
        // loader image: its untouched loader pages have to read as
        // pristine junk, not the previous binary's strings.
        let a = bin(
            "char* s = \"AAAAAAAA\"; int main() { printf(\"%s\\n\", s); return 0; }",
            "gcc-O0",
        );
        let c = bin(
            "int main() { int u; printf(\"%d\\n\", u); return 0; }",
            "gcc-O0",
        );
        assert_eq!(a.personality.seed, c.personality.seed, "same impl");
        let cfg = VmConfig::default();
        let mut s = ExecSession::new(&a);
        for _ in 0..2 {
            assert_eq!(s.run_batched(&a, b"", &cfg), execute(&a, b"", &cfg));
        }
        for _ in 0..2 {
            assert_eq!(s.run_batched(&c, b"", &cfg), execute(&c, b"", &cfg));
        }
        assert_eq!(s.run_batched(&a, b"", &cfg), execute(&a, b"", &cfg));
        // And plain runs on the warmed session stay equivalent too.
        assert_eq!(s.run(&c, b"", &cfg), execute(&c, b"", &cfg));
    }

    #[test]
    fn batched_run_recovers_after_trap() {
        let b = bin(
            r#"
            int g;
            int main() {
                char buf[4];
                long n = read_input(buf, 4L);
                g = 7;
                if (n > 0 && buf[0] == '!') { int* p = 0; *p = 1; }
                printf("g=%d\n", g);
                return 0;
            }
            "#,
            "gcc-O2",
        );
        let cfg = VmConfig::default();
        let mut s = ExecSession::new(&b);
        assert_eq!(s.run_batched(&b, b"ok", &cfg), execute(&b, b"ok", &cfg));
        let crash = s.run_batched(&b, b"!x", &cfg);
        assert_eq!(crash.status, ExitStatus::Trapped(Trap::Segv));
        assert_eq!(crash, execute(&b, b"!x", &cfg));
        assert_eq!(s.run_batched(&b, b"ab", &cfg), execute(&b, b"ab", &cfg));
    }

    #[test]
    fn escalated_rerun_in_reused_session_matches_fresh_session() {
        // The differ's timeout-escalation policy re-runs a timed-out
        // implementation in the SAME session under a doubled step budget.
        // A run abandoned at the step limit leaves dirty pages, pooled
        // frames, and heap state behind; the epoch reset must clear all
        // of it so the escalated re-run is bit-identical to one in a
        // brand-new session — in both execution backends, and whether the
        // timed-out run was plain or batched.
        use crate::exec::VmMode;
        let b = bin(
            r#"
            int work(int depth) {
                char local[64];
                memset(local, depth, 64L);
                if (depth > 0) { return local[3] + work(depth - 1); }
                return (int)local[0];
            }
            int main() {
                char* heap = (char*)malloc(12000L);
                memset(heap, 9, 12000L);
                int i; int acc = 0;
                for (i = 0; i < 40; i++) { acc += work(8) + heap[i * 300]; }
                printf("acc=%d\n", acc);
                free(heap);
                return 0;
            }
            "#,
            "gcc-O2",
        );
        for mode in [VmMode::Interp, VmMode::Block] {
            let full = VmConfig {
                mode,
                ..VmConfig::default()
            };
            let steps = execute(&b, b"", &full).steps;
            let tight = VmConfig {
                step_limit: steps * 2 / 3,
                ..full.clone()
            };
            let doubled = VmConfig {
                step_limit: tight.step_limit * 2,
                ..tight.clone()
            };
            for batched_first in [false, true] {
                let mut reused = ExecSession::new(&b);
                let timed_out = if batched_first {
                    reused.run_batched(&b, b"", &tight)
                } else {
                    reused.run(&b, b"", &tight)
                };
                assert_eq!(timed_out.status, ExitStatus::TimedOut, "{mode}");

                let rerun = reused.run(&b, b"", &doubled);
                let fresh = ExecSession::new(&b).run(&b, b"", &doubled);
                assert_eq!(rerun, fresh, "{mode} batched_first={batched_first}");
                assert_eq!(rerun.status, ExitStatus::Code(0));
            }
        }
    }

    #[test]
    fn uninit_junk_is_identical_under_session_reuse() {
        // The personality-defined junk an uninitialized read observes must
        // be byte-identical on every run of a session (determinism is
        // CompDiff's precondition).
        let b = bin(
            "int main() { int u; printf(\"%d\\n\", u); return 0; }",
            "clang-O3",
        );
        let cfg = VmConfig::default();
        let mut s = ExecSession::new(&b);
        let fresh = execute(&b, b"", &cfg);
        for _ in 0..4 {
            assert_eq!(s.run(&b, b"", &cfg), fresh);
        }
    }
}
