//! VM edge cases: allocator limits, builtin corner cases, trap precision,
//! and cross-implementation agreement on tricky-but-defined semantics.

use minc_compile::{compile_source, CompilerImpl};
use minc_vm::{execute, ExitStatus, Trap, VmConfig};

fn run(src: &str, impl_name: &str, input: &[u8]) -> minc_vm::ExecResult {
    let bin = compile_source(src, CompilerImpl::parse(impl_name).unwrap()).unwrap();
    execute(&bin, input, &VmConfig::default())
}

fn out(src: &str, impl_name: &str) -> String {
    let r = run(src, impl_name, b"");
    assert_eq!(r.status, ExitStatus::Code(0), "{impl_name}: {}", r.status);
    String::from_utf8_lossy(&r.stdout).into_owned()
}

fn all_impls_agree(src: &str, expect: &str) {
    for ci in CompilerImpl::default_set() {
        assert_eq!(out(src, &ci.to_string()), expect, "{ci}");
    }
}

#[test]
fn malloc_zero_returns_distinct_valid_pointers() {
    all_impls_agree(
        r#"
        int main() {
            char* a = (char*)malloc(0L);
            char* b = (char*)malloc(0L);
            printf("%d %d\n", a != 0 ? 1 : 0, a != b ? 1 : 0);
            free(a);
            free(b);
            return 0;
        }
        "#,
        "1 1\n",
    );
}

#[test]
fn malloc_oom_returns_null() {
    let src = r#"
        int main() {
            char* p = (char*)malloc(1073741824L);
            printf("%d\n", p == 0 ? 1 : 0);
            return 0;
        }
    "#;
    all_impls_agree(src, "1\n");
}

#[test]
fn free_null_is_noop() {
    all_impls_agree(
        "int main() { char* p = 0; free(p); printf(\"ok\\n\"); return 0; }",
        "ok\n",
    );
}

#[test]
fn signed_division_edge_cases() {
    all_impls_agree(
        r#"
        int main() {
            printf("%d %d %d\n", -7 / 2, -7 % 2, 7 / -2);
            long big = -9223372036854775807L - 1L;
            printf("%ld\n", big / 2L);
            return 0;
        }
        "#,
        "-3 -1 -3\n-4611686018427387904\n",
    );
}

#[test]
fn int_min_div_minus_one_traps_like_x86() {
    let src = r#"
        int main() {
            int m = (int)input_size() - 2147483647 - 1;
            int d = -1 - (int)input_size();
            printf("%d\n", m / d);
            return 0;
        }
    "#;
    let r = run(src, "gcc-O0", b"");
    assert_eq!(r.status, ExitStatus::Trapped(Trap::Sigfpe));
}

#[test]
fn char_semantics_are_signed_and_truncating() {
    all_impls_agree(
        r#"
        int main() {
            char c = (char)200;
            printf("%d\n", (int)c);
            char d = (char)(70000 + (int)input_size());
            printf("%d\n", (int)d);
            return 0;
        }
        "#,
        "-56\n112\n", // 200 -> -56; 70000 & 0xff = 0x70 = +112
    );
}

#[test]
fn unsigned_comparisons_and_prints() {
    all_impls_agree(
        r#"
        int main() {
            unsigned a = 4294967295u;
            unsigned b = 1u;
            printf("%d %u %x\n", a > b ? 1 : 0, a, a);
            return 0;
        }
        "#,
        "1 4294967295 ffffffff\n",
    );
}

#[test]
fn runtime_shift_masks_like_x86_in_every_binary() {
    // Runtime (unfoldable) oversized shift: every implementation executes
    // the hardware-masked shift, so they agree.
    all_impls_agree(
        r#"
        int main() {
            int sh = 33 + (int)input_size();
            printf("%d\n", 1 << sh);
            return 0;
        }
        "#,
        "2\n",
    );
}

#[test]
fn string_builtins_agree() {
    all_impls_agree(
        r#"
        int main() {
            char a[16];
            char b[16];
            strcpy(a, "hello");
            strncpy(b, "hello", 16L);
            printf("%d %d %d\n", strcmp(a, b), strcmp(a, "hellp"), strcmp("z", a));
            printf("%ld %ld\n", strlen(a), strlen(""));
            return 0;
        }
        "#,
        "0 -1 1\n5 0\n",
    );
}

#[test]
fn atoi_corner_cases() {
    all_impls_agree(
        r#"
        int main() {
            printf("%d %d %d %d\n", atoi("42"), atoi("-17"), atoi("  9x9"), atoi("nope"));
            return 0;
        }
        "#,
        "42 -17 9 0\n",
    );
}

#[test]
fn printf_edge_cases() {
    all_impls_agree(
        r#"
        int main() {
            printf("%%d is %d|%05d|%c|%s|\n", -3, 42, 'Q', "");
            printf("%f\n", 1.5);
            printf("%u\n", -1);
            return 0;
        }
        "#,
        "%d is -3|00042|Q||\n1.500000\n4294967295\n",
    );
}

#[test]
fn double_arithmetic_agrees_on_defined_paths() {
    all_impls_agree(
        r#"
        int main() {
            double a = 1.5;
            double b = 2.25;
            printf("%f %f %d\n", a + b, a * b, a < b ? 1 : 0);
            printf("%f %f\n", sqrt(16.0), floor(3.9));
            return 0;
        }
        "#,
        "3.750000 3.375000 1\n4.000000 3.000000\n",
    );
}

#[test]
fn memcpy_to_invalid_memory_traps() {
    let src = r#"
        int main() {
            char buf[8];
            memcpy((char*)64L, buf, 4L);
            return 0;
        }
    "#;
    let r = run(src, "clang-O1", b"");
    assert_eq!(r.status, ExitStatus::Trapped(Trap::Segv));
}

#[test]
fn writes_to_rodata_trap() {
    let src = r#"
        int main() {
            char* s = "const";
            s[0] = 'X';
            return 0;
        }
    "#;
    let r = run(src, "gcc-O2", b"");
    assert_eq!(r.status, ExitStatus::Trapped(Trap::Segv));
}

#[test]
fn read_input_handles_zero_and_oversized_requests() {
    let src = r#"
        int main() {
            char b[4];
            printf("%ld ", read_input(b, 0L));
            printf("%ld ", read_input(b, 2L));
            printf("%ld\n", read_input(b, 100L));
            return 0;
        }
    "#;
    let bin = compile_source(src, CompilerImpl::parse("gcc-O1").unwrap()).unwrap();
    let r = execute(&bin, b"abc", &VmConfig::default());
    // 0 bytes, then 2 ("ab"), then 1 more ("c") even though 100 requested
    // (and the 100-byte request only writes 1 byte, within bounds).
    assert_eq!(String::from_utf8_lossy(&r.stdout), "0 2 1\n");
}

#[test]
fn deep_but_bounded_recursion_is_fine() {
    all_impls_agree(
        r#"
        int depth(int n) { if (n == 0) { return 0; } return 1 + depth(n - 1); }
        int main() { printf("%d\n", depth(150)); return 0; }
        "#,
        "150\n",
    );
}

#[test]
fn global_initializers_and_statics_are_loaded() {
    all_impls_agree(
        r#"
        int g = 40 + 2;
        long h = 1L << 40;
        char* msg = "boot";
        int bump() { static int n = 10; n++; return n; }
        int main() {
            bump();
            printf("%d %ld %s %d\n", g, h >> 38, msg, bump());
            return 0;
        }
        "#,
        "42 4 boot 12\n",
    );
}

#[test]
fn ternary_and_logical_short_circuit() {
    all_impls_agree(
        r#"
        int hits;
        int bump(int v) { hits++; return v; }
        int main() {
            int r = 0 && bump(1);
            int s = 1 || bump(1);
            printf("%d %d %d\n", r, s, hits);
            printf("%d\n", 1 ? 2 : bump(9));
            printf("%d\n", hits);
            return 0;
        }
        "#,
        "0 1 0\n2\n0\n",
    );
}
