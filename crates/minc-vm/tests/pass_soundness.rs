//! Pass soundness on defined programs: every optimization level must
//! preserve the observable behaviour of UB-free code. (UB-containing code
//! is *allowed* to change — that is the whole point of CompDiff — so these
//! programs are carefully defined.)

use minc_compile::{compile, CompilerImpl};
use minc_vm::{execute, ExitStatus, VmConfig};

fn outputs_for(src: &str, input: &[u8]) -> Vec<(String, String, u8)> {
    let checked = minc::check(src).unwrap();
    let vm = VmConfig::default();
    CompilerImpl::default_set()
        .into_iter()
        .map(|ci| {
            let r = execute(&compile(&checked, ci), input, &vm);
            (
                ci.to_string(),
                String::from_utf8_lossy(&r.stdout).into_owned(),
                r.status.as_code(),
            )
        })
        .collect()
}

fn assert_all_agree(src: &str, input: &[u8]) {
    let outs = outputs_for(src, input);
    let (n0, o0, s0) = &outs[0];
    for (n, o, s) in &outs[1..] {
        assert_eq!((o, s), (o0, s0), "{n0} vs {n}:\n{src}");
    }
}

#[test]
fn cse_dse_do_not_break_aliasing() {
    // Writes through two pointers to the same slot: DSE must not delete
    // the visible store; CSE must not reuse a stale load.
    assert_all_agree(
        r#"
        int main() {
            int x = 1;
            int* p = &x;
            int* q = &x;
            *p = 5;
            *q = 7;
            printf("%d %d\n", *p, x);
            x = 9;
            printf("%d\n", *q);
            return 0;
        }
        "#,
        b"",
    );
}

#[test]
fn inlining_preserves_static_locals_and_recursion() {
    assert_all_agree(
        r#"
        int counter() { static int n; n++; return n; }
        int twice(int x) { return counter() + x; }
        int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
        int main() {
            /* Calls are sequenced through locals: passing several
               side-effecting calls as printf arguments would itself be
               the EvalOrder UB this repository exists to detect. */
            int a = twice(10);
            int b = twice(20);
            int c = counter();
            int d = fib(12);
            printf("%d %d %d %d\n", a, b, c, d);
            return 0;
        }
        "#,
        b"",
    );
}

#[test]
fn unrolling_preserves_loop_side_effects() {
    // Small counted loops with calls, stores, and dependent values; trip
    // counts avoid the two seeded miscompilation shapes (5-div, 7-mul).
    assert_all_agree(
        r#"
        int log_count;
        void note(int v) { log_count += v; }
        int main() {
            int a[8];
            int i;
            for (i = 0; i < 8; i++) { a[i] = i * i; note(i); }
            int sum = 0;
            for (i = 0; i < 8; i++) { sum += a[i]; }
            printf("%d %d\n", sum, log_count);
            return 0;
        }
        "#,
        b"",
    );
}

#[test]
fn ub_exploit_spares_defined_overflow_checks() {
    // The unsigned version of the Listing 1 guard is defined and must be
    // honoured by every implementation.
    assert_all_agree(
        r#"
        int check(unsigned off, unsigned len) {
            if (off + len < off) { return -1; }
            return (int)(off + len);
        }
        int main() {
            printf("%d %d\n", check(4294967295u, 10u), check(3u, 4u));
            return 0;
        }
        "#,
        b"",
    );
}

#[test]
fn branch_folding_keeps_side_effects_of_conditions() {
    assert_all_agree(
        r#"
        int calls;
        int truthy() { calls++; return 1; }
        int main() {
            if (truthy()) { printf("t\n"); }
            while (truthy()) { break; }
            printf("%d\n", calls);
            return 0;
        }
        "#,
        b"",
    );
}

#[test]
fn copy_prop_across_compound_assignments() {
    assert_all_agree(
        r#"
        int main() {
            int a = 3;
            int b = a;
            b += a;
            b *= b;
            a -= b;
            a <<= 2;
            a ^= b;
            printf("%d %d\n", a, b);
            return 0;
        }
        "#,
        b"",
    );
}

#[test]
fn input_dependent_control_flow_matches() {
    let src = r#"
        int classify(int c) {
            if (c >= 'a' && c <= 'z') { return 1; }
            if (c >= '0' && c <= '9') { return 2; }
            return 0;
        }
        int main() {
            int c;
            int counts[3];
            int i;
            for (i = 0; i < 3; i++) { counts[i] = 0; }
            while ((c = getchar()) != -1) { counts[classify(c)]++; }
            printf("%d %d %d\n", counts[0], counts[1], counts[2]);
            return 0;
        }
    "#;
    assert_all_agree(src, b"abc123!? ");
    assert_all_agree(src, b"");
    assert_all_agree(src, &[0u8, 255, 128, b'a']);
}

#[test]
fn struct_heavy_code_is_stable() {
    assert_all_agree(
        r#"
        struct pt { int x; int y; };
        struct rect { struct pt lo; struct pt hi; char tag; };
        int area(struct rect* r) { return (r->hi.x - r->lo.x) * (r->hi.y - r->lo.y); }
        int main() {
            struct rect r;
            r.lo.x = 1; r.lo.y = 2; r.hi.x = 11; r.hi.y = 22;
            r.tag = 'R';
            struct rect* p = &r;
            printf("%d %c %ld\n", area(p), p->tag, (long)sizeof(struct rect));
            return 0;
        }
        "#,
        b"",
    );
}

#[test]
fn optimized_binaries_are_not_slower() {
    // -O2 must execute fewer VM steps than -O0 on compute-heavy code
    // (sanity that the pipeline actually optimizes).
    let src = r#"
        int main() {
            long acc = 0;
            int i;
            for (i = 0; i < 2000; i++) { acc += (long)(i * 2 + 1) * 3L; }
            printf("%ld\n", acc);
            return 0;
        }
    "#;
    let checked = minc::check(src).unwrap();
    let vm = VmConfig::default();
    let o0 = execute(
        &compile(&checked, CompilerImpl::parse("gcc-O0").unwrap()),
        b"",
        &vm,
    );
    let o2 = execute(
        &compile(&checked, CompilerImpl::parse("gcc-O2").unwrap()),
        b"",
        &vm,
    );
    assert_eq!(o0.stdout, o2.stdout);
    assert!(
        o2.steps * 10 < o0.steps * 9,
        "-O2 ({}) should beat -O0 ({}) by >10%",
        o2.steps,
        o0.steps
    );
}

#[test]
fn every_level_terminates_with_exit_code() {
    let src = "int main() { exit(5); return 0; }";
    for (_, _, code) in outputs_for(src, b"") {
        assert_eq!(code, 5);
    }
    let _ = ExitStatus::Code(5);
}

#[test]
fn two_dimensional_arrays_are_stable() {
    assert_all_agree(
        r#"
        int main() {
            int m[3][4];
            int i;
            int j;
            for (i = 0; i < 3; i++) {
                for (j = 0; j < 4; j++) { m[i][j] = i * 10 + j; }
            }
            int sum = 0;
            for (i = 0; i < 3; i++) {
                for (j = 0; j < 4; j++) { sum += m[i][j]; }
            }
            printf("%d %d %ld\n", sum, m[2][3], (long)sizeof(m));
            return 0;
        }
        "#,
        b"",
    );
}

#[test]
fn pointer_walks_through_arrays_are_stable() {
    assert_all_agree(
        r#"
        int main() {
            int a[6];
            int i;
            for (i = 0; i < 6; i++) { a[i] = i + 1; }
            int* p = a;
            int* end = a + 6;
            int prod = 1;
            while (p != end) { prod *= *p; p++; }
            printf("%d %ld\n", prod, end - a);
            return 0;
        }
        "#,
        b"",
    );
}

#[test]
fn do_while_and_continue_paths_are_stable() {
    assert_all_agree(
        r#"
        int main() {
            int n = 0;
            int i = 0;
            do {
                i++;
                if (i % 3 == 0) { continue; }
                if (i > 20) { break; }
                n += i;
            } while (i < 30);
            printf("%d %d\n", n, i);
            return 0;
        }
        "#,
        b"",
    );
}
