//! Abstract syntax tree for MinC.

use crate::span::{NodeId, Span};
use crate::types::Type;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-x` (signed overflow on `INT_MIN` is UB).
    Neg,
    /// Logical not `!x`.
    Not,
    /// Bitwise not `~x`.
    BitNot,
    /// Pointer dereference `*p`.
    Deref,
    /// Address-of `&x`.
    Addr,
}

/// Binary operators (excluding assignment and short-circuit forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// Equality (`==`).
    Eq,
    /// Inequality (`!=`).
    Ne,
    /// Bitwise and.
    BitAnd,
    /// Bitwise or.
    BitOr,
    /// Bitwise xor.
    BitXor,
}

impl BinOp {
    /// True for `< <= > >=` — the relational operators whose use on
    /// pointers to different objects is UB (C11 §6.5.8).
    pub fn is_relational(&self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }

    /// True for `==`/`!=`, which are defined on any pointer pair.
    pub fn is_equality(&self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne)
    }

    /// True for operators producing an `int` 0/1 result.
    pub fn is_comparison(&self) -> bool {
        self.is_relational() || self.is_equality()
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Dense id for side tables (types, constant values).
    pub id: NodeId,
    /// Source location.
    pub span: Span,
    /// The expression's shape.
    pub kind: ExprKind,
}

/// Expression shapes.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // inline variant fields are described by the variant docs
pub enum ExprKind {
    /// Integer literal (type `int`, or `long` with an `L` suffix).
    IntLit { value: i64, long: bool },
    /// Floating point literal.
    FloatLit(f64),
    /// Character literal (type `int`, like C).
    CharLit(u8),
    /// String literal (type `char*`, stored in rodata).
    StrLit(Vec<u8>),
    /// Variable reference.
    Var(String),
    /// `__LINE__`; the attributed line is implementation-defined for
    /// multi-line constructs.
    Line,
    /// Unary operation.
    Unary { op: UnOp, operand: Box<Expr> },
    /// Binary operation.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Short-circuit `&&` / `||`.
    Logical {
        and: bool,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Simple or compound assignment. `op` is `None` for `=`.
    Assign {
        op: Option<BinOp>,
        target: Box<Expr>,
        value: Box<Expr>,
    },
    /// Pre/post increment/decrement.
    IncDec {
        inc: bool,
        pre: bool,
        target: Box<Expr>,
    },
    /// Conditional expression `c ? t : e`.
    Cond {
        cond: Box<Expr>,
        then: Box<Expr>,
        els: Box<Expr>,
    },
    /// Function or builtin call. Argument evaluation *order* is
    /// implementation-defined — the heart of the EvalOrder bug class.
    Call { callee: String, args: Vec<Expr> },
    /// Array indexing `a[i]` (sugar for `*(a + i)`).
    Index { base: Box<Expr>, index: Box<Expr> },
    /// Struct member access `s.f`.
    Member { base: Box<Expr>, field: String },
    /// Struct member access through a pointer `p->f`.
    Arrow { base: Box<Expr>, field: String },
    /// Explicit cast `(T)e`.
    Cast { to: Type, value: Box<Expr> },
    /// `sizeof(T)` — evaluates to `long`.
    SizeofType(Type),
    /// `sizeof expr` — evaluates to `long`; the operand is not evaluated.
    SizeofExpr(Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Dense id for side tables.
    pub id: NodeId,
    /// Source location.
    pub span: Span,
    /// The statement's shape.
    pub kind: StmtKind,
}

/// Statement shapes.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // inline variant fields are described by the variant docs
pub enum StmtKind {
    /// Local variable declaration, possibly `static`, possibly initialized.
    /// An uninitialized non-static local has an *indeterminate* value.
    Decl {
        name: String,
        ty: Type,
        storage: Storage,
        init: Option<Expr>,
    },
    /// Expression statement.
    Expr(Expr),
    /// Conditional.
    If {
        cond: Expr,
        then: Box<Stmt>,
        els: Option<Box<Stmt>>,
    },
    /// `while` loop.
    While { cond: Expr, body: Box<Stmt> },
    /// `do { } while (c);` loop.
    DoWhile { body: Box<Stmt>, cond: Expr },
    /// `for` loop; all three clauses optional. `init` may be a declaration.
    For {
        /// The init.
        init: Option<Box<Stmt>>,
        /// The cond.
        cond: Option<Expr>,
        /// The step.
        step: Option<Expr>,
        /// The body.
        body: Box<Stmt>,
    },
    /// `return e;` or `return;`.
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `{ ... }`
    Block(Vec<Stmt>),
    /// `;`
    Empty,
}

/// Storage class of a declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Storage {
    /// Automatic storage (stack).
    #[default]
    Auto,
    /// `static` — one instance per program, zero-initialized if no
    /// initializer, retains its value across calls.
    Static,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type (arrays decay to pointers during checking).
    pub ty: Type,
    /// Source location.
    pub span: Span,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Dense id.
    pub id: NodeId,
    /// Function name; `main` is the entry point.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Body block.
    pub body: Stmt,
    /// Source location of the signature.
    pub span: Span,
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Dense id.
    pub id: NodeId,
    /// Name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Optional constant initializer (must be a constant expression).
    pub init: Option<Expr>,
    /// Source location.
    pub span: Span,
}

/// A struct field.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// Source location.
    pub span: Span,
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// Struct tag.
    pub name: String,
    /// Fields in declaration order (offset assignment is the compiler's
    /// implementation-defined job).
    pub fields: Vec<Field>,
    /// Source location.
    pub span: Span,
}

/// A complete MinC translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Global variables.
    pub globals: Vec<Global>,
    /// Function definitions.
    pub functions: Vec<Function>,
}

impl Program {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up a struct definition by tag.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_relational());
        assert!(!BinOp::Eq.is_relational());
        assert!(BinOp::Eq.is_equality());
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }

    #[test]
    fn program_lookup() {
        let p = Program::default();
        assert!(p.function("main").is_none());
        assert!(p.struct_def("s").is_none());
        assert!(p.global("g").is_none());
    }
}
