//! Diagnostics for lexing, parsing, and semantic analysis.

use crate::span::Span;
use std::error::Error;
use std::fmt;

/// The phase of the frontend that produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Lexical analysis.
    Lex,
    /// Syntactic analysis.
    Parse,
    /// Semantic analysis / type checking.
    Sema,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Sema => "sema",
        };
        f.write_str(s)
    }
}

/// A single frontend diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Phase that raised the diagnostic.
    pub phase: Phase,
    /// Source location.
    pub span: Span,
    /// Human-readable message, lowercase without trailing punctuation.
    pub message: String,
}

impl Diagnostic {
    /// Creates a new diagnostic.
    pub fn new(phase: Phase, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            phase,
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error at {}: {}", self.phase, self.span, self.message)
    }
}

impl Error for Diagnostic {}

/// Error type carrying one or more diagnostics from the frontend.
///
/// Returned by [`crate::parse`] and [`crate::check`].
#[derive(Debug, Clone, PartialEq)]
pub struct FrontendError {
    /// All collected diagnostics, in source order.
    pub diagnostics: Vec<Diagnostic>,
}

impl FrontendError {
    /// Wraps a single diagnostic.
    pub fn single(diag: Diagnostic) -> Self {
        FrontendError {
            diagnostics: vec![diag],
        }
    }

    /// The first (usually most relevant) diagnostic.
    pub fn first(&self) -> &Diagnostic {
        &self.diagnostics[0]
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl Error for FrontendError {}

impl From<Diagnostic> for FrontendError {
    fn from(d: Diagnostic) -> Self {
        FrontendError::single(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_phase_and_line() {
        let d = Diagnostic::new(Phase::Parse, Span::new(0, 1, 3), "expected `;`");
        assert_eq!(d.to_string(), "parse error at line 3: expected `;`");
    }

    #[test]
    fn frontend_error_joins_messages() {
        let e = FrontendError {
            diagnostics: vec![
                Diagnostic::new(Phase::Sema, Span::new(0, 1, 1), "a"),
                Diagnostic::new(Phase::Sema, Span::new(0, 1, 2), "b"),
            ],
        };
        let s = e.to_string();
        assert!(s.contains("line 1"));
        assert!(s.contains("line 2"));
    }
}
