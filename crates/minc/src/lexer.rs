//! Hand-written lexer for MinC.

use crate::diag::{Diagnostic, FrontendError, Phase};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Converts MinC source text into a token stream.
///
/// Supports `//` and `/* */` comments, decimal/hex/char/float literals with
/// standard C escapes, and all MinC operators.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    /// Lexes the entire input, returning tokens terminated by [`TokenKind::Eof`].
    ///
    /// # Errors
    ///
    /// Returns a [`FrontendError`] on the first malformed token (unterminated
    /// string/comment, bad escape, stray character).
    pub fn tokenize(mut self) -> Result<Vec<Token>, FrontendError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let line = self.line;
            let Some(&c) = self.src.get(self.pos) else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::new(start as u32, start as u32, line),
                });
                return Ok(out);
            };
            let kind = self.next_kind(c)?;
            let end_line = self.line;
            let mut span = Span::new(start as u32, self.pos as u32, line);
            span.end_line = end_line;
            out.push(Token { kind, span });
        }
    }

    fn err(&self, start: usize, msg: impl Into<String>) -> FrontendError {
        Diagnostic::new(
            Phase::Lex,
            Span::new(start as u32, self.pos as u32, self.line),
            msg,
        )
        .into()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == b'\n' {
                self.line += 1;
            }
        }
        c
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn skip_trivia(&mut self) -> Result<(), FrontendError> {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some(b'*') if self.peek() == Some(b'/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => return Err(self.err(start, "unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_kind(&mut self, c: u8) -> Result<TokenKind, FrontendError> {
        use TokenKind::*;
        let start = self.pos;
        if c.is_ascii_digit() {
            return self.number(start);
        }
        if c == b'_' || c.is_ascii_alphabetic() {
            return Ok(self.ident(start));
        }
        if c == b'"' {
            return self.string(start);
        }
        if c == b'\'' {
            return self.char_lit(start);
        }
        self.bump();
        let kind = match c {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b'.' => Dot,
            b'?' => Question,
            b':' => Colon,
            b'~' => Tilde,
            b'+' => {
                if self.eat(b'+') {
                    PlusPlus
                } else if self.eat(b'=') {
                    PlusAssign
                } else {
                    Plus
                }
            }
            b'-' => {
                if self.eat(b'-') {
                    MinusMinus
                } else if self.eat(b'=') {
                    MinusAssign
                } else if self.eat(b'>') {
                    Arrow
                } else {
                    Minus
                }
            }
            b'*' => {
                if self.eat(b'=') {
                    StarAssign
                } else {
                    Star
                }
            }
            b'/' => {
                if self.eat(b'=') {
                    SlashAssign
                } else {
                    Slash
                }
            }
            b'%' => {
                if self.eat(b'=') {
                    PercentAssign
                } else {
                    Percent
                }
            }
            b'&' => {
                if self.eat(b'&') {
                    AmpAmp
                } else if self.eat(b'=') {
                    AmpAssign
                } else {
                    Amp
                }
            }
            b'|' => {
                if self.eat(b'|') {
                    PipePipe
                } else if self.eat(b'=') {
                    PipeAssign
                } else {
                    Pipe
                }
            }
            b'^' => {
                if self.eat(b'=') {
                    CaretAssign
                } else {
                    Caret
                }
            }
            b'!' => {
                if self.eat(b'=') {
                    BangEq
                } else {
                    Bang
                }
            }
            b'=' => {
                if self.eat(b'=') {
                    EqEq
                } else {
                    Assign
                }
            }
            b'<' => {
                if self.eat(b'<') {
                    if self.eat(b'=') {
                        ShlAssign
                    } else {
                        Shl
                    }
                } else if self.eat(b'=') {
                    Le
                } else {
                    Lt
                }
            }
            b'>' => {
                if self.eat(b'>') {
                    if self.eat(b'=') {
                        ShrAssign
                    } else {
                        Shr
                    }
                } else if self.eat(b'=') {
                    Ge
                } else {
                    Gt
                }
            }
            other => {
                return Err(self.err(start, format!("unexpected character `{}`", other as char)));
            }
        };
        Ok(kind)
    }

    fn number(&mut self, start: usize) -> Result<TokenKind, FrontendError> {
        // Hex literal.
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let digits_start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                self.bump();
            }
            if self.pos == digits_start {
                return Err(self.err(start, "hex literal needs at least one digit"));
            }
            let text = std::str::from_utf8(&self.src[digits_start..self.pos]).unwrap();
            let value = u64::from_str_radix(text, 16)
                .map_err(|_| self.err(start, "hex literal out of range"))?
                as i64;
            let long = self.eat(b'L') || self.eat(b'l');
            self.eat(b'U');
            self.eat(b'u');
            return Ok(TokenKind::IntLit { value, long });
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        // Float literal: digits '.' digits, optional exponent.
        if self.peek() == Some(b'.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
            if matches!(self.peek(), Some(b'e') | Some(b'E')) {
                self.bump();
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.bump();
                }
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                }
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
            let value: f64 = text
                .parse()
                .map_err(|_| self.err(start, "malformed float literal"))?;
            return Ok(TokenKind::FloatLit(value));
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        let value: i64 =
            text.parse::<u64>()
                .map_err(|_| self.err(start, "integer literal out of range"))? as i64;
        let long = self.eat(b'L') || self.eat(b'l');
        self.eat(b'U');
        self.eat(b'u');
        Ok(TokenKind::IntLit { value, long })
    }

    fn ident(&mut self, start: usize) -> TokenKind {
        while self
            .peek()
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()))
    }

    fn escape(&mut self, start: usize) -> Result<u8, FrontendError> {
        let c = self
            .bump()
            .ok_or_else(|| self.err(start, "unterminated escape sequence"))?;
        Ok(match c {
            b'n' => b'\n',
            b't' => b'\t',
            b'r' => b'\r',
            b'0' => 0,
            b'\\' => b'\\',
            b'\'' => b'\'',
            b'"' => b'"',
            b'x' => {
                let mut v: u32 = 0;
                let mut n = 0;
                while n < 2 && self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                    let d = self.bump().unwrap();
                    v = v * 16 + (d as char).to_digit(16).unwrap();
                    n += 1;
                }
                if n == 0 {
                    return Err(self.err(start, "\\x escape needs hex digits"));
                }
                v as u8
            }
            other => {
                return Err(self.err(start, format!("unknown escape `\\{}`", other as char)));
            }
        })
    }

    fn string(&mut self, start: usize) -> Result<TokenKind, FrontendError> {
        self.bump(); // opening quote
        let mut bytes = Vec::new();
        loop {
            match self.bump() {
                None | Some(b'\n') => return Err(self.err(start, "unterminated string literal")),
                Some(b'"') => break,
                Some(b'\\') => bytes.push(self.escape(start)?),
                Some(c) => bytes.push(c),
            }
        }
        Ok(TokenKind::StrLit(bytes))
    }

    fn char_lit(&mut self, start: usize) -> Result<TokenKind, FrontendError> {
        self.bump(); // opening quote
        let c = match self.bump() {
            None | Some(b'\n') => return Err(self.err(start, "unterminated char literal")),
            Some(b'\\') => self.escape(start)?,
            Some(c) => c,
        };
        if self.bump() != Some(b'\'') {
            return Err(self.err(start, "char literal must contain exactly one character"));
        }
        Ok(TokenKind::CharLit(c))
    }
}

/// Convenience: lex `src` into tokens.
///
/// # Errors
///
/// Returns a [`FrontendError`] on any malformed token.
///
/// ```
/// let toks = minc::lex("int x = 42;").unwrap();
/// assert_eq!(toks.len(), 6); // int x = 42 ; EOF
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>, FrontendError> {
    Lexer::new(src).tokenize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as T;

    fn kinds(src: &str) -> Vec<T> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_declaration() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![
                T::KwInt,
                T::Ident("x".into()),
                T::Assign,
                T::IntLit {
                    value: 42,
                    long: false
                },
                T::Semi,
                T::Eof
            ]
        );
    }

    #[test]
    fn lexes_hex_and_long() {
        assert_eq!(
            kinds("0xff 10L"),
            vec![
                T::IntLit {
                    value: 255,
                    long: false
                },
                T::IntLit {
                    value: 10,
                    long: true
                },
                T::Eof
            ]
        );
    }

    #[test]
    fn lexes_floats() {
        assert_eq!(kinds("3.5"), vec![T::FloatLit(3.5), T::Eof]);
        assert_eq!(kinds("1.0e2"), vec![T::FloatLit(100.0), T::Eof]);
    }

    #[test]
    fn lexes_compound_operators() {
        assert_eq!(
            kinds("a <<= b >>= c -> d ++ --"),
            vec![
                T::Ident("a".into()),
                T::ShlAssign,
                T::Ident("b".into()),
                T::ShrAssign,
                T::Ident("c".into()),
                T::Arrow,
                T::Ident("d".into()),
                T::PlusPlus,
                T::MinusMinus,
                T::Eof
            ]
        );
    }

    #[test]
    fn lexes_string_with_escapes() {
        assert_eq!(
            kinds(r#""a\n\x41\0""#),
            vec![T::StrLit(vec![b'a', b'\n', b'A', 0]), T::Eof]
        );
    }

    #[test]
    fn lexes_char_literals() {
        assert_eq!(
            kinds(r"'a' '\n'"),
            vec![T::CharLit(b'a'), T::CharLit(b'\n'), T::Eof]
        );
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let toks = lex("// c1\n/* c2\nc3 */ x").unwrap();
        assert_eq!(toks[0].kind, T::Ident("x".into()));
        assert_eq!(toks[0].span.line, 3);
    }

    #[test]
    fn line_keyword() {
        assert_eq!(kinds("__LINE__"), vec![T::KwLine, T::Eof]);
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn rejects_stray_character() {
        assert!(lex("@").is_err());
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn multiline_span_records_end_line() {
        // A string cannot span lines, but a block comment between tokens
        // advances the line; check `end_line` via a parenthesized expr later.
        let toks = lex("x\ny").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
    }
}
