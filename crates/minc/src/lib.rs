//! # MinC — the CompDiff reproduction substrate language
//!
//! MinC is a small, deterministic C-like language built for the CompDiff
//! (ASPLOS 2023) reproduction. It deliberately keeps C's *undefined
//! behavior* surface: signed overflow, out-of-bounds access, uninitialized
//! reads, invalid pointer comparisons, unsequenced side effects, and
//! friends — because unstable code arising from those UBs is exactly what
//! CompDiff detects.
//!
//! This crate is the frontend only: lexer, parser, AST, and type checker.
//! Compilation (with the ten simulated compiler implementations) lives in
//! `minc-compile`; execution lives in `minc-vm`.
//!
//! ## Quick start
//!
//! ```
//! # fn main() -> Result<(), minc::FrontendError> {
//! let checked = minc::check(r#"
//!     int main() {
//!         printf("%d\n", 6 * 7);
//!         return 0;
//!     }
//! "#)?;
//! assert_eq!(checked.program.functions[0].name, "main");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod span;
pub mod token;
pub mod types;

pub use diag::{Diagnostic, FrontendError, Phase};
pub use lexer::lex;
pub use parser::parse;
pub use sema::{
    check, check_program, Builtin, CallTarget, CheckedProgram, LocalId, StaticId, VarRef,
};
pub use span::{NodeId, Span};
pub use types::Type;
