//! Recursive-descent parser for MinC.

use crate::ast::*;
use crate::diag::{Diagnostic, FrontendError, Phase};
use crate::lexer::lex;
use crate::span::{NodeId, Span};
use crate::token::{Token, TokenKind};
use crate::types::Type;

/// Parses MinC source into a [`Program`].
///
/// # Errors
///
/// Returns a [`FrontendError`] with the first lexical or syntactic error.
///
/// ```
/// let prog = minc::parse("int main() { return 0; }").unwrap();
/// assert_eq!(prog.functions.len(), 1);
/// ```
pub fn parse(src: &str) -> Result<Program, FrontendError> {
    let tokens = lex(src)?;
    Parser::new(tokens).program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_id: u32,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            next_id: 0,
        }
    }

    fn fresh(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        let idx = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, FrontendError> {
        if self.peek() == &kind {
            Ok(self.bump())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            )))
        }
    }

    fn error(&self, msg: impl Into<String>) -> FrontendError {
        Diagnostic::new(Phase::Parse, self.span(), msg).into()
    }

    fn ident(&mut self) -> Result<(String, Span), FrontendError> {
        let sp = self.span();
        match self.bump().kind {
            TokenKind::Ident(s) => Ok((s, sp)),
            other => Err(FrontendError::single(Diagnostic::new(
                Phase::Parse,
                sp,
                format!("expected identifier, found {}", other.describe()),
            ))),
        }
    }

    /// True if the token begins a type.
    fn is_type_start(kind: &TokenKind) -> bool {
        matches!(
            kind,
            TokenKind::KwChar
                | TokenKind::KwInt
                | TokenKind::KwLong
                | TokenKind::KwUnsigned
                | TokenKind::KwDouble
                | TokenKind::KwVoid
                | TokenKind::KwStruct
                | TokenKind::KwConst
        )
    }

    /// Parses a type: optional `const`, base type, then `*`s.
    fn parse_type(&mut self) -> Result<Type, FrontendError> {
        self.eat(&TokenKind::KwConst);
        let base = match self.bump().kind {
            TokenKind::KwChar => Type::Char,
            TokenKind::KwInt => Type::Int,
            TokenKind::KwLong => Type::Long,
            TokenKind::KwUnsigned => {
                // Allow `unsigned int`.
                self.eat(&TokenKind::KwInt);
                Type::UInt
            }
            TokenKind::KwDouble => Type::Double,
            TokenKind::KwVoid => Type::Void,
            TokenKind::KwStruct => {
                let (name, _) = self.ident()?;
                Type::Struct(name)
            }
            other => {
                return Err(FrontendError::single(Diagnostic::new(
                    Phase::Parse,
                    self.prev_span(),
                    format!("expected type, found {}", other.describe()),
                )));
            }
        };
        let mut ty = base;
        loop {
            self.eat(&TokenKind::KwConst);
            if self.eat(&TokenKind::Star) {
                ty = ty.ptr_to();
            } else {
                break;
            }
        }
        Ok(ty)
    }

    /// Parses optional array suffixes after a declarator name: `[N]`...
    fn array_suffix(&mut self, mut ty: Type) -> Result<Type, FrontendError> {
        let mut dims = Vec::new();
        while self.eat(&TokenKind::LBracket) {
            let sp = self.span();
            let n = match self.bump().kind {
                TokenKind::IntLit { value, .. } if value > 0 => value as u64,
                _ => {
                    return Err(FrontendError::single(Diagnostic::new(
                        Phase::Parse,
                        sp,
                        "array size must be a positive integer literal",
                    )));
                }
            };
            self.expect(TokenKind::RBracket)?;
            dims.push(n);
        }
        for n in dims.into_iter().rev() {
            ty = Type::Array(Box::new(ty), n);
        }
        Ok(ty)
    }

    fn program(&mut self) -> Result<Program, FrontendError> {
        let mut prog = Program::default();
        while self.peek() != &TokenKind::Eof {
            if self.peek() == &TokenKind::KwStruct
                && matches!(self.peek_at(1), TokenKind::Ident(_))
                && self.peek_at(2) == &TokenKind::LBrace
            {
                prog.structs.push(self.struct_def()?);
                continue;
            }
            // Global or function: [static] type name ( -> function, else global.
            let is_static = self.eat(&TokenKind::KwStatic);
            let start = self.span();
            let ty = self.parse_type()?;
            let (name, _) = self.ident()?;
            if self.peek() == &TokenKind::LParen {
                let f = self.function(ty, name, start)?;
                prog.functions.push(f);
            } else {
                let ty = self.array_suffix(ty)?;
                let init = if self.eat(&TokenKind::Assign) {
                    Some(self.assignment_expr()?)
                } else {
                    None
                };
                self.expect(TokenKind::Semi)?;
                let _ = is_static; // globals always have static storage duration
                prog.globals.push(Global {
                    id: self.fresh(),
                    name,
                    ty,
                    init,
                    span: start.merge(self.prev_span()),
                });
            }
        }
        Ok(prog)
    }

    fn struct_def(&mut self) -> Result<StructDef, FrontendError> {
        let start = self.span();
        self.expect(TokenKind::KwStruct)?;
        let (name, _) = self.ident()?;
        self.expect(TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            let fs = self.span();
            let ty = self.parse_type()?;
            let (fname, _) = self.ident()?;
            let ty = self.array_suffix(ty)?;
            self.expect(TokenKind::Semi)?;
            fields.push(Field {
                name: fname,
                ty,
                span: fs.merge(self.prev_span()),
            });
        }
        self.expect(TokenKind::RBrace)?;
        self.expect(TokenKind::Semi)?;
        Ok(StructDef {
            name,
            fields,
            span: start.merge(self.prev_span()),
        })
    }

    fn function(
        &mut self,
        ret: Type,
        name: String,
        start: Span,
    ) -> Result<Function, FrontendError> {
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &TokenKind::RParen {
            if self.peek() == &TokenKind::KwVoid && self.peek_at(1) == &TokenKind::RParen {
                self.bump();
            } else {
                loop {
                    let ps = self.span();
                    let ty = self.parse_type()?;
                    let (pname, _) = self.ident()?;
                    let ty = self.array_suffix(ty)?.decay();
                    params.push(Param {
                        name: pname,
                        ty,
                        span: ps.merge(self.prev_span()),
                    });
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let body = self.block()?;
        Ok(Function {
            id: self.fresh(),
            name,
            ret,
            params,
            body,
            span: start,
        })
    }

    fn block(&mut self) -> Result<Stmt, FrontendError> {
        let start = self.span();
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            if self.peek() == &TokenKind::Eof {
                return Err(self.error("unterminated block"));
            }
            stmts.push(self.statement()?);
        }
        self.expect(TokenKind::RBrace)?;
        Ok(Stmt {
            id: self.fresh(),
            span: start.merge(self.prev_span()),
            kind: StmtKind::Block(stmts),
        })
    }

    fn declaration(&mut self) -> Result<Stmt, FrontendError> {
        let start = self.span();
        let storage = if self.eat(&TokenKind::KwStatic) {
            Storage::Static
        } else {
            Storage::Auto
        };
        let ty = self.parse_type()?;
        let (name, _) = self.ident()?;
        let ty = self.array_suffix(ty)?;
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.assignment_expr()?)
        } else {
            None
        };
        self.expect(TokenKind::Semi)?;
        Ok(Stmt {
            id: self.fresh(),
            span: start.merge(self.prev_span()),
            kind: StmtKind::Decl {
                name,
                ty,
                storage,
                init,
            },
        })
    }

    fn statement(&mut self) -> Result<Stmt, FrontendError> {
        let start = self.span();
        match self.peek() {
            TokenKind::LBrace => self.block(),
            TokenKind::Semi => {
                self.bump();
                Ok(Stmt {
                    id: self.fresh(),
                    span: start,
                    kind: StmtKind::Empty,
                })
            }
            TokenKind::KwStatic => self.declaration(),
            k if Self::is_type_start(k) => self.declaration(),
            TokenKind::KwIf => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expression()?;
                self.expect(TokenKind::RParen)?;
                let then = Box::new(self.statement()?);
                let els = if self.eat(&TokenKind::KwElse) {
                    Some(Box::new(self.statement()?))
                } else {
                    None
                };
                Ok(Stmt {
                    id: self.fresh(),
                    span: start.merge(self.prev_span()),
                    kind: StmtKind::If { cond, then, els },
                })
            }
            TokenKind::KwWhile => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expression()?;
                self.expect(TokenKind::RParen)?;
                let body = Box::new(self.statement()?);
                Ok(Stmt {
                    id: self.fresh(),
                    span: start.merge(self.prev_span()),
                    kind: StmtKind::While { cond, body },
                })
            }
            TokenKind::KwDo => {
                self.bump();
                let body = Box::new(self.statement()?);
                self.expect(TokenKind::KwWhile)?;
                self.expect(TokenKind::LParen)?;
                let cond = self.expression()?;
                self.expect(TokenKind::RParen)?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt {
                    id: self.fresh(),
                    span: start.merge(self.prev_span()),
                    kind: StmtKind::DoWhile { body, cond },
                })
            }
            TokenKind::KwFor => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let init = if self.peek() == &TokenKind::Semi {
                    self.bump();
                    None
                } else if Self::is_type_start(self.peek()) || self.peek() == &TokenKind::KwStatic {
                    Some(Box::new(self.declaration()?))
                } else {
                    let e = self.expression()?;
                    self.expect(TokenKind::Semi)?;
                    Some(Box::new(Stmt {
                        id: self.fresh(),
                        span: e.span,
                        kind: StmtKind::Expr(e),
                    }))
                };
                let cond = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect(TokenKind::Semi)?;
                let step = if self.peek() == &TokenKind::RParen {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect(TokenKind::RParen)?;
                let body = Box::new(self.statement()?);
                Ok(Stmt {
                    id: self.fresh(),
                    span: start.merge(self.prev_span()),
                    kind: StmtKind::For {
                        init,
                        cond,
                        step,
                        body,
                    },
                })
            }
            TokenKind::KwReturn => {
                self.bump();
                let value = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect(TokenKind::Semi)?;
                Ok(Stmt {
                    id: self.fresh(),
                    span: start.merge(self.prev_span()),
                    kind: StmtKind::Return(value),
                })
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt {
                    id: self.fresh(),
                    span: start,
                    kind: StmtKind::Break,
                })
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt {
                    id: self.fresh(),
                    span: start,
                    kind: StmtKind::Continue,
                })
            }
            _ => {
                let e = self.expression()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt {
                    id: self.fresh(),
                    span: start.merge(self.prev_span()),
                    kind: StmtKind::Expr(e),
                })
            }
        }
    }

    // ---- expressions ----

    fn expression(&mut self) -> Result<Expr, FrontendError> {
        self.assignment_expr()
    }

    fn assignment_expr(&mut self) -> Result<Expr, FrontendError> {
        let lhs = self.conditional_expr()?;
        let op = match self.peek() {
            TokenKind::Assign => None,
            TokenKind::PlusAssign => Some(BinOp::Add),
            TokenKind::MinusAssign => Some(BinOp::Sub),
            TokenKind::StarAssign => Some(BinOp::Mul),
            TokenKind::SlashAssign => Some(BinOp::Div),
            TokenKind::PercentAssign => Some(BinOp::Rem),
            TokenKind::ShlAssign => Some(BinOp::Shl),
            TokenKind::ShrAssign => Some(BinOp::Shr),
            TokenKind::AmpAssign => Some(BinOp::BitAnd),
            TokenKind::PipeAssign => Some(BinOp::BitOr),
            TokenKind::CaretAssign => Some(BinOp::BitXor),
            _ => return Ok(lhs),
        };
        self.bump();
        let value = self.assignment_expr()?;
        let span = lhs.span.merge(value.span);
        Ok(Expr {
            id: self.fresh(),
            span,
            kind: ExprKind::Assign {
                op,
                target: Box::new(lhs),
                value: Box::new(value),
            },
        })
    }

    fn conditional_expr(&mut self) -> Result<Expr, FrontendError> {
        let cond = self.binary_expr(0)?;
        if !self.eat(&TokenKind::Question) {
            return Ok(cond);
        }
        let then = self.assignment_expr()?;
        self.expect(TokenKind::Colon)?;
        let els = self.conditional_expr()?;
        let span = cond.span.merge(els.span);
        Ok(Expr {
            id: self.fresh(),
            span,
            kind: ExprKind::Cond {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
            },
        })
    }

    /// Precedence levels, lowest first.
    fn binop_at(&self, level: u8) -> Option<BinOpOrLogical> {
        use BinOpOrLogical::*;
        let k = self.peek();
        let found = match (level, k) {
            (0, TokenKind::PipePipe) => Logical(false),
            (1, TokenKind::AmpAmp) => Logical(true),
            (2, TokenKind::Pipe) => Bin(BinOp::BitOr),
            (3, TokenKind::Caret) => Bin(BinOp::BitXor),
            (4, TokenKind::Amp) => Bin(BinOp::BitAnd),
            (5, TokenKind::EqEq) => Bin(BinOp::Eq),
            (5, TokenKind::BangEq) => Bin(BinOp::Ne),
            (6, TokenKind::Lt) => Bin(BinOp::Lt),
            (6, TokenKind::Le) => Bin(BinOp::Le),
            (6, TokenKind::Gt) => Bin(BinOp::Gt),
            (6, TokenKind::Ge) => Bin(BinOp::Ge),
            (7, TokenKind::Shl) => Bin(BinOp::Shl),
            (7, TokenKind::Shr) => Bin(BinOp::Shr),
            (8, TokenKind::Plus) => Bin(BinOp::Add),
            (8, TokenKind::Minus) => Bin(BinOp::Sub),
            (9, TokenKind::Star) => Bin(BinOp::Mul),
            (9, TokenKind::Slash) => Bin(BinOp::Div),
            (9, TokenKind::Percent) => Bin(BinOp::Rem),
            _ => return None,
        };
        Some(found)
    }

    fn binary_expr(&mut self, level: u8) -> Result<Expr, FrontendError> {
        if level > 9 {
            return self.unary_expr();
        }
        let mut lhs = self.binary_expr(level + 1)?;
        while let Some(op) = self.binop_at(level) {
            self.bump();
            let rhs = self.binary_expr(level + 1)?;
            let span = lhs.span.merge(rhs.span);
            lhs = match op {
                BinOpOrLogical::Bin(b) => Expr {
                    id: self.fresh(),
                    span,
                    kind: ExprKind::Binary {
                        op: b,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    },
                },
                BinOpOrLogical::Logical(and) => Expr {
                    id: self.fresh(),
                    span,
                    kind: ExprKind::Logical {
                        and,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    },
                },
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, FrontendError> {
        let start = self.span();
        let op = match self.peek() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Bang => Some(UnOp::Not),
            TokenKind::Tilde => Some(UnOp::BitNot),
            TokenKind::Star => Some(UnOp::Deref),
            TokenKind::Amp => Some(UnOp::Addr),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary_expr()?;
            let span = start.merge(operand.span);
            return Ok(Expr {
                id: self.fresh(),
                span,
                kind: ExprKind::Unary {
                    op,
                    operand: Box::new(operand),
                },
            });
        }
        if self.eat(&TokenKind::PlusPlus) {
            let target = self.unary_expr()?;
            let span = start.merge(target.span);
            return Ok(Expr {
                id: self.fresh(),
                span,
                kind: ExprKind::IncDec {
                    inc: true,
                    pre: true,
                    target: Box::new(target),
                },
            });
        }
        if self.eat(&TokenKind::MinusMinus) {
            let target = self.unary_expr()?;
            let span = start.merge(target.span);
            return Ok(Expr {
                id: self.fresh(),
                span,
                kind: ExprKind::IncDec {
                    inc: false,
                    pre: true,
                    target: Box::new(target),
                },
            });
        }
        if self.peek() == &TokenKind::KwSizeof {
            self.bump();
            if self.peek() == &TokenKind::LParen && Self::is_type_start(self.peek_at(1)) {
                self.bump();
                let ty = self.parse_type()?;
                let ty = self.array_suffix(ty)?;
                self.expect(TokenKind::RParen)?;
                let span = start.merge(self.prev_span());
                return Ok(Expr {
                    id: self.fresh(),
                    span,
                    kind: ExprKind::SizeofType(ty),
                });
            }
            let operand = self.unary_expr()?;
            let span = start.merge(operand.span);
            return Ok(Expr {
                id: self.fresh(),
                span,
                kind: ExprKind::SizeofExpr(Box::new(operand)),
            });
        }
        // Cast: '(' type ')' unary  — MinC has no typedefs, so a type keyword
        // after '(' is unambiguous.
        if self.peek() == &TokenKind::LParen && Self::is_type_start(self.peek_at(1)) {
            self.bump();
            let ty = self.parse_type()?;
            self.expect(TokenKind::RParen)?;
            let value = self.unary_expr()?;
            let span = start.merge(value.span);
            return Ok(Expr {
                id: self.fresh(),
                span,
                kind: ExprKind::Cast {
                    to: ty,
                    value: Box::new(value),
                },
            });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, FrontendError> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek() {
                TokenKind::LBracket => {
                    self.bump();
                    let index = self.expression()?;
                    self.expect(TokenKind::RBracket)?;
                    let span = e.span.merge(self.prev_span());
                    e = Expr {
                        id: self.fresh(),
                        span,
                        kind: ExprKind::Index {
                            base: Box::new(e),
                            index: Box::new(index),
                        },
                    };
                }
                TokenKind::Dot => {
                    self.bump();
                    let (field, fsp) = self.ident()?;
                    let span = e.span.merge(fsp);
                    e = Expr {
                        id: self.fresh(),
                        span,
                        kind: ExprKind::Member {
                            base: Box::new(e),
                            field,
                        },
                    };
                }
                TokenKind::Arrow => {
                    self.bump();
                    let (field, fsp) = self.ident()?;
                    let span = e.span.merge(fsp);
                    e = Expr {
                        id: self.fresh(),
                        span,
                        kind: ExprKind::Arrow {
                            base: Box::new(e),
                            field,
                        },
                    };
                }
                TokenKind::PlusPlus => {
                    self.bump();
                    let span = e.span.merge(self.prev_span());
                    e = Expr {
                        id: self.fresh(),
                        span,
                        kind: ExprKind::IncDec {
                            inc: true,
                            pre: false,
                            target: Box::new(e),
                        },
                    };
                }
                TokenKind::MinusMinus => {
                    self.bump();
                    let span = e.span.merge(self.prev_span());
                    e = Expr {
                        id: self.fresh(),
                        span,
                        kind: ExprKind::IncDec {
                            inc: false,
                            pre: false,
                            target: Box::new(e),
                        },
                    };
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, FrontendError> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::IntLit { value, long } => {
                self.bump();
                Ok(Expr {
                    id: self.fresh(),
                    span: start,
                    kind: ExprKind::IntLit { value, long },
                })
            }
            TokenKind::FloatLit(v) => {
                self.bump();
                Ok(Expr {
                    id: self.fresh(),
                    span: start,
                    kind: ExprKind::FloatLit(v),
                })
            }
            TokenKind::CharLit(c) => {
                self.bump();
                Ok(Expr {
                    id: self.fresh(),
                    span: start,
                    kind: ExprKind::CharLit(c),
                })
            }
            TokenKind::StrLit(bytes) => {
                self.bump();
                Ok(Expr {
                    id: self.fresh(),
                    span: start,
                    kind: ExprKind::StrLit(bytes),
                })
            }
            TokenKind::KwLine => {
                self.bump();
                Ok(Expr {
                    id: self.fresh(),
                    span: start,
                    kind: ExprKind::Line,
                })
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.peek() == &TokenKind::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &TokenKind::RParen {
                        loop {
                            args.push(self.assignment_expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    let span = start.merge(self.prev_span());
                    Ok(Expr {
                        id: self.fresh(),
                        span,
                        kind: ExprKind::Call { callee: name, args },
                    })
                } else {
                    Ok(Expr {
                        id: self.fresh(),
                        span: start,
                        kind: ExprKind::Var(name),
                    })
                }
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expression()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(self.error(format!("expected expression, found {}", other.describe()))),
        }
    }
}

enum BinOpOrLogical {
    Bin(BinOp),
    Logical(bool),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let p = parse("int main() { return 0; }").unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].name, "main");
        assert_eq!(p.functions[0].ret, Type::Int);
    }

    #[test]
    fn parses_params_and_arrays() {
        let p = parse("int f(int a, char* s, int v[4]) { return a; }").unwrap();
        let f = &p.functions[0];
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.params[1].ty, Type::Char.ptr_to());
        // Array params decay to pointers.
        assert_eq!(f.params[2].ty, Type::Int.ptr_to());
    }

    #[test]
    fn parses_globals_and_structs() {
        let p = parse(
            "struct pkt { int len; char payload[16]; };\n\
             int counter = 3;\n\
             struct pkt g;\n\
             int main() { return counter; }",
        )
        .unwrap();
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].fields.len(), 2);
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.globals[1].ty, Type::Struct("pkt".into()));
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let p = parse("int main() { return 1 + 2 * 3; }").unwrap();
        let body = &p.functions[0].body;
        let StmtKind::Block(stmts) = &body.kind else {
            panic!()
        };
        let StmtKind::Return(Some(e)) = &stmts[0].kind else {
            panic!()
        };
        let ExprKind::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = &e.kind
        else {
            panic!("expected top-level add, got {:?}", e.kind)
        };
        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_casts_and_sizeof() {
        let p = parse("int main() { long x = (long)1 * sizeof(int); return (int)x; }").unwrap();
        assert_eq!(p.functions.len(), 1);
    }

    #[test]
    fn parses_control_flow() {
        let src = "int main() {\n\
            int i;\n\
            for (i = 0; i < 10; i++) { if (i == 5) break; else continue; }\n\
            while (i > 0) i--;\n\
            do { i++; } while (i < 3);\n\
            return i;\n\
        }";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn parses_pointer_expressions() {
        let src = "int main() { int a[4]; int* p = &a[0]; *p = 1; p[1] = 2; return *(p + 1); }";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn parses_member_access() {
        let src = "struct s { int x; };\nint main() { struct s v; struct s* p = &v; v.x = 1; return p->x; }";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn parses_ternary_and_logical() {
        let src = "int main() { int a = 1; return a && 0 || 1 ? a : -a; }";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn parses_line_macro() {
        let p = parse("int main() { return __LINE__; }").unwrap();
        let StmtKind::Block(stmts) = &p.functions[0].body.kind else {
            panic!()
        };
        let StmtKind::Return(Some(e)) = &stmts[0].kind else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Line));
    }

    #[test]
    fn parses_static_local() {
        let p = parse("char* f() { static char buffer[8]; return buffer; }").unwrap();
        let StmtKind::Block(stmts) = &p.functions[0].body.kind else {
            panic!()
        };
        assert!(matches!(
            stmts[0].kind,
            StmtKind::Decl {
                storage: Storage::Static,
                ..
            }
        ));
    }

    #[test]
    fn rejects_missing_semicolon() {
        assert!(parse("int main() { return 0 }").is_err());
    }

    #[test]
    fn rejects_bad_array_size() {
        assert!(parse("int main() { int a[0]; return 0; }").is_err());
        assert!(parse("int main() { int a[x]; return 0; }").is_err());
    }

    #[test]
    fn node_ids_are_unique() {
        let p = parse("int main() { int x = 1 + 2; return x * x; }").unwrap();
        let mut seen = std::collections::HashSet::new();
        fn walk_expr(e: &Expr, seen: &mut std::collections::HashSet<u32>) {
            assert!(seen.insert(e.id.0), "duplicate node id {:?}", e.id);
            match &e.kind {
                ExprKind::Unary { operand, .. } => walk_expr(operand, seen),
                ExprKind::Binary { lhs, rhs, .. } | ExprKind::Logical { lhs, rhs, .. } => {
                    walk_expr(lhs, seen);
                    walk_expr(rhs, seen);
                }
                ExprKind::Assign { target, value, .. } => {
                    walk_expr(target, seen);
                    walk_expr(value, seen);
                }
                ExprKind::Cond { cond, then, els } => {
                    walk_expr(cond, seen);
                    walk_expr(then, seen);
                    walk_expr(els, seen);
                }
                ExprKind::Call { args, .. } => args.iter().for_each(|a| walk_expr(a, seen)),
                ExprKind::Index { base, index } => {
                    walk_expr(base, seen);
                    walk_expr(index, seen);
                }
                ExprKind::Member { base, .. } | ExprKind::Arrow { base, .. } => {
                    walk_expr(base, seen)
                }
                ExprKind::Cast { value, .. } => walk_expr(value, seen),
                ExprKind::IncDec { target, .. } => walk_expr(target, seen),
                ExprKind::SizeofExpr(e) => walk_expr(e, seen),
                _ => {}
            }
        }
        fn walk_stmt(s: &Stmt, seen: &mut std::collections::HashSet<u32>) {
            match &s.kind {
                StmtKind::Decl { init: Some(e), .. } => walk_expr(e, seen),
                StmtKind::Expr(e) => walk_expr(e, seen),
                StmtKind::If { cond, then, els } => {
                    walk_expr(cond, seen);
                    walk_stmt(then, seen);
                    if let Some(e) = els {
                        walk_stmt(e, seen);
                    }
                }
                StmtKind::While { cond, body } => {
                    walk_expr(cond, seen);
                    walk_stmt(body, seen);
                }
                StmtKind::DoWhile { body, cond } => {
                    walk_stmt(body, seen);
                    walk_expr(cond, seen);
                }
                StmtKind::For {
                    init,
                    cond,
                    step,
                    body,
                } => {
                    if let Some(i) = init {
                        walk_stmt(i, seen);
                    }
                    if let Some(c) = cond {
                        walk_expr(c, seen);
                    }
                    if let Some(st) = step {
                        walk_expr(st, seen);
                    }
                    walk_stmt(body, seen);
                }
                StmtKind::Return(Some(e)) => walk_expr(e, seen),
                StmtKind::Block(stmts) => stmts.iter().for_each(|s| walk_stmt(s, seen)),
                _ => {}
            }
        }
        walk_stmt(&p.functions[0].body, &mut seen);
        assert!(seen.len() >= 6);
    }
}
