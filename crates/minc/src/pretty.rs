//! Pretty-printer: renders an AST back to MinC source.
//!
//! Used by the Juliet generator for debugging and golden tests; the output
//! re-parses to an equivalent tree (round-trip property-tested in the
//! crate's test suite).

use crate::ast::*;
use crate::types::Type;
use std::fmt::Write;

/// Renders a whole program.
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    for s in &p.structs {
        let _ = writeln!(out, "struct {} {{", s.name);
        for f in &s.fields {
            let _ = writeln!(out, "    {};", declarator(&f.ty, &f.name));
        }
        let _ = writeln!(out, "}};");
    }
    for g in &p.globals {
        match &g.init {
            Some(init) => {
                let _ = writeln!(out, "{} = {};", declarator(&g.ty, &g.name), expr(init));
            }
            None => {
                let _ = writeln!(out, "{};", declarator(&g.ty, &g.name));
            }
        }
    }
    for f in &p.functions {
        let params = f
            .params
            .iter()
            .map(|p| declarator(&p.ty, &p.name))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "{} {}({}) {}",
            type_name(&f.ret),
            f.name,
            params,
            stmt(&f.body, 0)
        );
    }
    out
}

/// Renders a type as it appears before a declarator (`int*`, `struct s`).
pub fn type_name(t: &Type) -> String {
    t.to_string()
}

/// Renders `type name` with C array-suffix syntax.
pub fn declarator(t: &Type, name: &str) -> String {
    match t {
        Type::Array(inner, n) => {
            let base = declarator(inner, name);
            // Insert the dimension after the name (handles nested arrays).
            format!("{base}[{n}]")
        }
        other => format!("{} {}", type_name(other), name),
    }
}

/// Renders a statement at `indent` levels.
pub fn stmt(s: &Stmt, indent: usize) -> String {
    let pad = "    ".repeat(indent);
    match &s.kind {
        StmtKind::Decl {
            name,
            ty,
            storage,
            init,
        } => {
            let st = if *storage == Storage::Static {
                "static "
            } else {
                ""
            };
            match init {
                Some(e) => format!("{st}{} = {};", declarator(ty, name), expr(e)),
                None => format!("{st}{};", declarator(ty, name)),
            }
        }
        StmtKind::Expr(e) => format!("{};", expr(e)),
        StmtKind::If { cond, then, els } => {
            let mut out = format!("if ({}) {}", expr(cond), inner_stmt(then, indent));
            if let Some(e) = els {
                out.push_str(&format!(" else {}", inner_stmt(e, indent)));
            }
            out
        }
        StmtKind::While { cond, body } => {
            format!("while ({}) {}", expr(cond), inner_stmt(body, indent))
        }
        StmtKind::DoWhile { body, cond } => {
            format!("do {} while ({});", inner_stmt(body, indent), expr(cond))
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            let init_s = match init {
                Some(i) => stmt(i, 0),
                None => ";".to_string(),
            };
            let cond_s = cond.as_ref().map(expr).unwrap_or_default();
            let step_s = step.as_ref().map(expr).unwrap_or_default();
            format!(
                "for ({init_s} {cond_s}; {step_s}) {}",
                inner_stmt(body, indent)
            )
        }
        StmtKind::Return(None) => "return;".to_string(),
        StmtKind::Return(Some(e)) => format!("return {};", expr(e)),
        StmtKind::Break => "break;".to_string(),
        StmtKind::Continue => "continue;".to_string(),
        StmtKind::Block(stmts) => {
            let mut out = String::from("{\n");
            for st in stmts {
                let _ = writeln!(out, "{pad}    {}", stmt(st, indent + 1));
            }
            let _ = write!(out, "{pad}}}");
            out
        }
        StmtKind::Empty => ";".to_string(),
    }
}

fn inner_stmt(s: &Stmt, indent: usize) -> String {
    if matches!(s.kind, StmtKind::Block(_)) {
        stmt(s, indent)
    } else {
        // Wrap non-block bodies in braces for re-parse safety.
        format!("{{ {} }}", stmt(s, indent))
    }
}

/// Renders an expression (fully parenthesized — correctness over beauty).
pub fn expr(e: &Expr) -> String {
    match &e.kind {
        ExprKind::IntLit { value, long } => {
            if *long {
                format!("{value}L")
            } else if *value < 0 {
                // A negative literal only arises from folding; print in a
                // re-parseable form.
                format!("({value})").replace("(-", "(0 - ")
            } else {
                format!("{value}")
            }
        }
        ExprKind::FloatLit(v) => {
            if v.fract() == 0.0 && v.is_finite() {
                format!("{v:.1}")
            } else {
                format!("{v}")
            }
        }
        ExprKind::CharLit(c) => match *c {
            b'\n' => "'\\n'".to_string(),
            b'\t' => "'\\t'".to_string(),
            b'\\' => "'\\\\'".to_string(),
            b'\'' => "'\\''".to_string(),
            0 => "'\\0'".to_string(),
            c if c.is_ascii_graphic() || c == b' ' => format!("'{}'", c as char),
            c => format!("'\\x{c:02x}'"),
        },
        ExprKind::StrLit(bytes) => {
            let mut out = String::from("\"");
            for &b in bytes {
                match b {
                    b'\n' => out.push_str("\\n"),
                    b'\t' => out.push_str("\\t"),
                    b'"' => out.push_str("\\\""),
                    b'\\' => out.push_str("\\\\"),
                    0 => out.push_str("\\0"),
                    b if b.is_ascii_graphic() || b == b' ' => out.push(b as char),
                    b => out.push_str(&format!("\\x{b:02x}")),
                }
            }
            out.push('"');
            out
        }
        ExprKind::Var(n) => n.clone(),
        ExprKind::Line => "__LINE__".to_string(),
        ExprKind::Unary { op, operand } => {
            let o = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
                UnOp::BitNot => "~",
                UnOp::Deref => "*",
                UnOp::Addr => "&",
            };
            format!("({o}{})", expr(operand))
        }
        ExprKind::Binary { op, lhs, rhs } => {
            format!("({} {} {})", expr(lhs), binop(*op), expr(rhs))
        }
        ExprKind::Logical { and, lhs, rhs } => {
            format!(
                "({} {} {})",
                expr(lhs),
                if *and { "&&" } else { "||" },
                expr(rhs)
            )
        }
        ExprKind::Assign { op, target, value } => match op {
            Some(op) => format!("({} {}= {})", expr(target), binop(*op), expr(value)),
            None => format!("({} = {})", expr(target), expr(value)),
        },
        ExprKind::IncDec { inc, pre, target } => {
            let op = if *inc { "++" } else { "--" };
            if *pre {
                format!("({op}{})", expr(target))
            } else {
                format!("({}{op})", expr(target))
            }
        }
        ExprKind::Cond { cond, then, els } => {
            format!("({} ? {} : {})", expr(cond), expr(then), expr(els))
        }
        ExprKind::Call { callee, args } => {
            let a = args.iter().map(expr).collect::<Vec<_>>().join(", ");
            format!("{callee}({a})")
        }
        ExprKind::Index { base, index } => format!("{}[{}]", expr(base), expr(index)),
        ExprKind::Member { base, field } => format!("{}.{field}", expr(base)),
        ExprKind::Arrow { base, field } => format!("{}->{field}", expr(base)),
        ExprKind::Cast { to, value } => format!("(({}){})", type_name(to), expr(value)),
        ExprKind::SizeofType(t) => format!("sizeof({})", type_name(t)),
        ExprKind::SizeofExpr(inner) => format!("sizeof {}", expr(inner)),
    }
}

fn binop(op: BinOp) -> &'static str {
    use BinOp::*;
    match op {
        Add => "+",
        Sub => "-",
        Mul => "*",
        Div => "/",
        Rem => "%",
        Shl => "<<",
        Shr => ">>",
        Lt => "<",
        Le => "<=",
        Gt => ">",
        Ge => ">=",
        Eq => "==",
        Ne => "!=",
        BitAnd => "&",
        BitOr => "|",
        BitXor => "^",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn round_trips_simple_program() {
        let src = r#"
            struct pkt { int len; char payload[8]; };
            int counter = 3;
            int add(int a, int b) { return a + b; }
            int main() {
                int i;
                for (i = 0; i < 4; i++) { counter += add(i, 2); }
                struct pkt p;
                p.len = counter;
                char* s = "hi\n";
                printf("%d %s", p.len, s);
                return 0;
            }
        "#;
        let p1 = parse(src).unwrap();
        let printed = program(&p1);
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        // Structural equivalence modulo node ids/spans: compare re-printed text.
        assert_eq!(printed, program(&p2));
    }

    #[test]
    fn declarator_arrays() {
        assert_eq!(
            declarator(&Type::Array(Box::new(Type::Char), 16), "buf"),
            "char buf[16]"
        );
        assert_eq!(declarator(&Type::Int.ptr_to(), "p"), "int* p");
    }

    #[test]
    fn string_escapes() {
        let p = parse("int main() { char* s = \"a\\n\\x01\"; return 0; }").unwrap();
        let printed = program(&p);
        assert!(printed.contains("\\n"));
        assert!(printed.contains("\\x01"));
        parse(&printed).unwrap();
    }
}
