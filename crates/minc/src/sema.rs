//! Semantic analysis: name resolution and type checking.
//!
//! Produces a [`CheckedProgram`] with side tables that map AST nodes to
//! types and resolved symbols. Lowering (in `minc-compile`) consumes these
//! tables; it never re-resolves names.

use crate::ast::*;
use crate::diag::{Diagnostic, FrontendError, Phase};
use crate::span::{NodeId, Span};
use crate::types::{StructSizer, Type};
use std::collections::HashMap;

/// Identifies a local variable slot (parameters first, then declarations,
/// in syntactic order) within one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LocalId(pub u32);

/// Identifies a `static` local promoted to program-lifetime storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StaticId(pub u32);

/// What a variable reference resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarRef {
    /// Index into [`Program::globals`].
    Global(u32),
    /// A local (parameter or automatic declaration) of the enclosing function.
    Local(LocalId),
    /// A `static` local of the enclosing function.
    StaticLocal(StaticId),
}

/// Metadata about one local slot.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalInfo {
    /// Source name.
    pub name: String,
    /// Declared type (arrays kept as arrays; parameter arrays already decayed).
    pub ty: Type,
    /// True for function parameters (always initialized at entry).
    pub is_param: bool,
    /// The declaring node: the `Decl` statement or the `Param`-owning function.
    pub decl: NodeId,
}

/// Metadata about one `static` local.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticInfo {
    /// Mangled name `function.variable`.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Constant initializer, if any (checked to be constant).
    pub init: Option<Expr>,
}

/// Per-function resolution results.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FunctionInfo {
    /// All local slots; indices are [`LocalId`]s. Parameters come first.
    pub locals: Vec<LocalInfo>,
    /// All `static` locals; indices are [`StaticId`]s.
    pub statics: Vec<StaticInfo>,
}

/// Builtin functions provided by the MinC runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `printf(fmt, ...)`.
    Printf,
    /// `putchar(c)`.
    Putchar,
    /// `puts(s)`.
    Puts,
    /// `getchar()`.
    Getchar,
    /// `read_input(buf, n)` — copy up to `n` bytes of fuzz input.
    ReadInput,
    /// `input_size()` — total size of the fuzz input.
    InputSize,
    /// `malloc(n)`.
    Malloc,
    /// `free(p)`.
    Free,
    /// `memcpy(dst, src, n)`.
    Memcpy,
    /// `memset(p, v, n)`.
    Memset,
    /// `strlen(s)`.
    Strlen,
    /// `strcpy(dst, src)`.
    Strcpy,
    /// `strncpy(dst, src, n)`.
    Strncpy,
    /// `strcmp(a, b)`.
    Strcmp,
    /// `exit(code)`.
    Exit,
    /// `abort()`.
    Abort,
    /// `pow(x, y)`.
    Pow,
    /// `sqrt(x)`.
    Sqrt,
    /// `floor(x)`.
    Floor,
    /// `atoi(s)`.
    Atoi,
    /// `rand()` — implementation-defined PRNG sequence.
    Rand,
}

impl Builtin {
    /// Resolves a builtin by source name.
    pub fn by_name(name: &str) -> Option<Builtin> {
        use Builtin::*;
        Some(match name {
            "printf" => Printf,
            "putchar" => Putchar,
            "puts" => Puts,
            "getchar" => Getchar,
            "read_input" => ReadInput,
            "input_size" => InputSize,
            "malloc" => Malloc,
            "free" => Free,
            "memcpy" => Memcpy,
            "memset" => Memset,
            "strlen" => Strlen,
            "strcpy" => Strcpy,
            "strncpy" => Strncpy,
            "strcmp" => Strcmp,
            "exit" => Exit,
            "abort" => Abort,
            "pow" => Pow,
            "sqrt" => Sqrt,
            "floor" => Floor,
            "atoi" => Atoi,
            "rand" => Rand,
            _ => return None,
        })
    }

    /// `(params, variadic, return type)`. `None` in a parameter slot means
    /// "any pointer".
    pub fn signature(&self) -> (Vec<Option<Type>>, bool, Type) {
        use Builtin::*;
        let cp = Some(Type::Char.ptr_to());
        let vp: Option<Type> = None; // any pointer
        match self {
            Printf => (vec![cp.clone()], true, Type::Int),
            Putchar => (vec![Some(Type::Int)], false, Type::Int),
            Puts => (vec![cp.clone()], false, Type::Int),
            Getchar => (vec![], false, Type::Int),
            ReadInput => (vec![vp.clone(), Some(Type::Long)], false, Type::Long),
            InputSize => (vec![], false, Type::Long),
            Malloc => (vec![Some(Type::Long)], false, Type::Void.ptr_to()),
            Free => (vec![vp.clone()], false, Type::Void),
            Memcpy => (
                vec![vp.clone(), vp.clone(), Some(Type::Long)],
                false,
                Type::Void.ptr_to(),
            ),
            Memset => (
                vec![vp.clone(), Some(Type::Int), Some(Type::Long)],
                false,
                Type::Void.ptr_to(),
            ),
            Strlen => (vec![cp.clone()], false, Type::Long),
            Strcpy => (vec![cp.clone(), cp.clone()], false, Type::Char.ptr_to()),
            Strncpy => (
                vec![cp.clone(), cp.clone(), Some(Type::Long)],
                false,
                Type::Char.ptr_to(),
            ),
            Strcmp => (vec![cp.clone(), cp], false, Type::Int),
            Exit => (vec![Some(Type::Int)], false, Type::Void),
            Abort => (vec![], false, Type::Void),
            Pow => (
                vec![Some(Type::Double), Some(Type::Double)],
                false,
                Type::Double,
            ),
            Sqrt => (vec![Some(Type::Double)], false, Type::Double),
            Floor => (vec![Some(Type::Double)], false, Type::Double),
            Atoi => (vec![cp], false, Type::Int),
            Rand => (vec![], false, Type::Int),
        }
    }
}

/// What a call site resolved to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CallTarget {
    /// A user-defined function (index into [`Program::functions`]).
    Function(u32),
    /// A runtime builtin.
    Builtin(Builtin),
}

/// A type-checked program plus resolution side tables.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedProgram {
    /// The syntax tree.
    pub program: Program,
    /// Type of every expression node (arrays *not* yet decayed — lowering
    /// applies decay at use sites).
    pub types: HashMap<NodeId, Type>,
    /// Resolution of every `Var` node.
    pub vars: HashMap<NodeId, VarRef>,
    /// Resolution of every `Call` node.
    pub calls: HashMap<NodeId, CallTarget>,
    /// Local slot of every `Decl` statement node (automatic storage).
    pub decl_slots: HashMap<NodeId, LocalId>,
    /// Static slot of every `static` `Decl` statement node.
    pub static_slots: HashMap<NodeId, StaticId>,
    /// Per-function local/static inventories, indexed like `program.functions`.
    pub function_info: Vec<FunctionInfo>,
}

impl CheckedProgram {
    /// Type of an expression.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an expression of this program.
    pub fn type_of(&self, id: NodeId) -> &Type {
        &self.types[&id]
    }
}

impl StructSizer for CheckedProgram {
    fn packed_size(&self, name: &str) -> u64 {
        let def = self.program.struct_def(name).expect("unknown struct");
        def.fields.iter().map(|f| f.ty.size_packed(self)).sum()
    }
    fn align(&self, name: &str) -> u64 {
        let def = self.program.struct_def(name).expect("unknown struct");
        def.fields
            .iter()
            .map(|f| f.ty.align(self))
            .max()
            .unwrap_or(1)
    }
}

/// Parses and checks `src` in one step.
///
/// # Errors
///
/// Returns the first frontend error encountered.
///
/// ```
/// let checked = minc::check("int main() { return 1 + 2; }").unwrap();
/// assert_eq!(checked.program.functions.len(), 1);
/// ```
pub fn check(src: &str) -> Result<CheckedProgram, FrontendError> {
    let program = crate::parser::parse(src)?;
    check_program(program)
}

/// Type-checks a parsed program.
///
/// # Errors
///
/// Returns a [`FrontendError`] describing the first semantic error: unknown
/// names, type mismatches, invalid lvalues, duplicate definitions, missing
/// or ill-typed `main`, non-constant global initializers.
pub fn check_program(program: Program) -> Result<CheckedProgram, FrontendError> {
    let mut checker = Checker::new(&program)?;
    for (idx, g) in program.globals.iter().enumerate() {
        checker.check_global(idx, g)?;
    }
    let mut infos = Vec::new();
    for (idx, f) in program.functions.iter().enumerate() {
        infos.push(checker.check_function(idx as u32, f)?);
    }
    if let Some(main) = program.function("main") {
        if main.ret != Type::Int || !main.params.is_empty() {
            return Err(err(main.span, "`main` must be declared as `int main()`"));
        }
    } else {
        return Err(err(Span::dummy(), "program has no `main` function"));
    }
    Ok(CheckedProgram {
        types: checker.types,
        vars: checker.vars,
        calls: checker.calls,
        decl_slots: checker.decl_slots,
        static_slots: checker.static_slots,
        function_info: infos,
        program,
    })
}

fn err(span: Span, msg: impl Into<String>) -> FrontendError {
    Diagnostic::new(Phase::Sema, span, msg).into()
}

struct Checker<'p> {
    program: &'p Program,
    struct_index: HashMap<&'p str, &'p StructDef>,
    global_index: HashMap<&'p str, u32>,
    func_index: HashMap<&'p str, u32>,
    types: HashMap<NodeId, Type>,
    vars: HashMap<NodeId, VarRef>,
    calls: HashMap<NodeId, CallTarget>,
    decl_slots: HashMap<NodeId, LocalId>,
    static_slots: HashMap<NodeId, StaticId>,
}

struct FnCtx<'p> {
    func: &'p Function,
    info: FunctionInfo,
    /// Lexical scopes; each maps a name to a local or static slot.
    scopes: Vec<HashMap<String, VarRef>>,
    loop_depth: u32,
}

impl<'p> Checker<'p> {
    fn new(program: &'p Program) -> Result<Self, FrontendError> {
        let mut struct_index = HashMap::new();
        for s in &program.structs {
            if struct_index.insert(s.name.as_str(), s).is_some() {
                return Err(err(s.span, format!("duplicate struct `{}`", s.name)));
            }
            let mut names = std::collections::HashSet::new();
            for f in &s.fields {
                if !names.insert(f.name.as_str()) {
                    return Err(err(f.span, format!("duplicate field `{}`", f.name)));
                }
            }
        }
        let mut checker = Checker {
            program,
            struct_index,
            global_index: HashMap::new(),
            func_index: HashMap::new(),
            types: HashMap::new(),
            vars: HashMap::new(),
            calls: HashMap::new(),
            decl_slots: HashMap::new(),
            static_slots: HashMap::new(),
        };
        // Validate structs are complete & non-recursive (value fields only).
        for s in &program.structs {
            checker.check_struct_acyclic(s, &mut Vec::new())?;
            for f in &s.fields {
                checker.validate_type(&f.ty, f.span)?;
            }
        }
        for (i, g) in program.globals.iter().enumerate() {
            checker.validate_type(&g.ty, g.span)?;
            if g.ty == Type::Void {
                return Err(err(g.span, "global cannot have type void"));
            }
            if checker
                .global_index
                .insert(g.name.as_str(), i as u32)
                .is_some()
            {
                return Err(err(g.span, format!("duplicate global `{}`", g.name)));
            }
        }
        for (i, f) in program.functions.iter().enumerate() {
            if Builtin::by_name(&f.name).is_some() {
                return Err(err(f.span, format!("`{}` shadows a builtin", f.name)));
            }
            if checker
                .func_index
                .insert(f.name.as_str(), i as u32)
                .is_some()
            {
                return Err(err(f.span, format!("duplicate function `{}`", f.name)));
            }
        }
        Ok(checker)
    }

    fn check_struct_acyclic(
        &self,
        s: &'p StructDef,
        stack: &mut Vec<&'p str>,
    ) -> Result<(), FrontendError> {
        if stack.contains(&s.name.as_str()) {
            return Err(err(
                s.span,
                format!("struct `{}` recursively contains itself", s.name),
            ));
        }
        stack.push(&s.name);
        for f in &s.fields {
            let mut ty = &f.ty;
            while let Type::Array(inner, _) = ty {
                ty = inner;
            }
            if let Type::Struct(name) = ty {
                let inner = self
                    .struct_index
                    .get(name.as_str())
                    .ok_or_else(|| err(f.span, format!("unknown struct `{name}`")))?;
                self.check_struct_acyclic(inner, stack)?;
            }
        }
        stack.pop();
        Ok(())
    }

    fn validate_type(&self, ty: &Type, span: Span) -> Result<(), FrontendError> {
        match ty {
            Type::Struct(name) => {
                if !self.struct_index.contains_key(name.as_str()) {
                    return Err(err(span, format!("unknown struct `{name}`")));
                }
                Ok(())
            }
            Type::Ptr(t) => match &**t {
                Type::Struct(name) if !self.struct_index.contains_key(name.as_str()) => {
                    Err(err(span, format!("unknown struct `{name}`")))
                }
                _ => Ok(()),
            },
            Type::Array(t, _) => {
                if **t == Type::Void {
                    return Err(err(span, "array of void"));
                }
                self.validate_type(t, span)
            }
            _ => Ok(()),
        }
    }

    fn check_global(&mut self, _idx: usize, g: &Global) -> Result<(), FrontendError> {
        if let Some(init) = &g.init {
            if !is_const_expr(init) {
                return Err(err(
                    init.span,
                    "global initializer must be a constant expression",
                ));
            }
            // Type the initializer in a degenerate context (no locals).
            let mut ctx = FnCtx {
                func: self.program.functions.first().unwrap_or(&DUMMY_FN),
                info: FunctionInfo::default(),
                scopes: vec![HashMap::new()],
                loop_depth: 0,
            };
            let ity = self.check_expr(&mut ctx, init)?;
            if !assignable(&g.ty, &ity.decay(), init) {
                return Err(err(
                    init.span,
                    format!("cannot initialize `{}` with `{}`", g.ty, ity),
                ));
            }
        }
        Ok(())
    }

    fn check_function(
        &mut self,
        _idx: u32,
        f: &'p Function,
    ) -> Result<FunctionInfo, FrontendError> {
        self.validate_type(&f.ret, f.span)?;
        let mut ctx = FnCtx {
            func: f,
            info: FunctionInfo::default(),
            scopes: vec![HashMap::new()],
            loop_depth: 0,
        };
        for p in &f.params {
            self.validate_type(&p.ty, p.span)?;
            if p.ty == Type::Void {
                return Err(err(p.span, "parameter cannot have type void"));
            }
            if matches!(p.ty, Type::Struct(_)) {
                return Err(err(p.span, "struct parameters must be passed by pointer"));
            }
            let id = LocalId(ctx.info.locals.len() as u32);
            ctx.info.locals.push(LocalInfo {
                name: p.name.clone(),
                ty: p.ty.clone(),
                is_param: true,
                decl: f.id,
            });
            let scope = ctx.scopes.last_mut().unwrap();
            if scope.insert(p.name.clone(), VarRef::Local(id)).is_some() {
                return Err(err(p.span, format!("duplicate parameter `{}`", p.name)));
            }
        }
        if matches!(f.ret, Type::Struct(_) | Type::Array(..)) {
            return Err(err(
                f.span,
                "functions cannot return structs or arrays by value",
            ));
        }
        self.check_stmt(&mut ctx, &f.body)?;
        Ok(ctx.info)
    }

    fn lookup(&self, ctx: &FnCtx<'_>, name: &str) -> Option<VarRef> {
        for scope in ctx.scopes.iter().rev() {
            if let Some(r) = scope.get(name) {
                return Some(*r);
            }
        }
        self.global_index.get(name).map(|&i| VarRef::Global(i))
    }

    fn var_type(&self, ctx: &FnCtx<'_>, r: VarRef) -> Type {
        match r {
            VarRef::Global(i) => self.program.globals[i as usize].ty.clone(),
            VarRef::Local(LocalId(i)) => ctx.info.locals[i as usize].ty.clone(),
            VarRef::StaticLocal(StaticId(i)) => ctx.info.statics[i as usize].ty.clone(),
        }
    }

    fn check_stmt(&mut self, ctx: &mut FnCtx<'p>, s: &Stmt) -> Result<(), FrontendError> {
        match &s.kind {
            StmtKind::Decl {
                name,
                ty,
                storage,
                init,
            } => {
                self.validate_type(ty, s.span)?;
                if *ty == Type::Void {
                    return Err(err(s.span, "variable cannot have type void"));
                }
                let r = match storage {
                    Storage::Auto => {
                        let id = LocalId(ctx.info.locals.len() as u32);
                        ctx.info.locals.push(LocalInfo {
                            name: name.clone(),
                            ty: ty.clone(),
                            is_param: false,
                            decl: s.id,
                        });
                        self.decl_slots.insert(s.id, id);
                        VarRef::Local(id)
                    }
                    Storage::Static => {
                        if let Some(init) = init {
                            if !is_const_expr(init) {
                                return Err(err(
                                    init.span,
                                    "static local initializer must be a constant expression",
                                ));
                            }
                        }
                        let id = StaticId(ctx.info.statics.len() as u32);
                        ctx.info.statics.push(StaticInfo {
                            name: format!("{}.{}", ctx.func.name, name),
                            ty: ty.clone(),
                            init: init.clone(),
                        });
                        self.static_slots.insert(s.id, id);
                        VarRef::StaticLocal(id)
                    }
                };
                if let Some(init) = init {
                    let ity = self.check_expr(ctx, init)?;
                    if !assignable(ty, &ity.decay(), init) {
                        return Err(err(
                            init.span,
                            format!("cannot initialize `{ty}` with `{ity}`"),
                        ));
                    }
                }
                let scope = ctx.scopes.last_mut().unwrap();
                if scope.insert(name.clone(), r).is_some() {
                    return Err(err(s.span, format!("duplicate variable `{name}` in scope")));
                }
                Ok(())
            }
            StmtKind::Expr(e) => {
                self.check_expr(ctx, e)?;
                Ok(())
            }
            StmtKind::If { cond, then, els } => {
                self.check_cond(ctx, cond)?;
                self.check_stmt(ctx, then)?;
                if let Some(e) = els {
                    self.check_stmt(ctx, e)?;
                }
                Ok(())
            }
            StmtKind::While { cond, body } => {
                self.check_cond(ctx, cond)?;
                ctx.loop_depth += 1;
                self.check_stmt(ctx, body)?;
                ctx.loop_depth -= 1;
                Ok(())
            }
            StmtKind::DoWhile { body, cond } => {
                ctx.loop_depth += 1;
                self.check_stmt(ctx, body)?;
                ctx.loop_depth -= 1;
                self.check_cond(ctx, cond)?;
                Ok(())
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                ctx.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.check_stmt(ctx, i)?;
                }
                if let Some(c) = cond {
                    self.check_cond(ctx, c)?;
                }
                if let Some(st) = step {
                    self.check_expr(ctx, st)?;
                }
                ctx.loop_depth += 1;
                self.check_stmt(ctx, body)?;
                ctx.loop_depth -= 1;
                ctx.scopes.pop();
                Ok(())
            }
            StmtKind::Return(value) => match (value, &ctx.func.ret) {
                (None, Type::Void) => Ok(()),
                (None, ret) => Err(err(
                    s.span,
                    format!("function returns `{ret}`, missing value"),
                )),
                (Some(v), Type::Void) => Err(err(v.span, "void function cannot return a value")),
                (Some(v), ret) => {
                    let vt = self.check_expr(ctx, v)?;
                    if !assignable(ret, &vt.decay(), v) {
                        return Err(err(
                            v.span,
                            format!("cannot return `{vt}` from function returning `{ret}`"),
                        ));
                    }
                    Ok(())
                }
            },
            StmtKind::Break | StmtKind::Continue => {
                if ctx.loop_depth == 0 {
                    return Err(err(s.span, "break/continue outside a loop"));
                }
                Ok(())
            }
            StmtKind::Block(stmts) => {
                ctx.scopes.push(HashMap::new());
                for st in stmts {
                    self.check_stmt(ctx, st)?;
                }
                ctx.scopes.pop();
                Ok(())
            }
            StmtKind::Empty => Ok(()),
        }
    }

    fn check_cond(&mut self, ctx: &mut FnCtx<'p>, e: &Expr) -> Result<(), FrontendError> {
        let t = self.check_expr(ctx, e)?;
        if !t.decay().is_scalar() {
            return Err(err(
                e.span,
                format!("condition must be scalar, found `{t}`"),
            ));
        }
        Ok(())
    }

    fn check_expr(&mut self, ctx: &mut FnCtx<'p>, e: &Expr) -> Result<Type, FrontendError> {
        let ty = self.infer_expr(ctx, e)?;
        self.types.insert(e.id, ty.clone());
        Ok(ty)
    }

    fn infer_expr(&mut self, ctx: &mut FnCtx<'p>, e: &Expr) -> Result<Type, FrontendError> {
        match &e.kind {
            ExprKind::IntLit { long, .. } => Ok(if *long { Type::Long } else { Type::Int }),
            ExprKind::FloatLit(_) => Ok(Type::Double),
            ExprKind::CharLit(_) => Ok(Type::Int),
            ExprKind::StrLit(_) => Ok(Type::Char.ptr_to()),
            ExprKind::Line => Ok(Type::Int),
            ExprKind::Var(name) => {
                let r = self
                    .lookup(ctx, name)
                    .ok_or_else(|| err(e.span, format!("unknown variable `{name}`")))?;
                self.vars.insert(e.id, r);
                Ok(self.var_type(ctx, r))
            }
            ExprKind::Unary { op, operand } => {
                let t = self.check_expr(ctx, operand)?;
                match op {
                    UnOp::Neg => {
                        if !t.decay().is_arithmetic() {
                            return Err(err(e.span, format!("cannot negate `{t}`")));
                        }
                        Ok(if t == Type::Double {
                            Type::Double
                        } else {
                            t.promote()
                        })
                    }
                    UnOp::Not => {
                        if !t.decay().is_scalar() {
                            return Err(err(e.span, format!("cannot apply `!` to `{t}`")));
                        }
                        Ok(Type::Int)
                    }
                    UnOp::BitNot => {
                        if !t.decay().is_integer() {
                            return Err(err(e.span, format!("cannot apply `~` to `{t}`")));
                        }
                        Ok(t.promote())
                    }
                    UnOp::Deref => {
                        let d = t.decay();
                        let pointee = d
                            .pointee()
                            .ok_or_else(|| err(e.span, format!("cannot dereference `{t}`")))?;
                        if *pointee == Type::Void {
                            return Err(err(e.span, "cannot dereference void pointer"));
                        }
                        Ok(pointee.clone())
                    }
                    UnOp::Addr => {
                        if !is_lvalue(operand) {
                            return Err(err(e.span, "cannot take address of a non-lvalue"));
                        }
                        Ok(t.ptr_to())
                    }
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.check_expr(ctx, lhs)?.decay();
                let rt = self.check_expr(ctx, rhs)?.decay();
                self.binary_type(e.span, *op, &lt, &rt, lhs, rhs)
            }
            ExprKind::Logical { lhs, rhs, .. } => {
                for side in [lhs, rhs] {
                    let t = self.check_expr(ctx, side)?;
                    if !t.decay().is_scalar() {
                        return Err(err(
                            side.span,
                            format!("operand of logical op must be scalar, found `{t}`"),
                        ));
                    }
                }
                Ok(Type::Int)
            }
            ExprKind::Assign { op, target, value } => {
                if !is_lvalue(target) {
                    return Err(err(target.span, "assignment target is not an lvalue"));
                }
                let tt = self.check_expr(ctx, target)?;
                if matches!(tt, Type::Array(..)) {
                    return Err(err(target.span, "cannot assign to an array"));
                }
                let vt = self.check_expr(ctx, value)?.decay();
                if let Some(op) = op {
                    // Compound assignment: target op value must type-check.
                    self.binary_type(e.span, *op, &tt.decay(), &vt, target, value)?;
                } else if !assignable(&tt, &vt, value) {
                    return Err(err(e.span, format!("cannot assign `{vt}` to `{tt}`")));
                }
                Ok(tt)
            }
            ExprKind::IncDec { target, .. } => {
                if !is_lvalue(target) {
                    return Err(err(target.span, "operand of ++/-- is not an lvalue"));
                }
                let t = self.check_expr(ctx, target)?;
                let d = t.decay();
                if !d.is_integer() && !d.is_pointer() {
                    return Err(err(e.span, format!("cannot increment `{t}`")));
                }
                if matches!(t, Type::Array(..)) {
                    return Err(err(e.span, "cannot increment an array"));
                }
                Ok(t)
            }
            ExprKind::Cond { cond, then, els } => {
                self.check_cond(ctx, cond)?;
                let tt = self.check_expr(ctx, then)?.decay();
                let et = self.check_expr(ctx, els)?.decay();
                if tt.is_arithmetic() && et.is_arithmetic() {
                    Ok(Type::usual_arithmetic(&tt, &et))
                } else if tt.is_pointer() && (et.is_pointer() || is_null_literal(els)) {
                    Ok(tt)
                } else if et.is_pointer() && is_null_literal(then) {
                    Ok(et)
                } else if tt == Type::Void && et == Type::Void {
                    Ok(Type::Void)
                } else {
                    Err(err(
                        e.span,
                        format!("incompatible ternary branches `{tt}` and `{et}`"),
                    ))
                }
            }
            ExprKind::Call { callee, args } => {
                let target = if let Some(&i) = self.func_index.get(callee.as_str()) {
                    CallTarget::Function(i)
                } else if let Some(b) = Builtin::by_name(callee) {
                    CallTarget::Builtin(b)
                } else {
                    return Err(err(e.span, format!("unknown function `{callee}`")));
                };
                self.calls.insert(e.id, target.clone());
                let (params, variadic, ret): (Vec<Option<Type>>, bool, Type) = match &target {
                    CallTarget::Function(i) => {
                        let f = &self.program.functions[*i as usize];
                        (
                            f.params.iter().map(|p| Some(p.ty.clone())).collect(),
                            false,
                            f.ret.clone(),
                        )
                    }
                    CallTarget::Builtin(b) => b.signature(),
                };
                if args.len() < params.len() || (!variadic && args.len() > params.len()) {
                    return Err(err(
                        e.span,
                        format!(
                            "`{callee}` expects {} argument(s), got {}",
                            params.len(),
                            args.len()
                        ),
                    ));
                }
                for (i, a) in args.iter().enumerate() {
                    let at = self.check_expr(ctx, a)?.decay();
                    if let Some(Some(pt)) = params.get(i) {
                        if !assignable(pt, &at, a) {
                            return Err(err(
                                a.span,
                                format!(
                                    "argument {} of `{callee}`: cannot pass `{at}` as `{pt}`",
                                    i + 1
                                ),
                            ));
                        }
                    } else if let Some(None) = params.get(i) {
                        if !at.is_pointer() && !is_null_literal(a) {
                            return Err(err(
                                a.span,
                                format!(
                                    "argument {} of `{callee}` must be a pointer, found `{at}`",
                                    i + 1
                                ),
                            ));
                        }
                    } else if !at.is_scalar() {
                        // Variadic extras must be scalar.
                        return Err(err(a.span, format!("cannot pass `{at}` variadically")));
                    }
                }
                Ok(ret)
            }
            ExprKind::Index { base, index } => {
                let bt = self.check_expr(ctx, base)?.decay();
                let it = self.check_expr(ctx, index)?.decay();
                if !it.is_integer() {
                    return Err(err(
                        index.span,
                        format!("array index must be an integer, found `{it}`"),
                    ));
                }
                let pointee = bt
                    .pointee()
                    .ok_or_else(|| err(base.span, format!("cannot index `{bt}`")))?;
                Ok(pointee.clone())
            }
            ExprKind::Member { base, field } => {
                let bt = self.check_expr(ctx, base)?;
                let Type::Struct(name) = &bt else {
                    return Err(err(base.span, format!("`.` applied to non-struct `{bt}`")));
                };
                self.field_type(name, field, e.span)
            }
            ExprKind::Arrow { base, field } => {
                let bt = self.check_expr(ctx, base)?.decay();
                let Some(Type::Struct(name)) = bt.pointee().cloned() else {
                    return Err(err(base.span, format!("`->` applied to `{bt}`")));
                };
                self.field_type(&name, field, e.span)
            }
            ExprKind::Cast { to, value } => {
                self.validate_type(to, e.span)?;
                let vt = self.check_expr(ctx, value)?.decay();
                let ok = match (to, &vt) {
                    (Type::Void, _) => true,
                    (t, v) if t.is_arithmetic() && v.is_arithmetic() => true,
                    (Type::Ptr(_), Type::Ptr(_)) => true,
                    (Type::Ptr(_), v) if v.is_integer() => true,
                    (t, Type::Ptr(_)) if t.is_integer() => true,
                    _ => false,
                };
                if !ok {
                    return Err(err(e.span, format!("invalid cast from `{vt}` to `{to}`")));
                }
                Ok(to.clone())
            }
            ExprKind::SizeofType(ty) => {
                self.validate_type(ty, e.span)?;
                if *ty == Type::Void {
                    return Err(err(e.span, "sizeof(void) is invalid"));
                }
                Ok(Type::Long)
            }
            ExprKind::SizeofExpr(inner) => {
                let t = self.check_expr(ctx, inner)?;
                if t == Type::Void {
                    return Err(err(e.span, "sizeof of void expression"));
                }
                Ok(Type::Long)
            }
        }
    }

    fn field_type(
        &self,
        struct_name: &str,
        field: &str,
        span: Span,
    ) -> Result<Type, FrontendError> {
        let def = self
            .struct_index
            .get(struct_name)
            .ok_or_else(|| err(span, format!("unknown struct `{struct_name}`")))?;
        def.fields
            .iter()
            .find(|f| f.name == field)
            .map(|f| f.ty.clone())
            .ok_or_else(|| {
                err(
                    span,
                    format!("struct `{struct_name}` has no field `{field}`"),
                )
            })
    }

    fn binary_type(
        &self,
        span: Span,
        op: BinOp,
        lt: &Type,
        rt: &Type,
        lhs: &Expr,
        rhs: &Expr,
    ) -> Result<Type, FrontendError> {
        use BinOp::*;
        match op {
            Add => {
                if lt.is_arithmetic() && rt.is_arithmetic() {
                    Ok(Type::usual_arithmetic(lt, rt))
                } else if lt.is_pointer() && rt.is_integer() {
                    Ok(lt.clone())
                } else if lt.is_integer() && rt.is_pointer() {
                    Ok(rt.clone())
                } else {
                    Err(err(span, format!("cannot add `{lt}` and `{rt}`")))
                }
            }
            Sub => {
                if lt.is_arithmetic() && rt.is_arithmetic() {
                    Ok(Type::usual_arithmetic(lt, rt))
                } else if lt.is_pointer() && rt.is_integer() {
                    Ok(lt.clone())
                } else if lt.is_pointer() && rt.is_pointer() {
                    // Pointer subtraction: UB across objects (CWE-469).
                    Ok(Type::Long)
                } else {
                    Err(err(span, format!("cannot subtract `{rt}` from `{lt}`")))
                }
            }
            Mul | Div => {
                if lt.is_arithmetic() && rt.is_arithmetic() {
                    Ok(Type::usual_arithmetic(lt, rt))
                } else {
                    Err(err(span, format!("invalid operands `{lt}` and `{rt}`")))
                }
            }
            Rem | BitAnd | BitOr | BitXor => {
                if lt.is_integer() && rt.is_integer() {
                    Ok(Type::usual_arithmetic(lt, rt))
                } else {
                    Err(err(span, format!("invalid operands `{lt}` and `{rt}`")))
                }
            }
            Shl | Shr => {
                if lt.is_integer() && rt.is_integer() {
                    Ok(lt.promote())
                } else {
                    Err(err(
                        span,
                        format!("invalid shift operands `{lt}` and `{rt}`"),
                    ))
                }
            }
            Lt | Le | Gt | Ge | Eq | Ne => {
                let ok = (lt.is_arithmetic() && rt.is_arithmetic())
                    || (lt.is_pointer() && rt.is_pointer())
                    || (lt.is_pointer() && is_null_literal(rhs))
                    || (rt.is_pointer() && is_null_literal(lhs));
                if ok {
                    Ok(Type::Int)
                } else {
                    Err(err(span, format!("cannot compare `{lt}` and `{rt}`")))
                }
            }
        }
    }
}

static DUMMY_FN: std::sync::LazyLock<Function> = std::sync::LazyLock::new(|| Function {
    id: NodeId(u32::MAX),
    name: String::new(),
    ret: Type::Void,
    params: Vec::new(),
    body: Stmt {
        id: NodeId(u32::MAX),
        span: Span::dummy(),
        kind: StmtKind::Empty,
    },
    span: Span::dummy(),
});

/// True if `e` can appear on the left of `=` / under `&`.
pub fn is_lvalue(e: &Expr) -> bool {
    matches!(
        e.kind,
        ExprKind::Var(_)
            | ExprKind::Index { .. }
            | ExprKind::Member { .. }
            | ExprKind::Arrow { .. }
            | ExprKind::Unary {
                op: UnOp::Deref,
                ..
            }
    )
}

/// True for the integer literal `0` (a null pointer constant).
pub fn is_null_literal(e: &Expr) -> bool {
    matches!(e.kind, ExprKind::IntLit { value: 0, .. })
        || matches!(&e.kind, ExprKind::Cast { to, value } if to.is_pointer() && is_null_literal(value))
}

/// Conservative constant-expression test for global/static initializers.
pub fn is_const_expr(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::IntLit { .. }
        | ExprKind::FloatLit(_)
        | ExprKind::CharLit(_)
        | ExprKind::StrLit(_) => true,
        ExprKind::Unary {
            op: UnOp::Neg | UnOp::BitNot | UnOp::Not,
            operand,
        } => is_const_expr(operand),
        ExprKind::Binary { lhs, rhs, .. } => is_const_expr(lhs) && is_const_expr(rhs),
        ExprKind::Cast { value, .. } => is_const_expr(value),
        ExprKind::SizeofType(_) => true,
        _ => false,
    }
}

/// Implicit-conversion check: can a value of `from` initialize/assign a
/// location of type `to`? `value` allows the null-literal special case.
pub fn assignable(to: &Type, from: &Type, value: &Expr) -> bool {
    if matches!(to, Type::Struct(_) | Type::Array(..)) {
        // MinC has no whole-aggregate assignment; use field writes/memcpy.
        return false;
    }
    if to == from {
        return true;
    }
    if to.is_arithmetic() && from.is_arithmetic() {
        return true;
    }
    if to.is_pointer() && from.is_pointer() {
        // MinC is permissive: any pointer converts to any pointer (C would
        // warn; real-world fuzz targets do this all the time).
        return true;
    }
    if to.is_pointer() && is_null_literal(value) {
        return true;
    }
    // Array locations can be initialized from compatible pointers only via
    // memcpy; disallow direct assignment.
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<CheckedProgram, FrontendError> {
        check_program(parse(src).unwrap())
    }

    #[test]
    fn accepts_listing1_style_program() {
        let src = r#"
            int dump_data(int offset, int len) {
                int size = 100;
                if (offset + len > size || offset < 0 || len < 0) { return -1; }
                if (offset + len < offset) { return -1; }
                return 0;
            }
            int main() { return dump_data(3, 4); }
        "#;
        let c = check_src(src).unwrap();
        assert_eq!(c.program.functions.len(), 2);
        assert_eq!(c.function_info[0].locals.len(), 3); // offset, len, size
    }

    #[test]
    fn types_pointer_arithmetic() {
        let src = "int main() { int a[4]; int* p = a; long d = (p + 2) - p; return (int)d; }";
        let c = check_src(src).unwrap();
        assert!(c.types.values().any(|t| *t == Type::Int.ptr_to()));
    }

    #[test]
    fn rejects_unknown_variable() {
        let e = check_src("int main() { return zz; }").unwrap_err();
        assert!(e.to_string().contains("unknown variable"));
    }

    #[test]
    fn rejects_unknown_function() {
        let e = check_src("int main() { return nope(); }").unwrap_err();
        assert!(e.to_string().contains("unknown function"));
    }

    #[test]
    fn rejects_bad_main_signature() {
        let e = check_src("void main() { }").unwrap_err();
        assert!(e.to_string().contains("main"));
    }

    #[test]
    fn requires_main() {
        let e = check_src("int f() { return 0; }").unwrap_err();
        assert!(e.to_string().contains("no `main`"));
    }

    #[test]
    fn resolves_static_locals() {
        let src = r#"
            char* get_buf() { static char buffer[8]; return buffer; }
            int main() { return (int)strlen(get_buf()); }
        "#;
        let c = check_src(src).unwrap();
        assert_eq!(c.function_info[0].statics.len(), 1);
        assert_eq!(c.function_info[0].statics[0].name, "get_buf.buffer");
    }

    #[test]
    fn scoping_shadows_outer() {
        let src = r#"
            int main() {
                int x = 1;
                { int x = 2; if (x != 2) return 1; }
                return x;
            }
        "#;
        let c = check_src(src).unwrap();
        // Two distinct locals named x.
        assert_eq!(c.function_info.last().unwrap().locals.len(), 2);
    }

    #[test]
    fn rejects_duplicate_in_same_scope() {
        let e = check_src("int main() { int x; int x; return 0; }").unwrap_err();
        assert!(e.to_string().contains("duplicate variable"));
    }

    #[test]
    fn checks_struct_member_access() {
        let src = r#"
            struct pkt { int len; char tag; };
            int main() { struct pkt p; p.len = 3; struct pkt* q = &p; return q->len; }
        "#;
        check_src(src).unwrap();
    }

    #[test]
    fn rejects_unknown_field() {
        let src = "struct s { int a; };\nint main() { struct s v; return v.b; }";
        let e = check_src(src).unwrap_err();
        assert!(e.to_string().contains("no field"));
    }

    #[test]
    fn rejects_recursive_struct_by_value() {
        let src = "struct s { struct s inner; };\nint main() { return 0; }";
        assert!(check_src(src).is_err());
    }

    #[test]
    fn allows_recursive_struct_by_pointer() {
        let src = "struct s { struct s* next; int v; };\nint main() { struct s n; n.next = 0; return n.v = 1; }";
        check_src(src).unwrap();
    }

    #[test]
    fn builtin_calls_are_resolved() {
        let src = r#"int main() { char buf[8]; memset(buf, 0, 8); printf("%d\n", 1); return 0; }"#;
        let c = check_src(src).unwrap();
        assert!(c
            .calls
            .values()
            .any(|t| matches!(t, CallTarget::Builtin(Builtin::Printf))));
    }

    #[test]
    fn rejects_wrong_arity() {
        let e =
            check_src("int f(int a) { return a; }\nint main() { return f(1, 2); }").unwrap_err();
        assert!(e.to_string().contains("expects 1 argument"));
    }

    #[test]
    fn rejects_assign_to_rvalue() {
        let e = check_src("int main() { 3 = 4; return 0; }").unwrap_err();
        assert!(e.to_string().contains("not an lvalue"));
    }

    #[test]
    fn rejects_break_outside_loop() {
        let e = check_src("int main() { break; return 0; }").unwrap_err();
        assert!(e.to_string().contains("outside a loop"));
    }

    #[test]
    fn global_initializers_must_be_const() {
        let e = check_src("int g = getchar();\nint main() { return g; }").unwrap_err();
        assert!(e.to_string().contains("constant expression"));
    }

    #[test]
    fn pointer_comparison_is_well_typed_even_if_ub() {
        // Comparing pointers to different objects type-checks (UB is a
        // *dynamic* property exploited by optimizers, not a type error).
        let src = "int main() { int a; int b; if (&a < &b) return 1; return 0; }";
        check_src(src).unwrap();
    }

    #[test]
    fn usual_conversions_in_binary_ops() {
        let src = "int main() { long l = 1; int i = 2; unsigned u = 3; double d = l + i; return (int)(u + i) + (int)d; }";
        let c = check_src(src).unwrap();
        assert!(c.types.values().any(|t| *t == Type::Long));
        assert!(c.types.values().any(|t| *t == Type::UInt));
    }

    #[test]
    fn variadic_printf_accepts_extra_scalars() {
        let src = r#"int main() { printf("%d %s %f", 1, "x", 2.0); return 0; }"#;
        check_src(src).unwrap();
    }

    #[test]
    fn sizeof_is_long() {
        let src = "int main() { return (int)sizeof(long); }";
        let c = check_src(src).unwrap();
        assert!(c.types.values().any(|t| *t == Type::Long));
    }
}
