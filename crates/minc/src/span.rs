//! Source positions and spans.

use std::fmt;

/// A half-open byte range into a source file, with the 1-based line number
/// of its start for diagnostics and for the `__LINE__` builtin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based line number of `end` (may differ for multi-line constructs;
    /// compiler implementations legally disagree on which one `__LINE__`
    /// style attribution uses).
    pub end_line: u32,
}

impl Span {
    /// Creates a span covering `start..end` on a single line.
    pub fn new(start: u32, end: u32, line: u32) -> Self {
        Span {
            start,
            end,
            line,
            end_line: line,
        }
    }

    /// A zero-width placeholder span.
    pub fn dummy() -> Self {
        Span::default()
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
            end_line: self.end_line.max(other.end_line),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

/// Identifies an AST node; assigned densely by the parser so analyses can
/// attach side tables (e.g. inferred types) without mutating the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(2, 5, 1);
        let b = Span::new(7, 9, 3);
        let m = a.merge(b);
        assert_eq!(m.start, 2);
        assert_eq!(m.end, 9);
        assert_eq!(m.end_line, 3);
    }

    #[test]
    fn display_mentions_line() {
        assert_eq!(Span::new(0, 1, 42).to_string(), "line 42");
    }
}
