//! Lexical tokens of MinC.

use crate::span::Span;
use std::fmt;

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // inline variant fields are described by the variant docs
pub enum TokenKind {
    // Literals and identifiers.
    /// Integer literal value plus a flag for a `L` suffix.
    IntLit { value: i64, long: bool },
    /// Floating point literal.
    FloatLit(f64),
    /// Character literal, already decoded.
    CharLit(u8),
    /// String literal, already unescaped.
    StrLit(Vec<u8>),
    /// Identifier or keyword candidate.
    Ident(String),

    // Keywords.
    /// `char`
    KwChar,
    /// `int`
    KwInt,
    /// `long`
    KwLong,
    /// `unsigned`
    KwUnsigned,
    /// `double`
    KwDouble,
    /// `void`
    KwVoid,
    /// `struct`
    KwStruct,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `for`
    KwFor,
    /// `do`
    KwDo,
    /// `return`
    KwReturn,
    /// `break`
    KwBreak,
    /// `continue`
    KwContinue,
    /// `static`
    KwStatic,
    /// `sizeof`
    KwSizeof,
    /// `const`
    KwConst,
    /// The `__LINE__` builtin macro.
    KwLine,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `?`
    Question,
    /// `:`
    Colon,

    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    BangEq,
    /// `&&`
    AmpAmp,
    /// `||`
    PipePipe,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,

    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `/=`
    SlashAssign,
    /// `%=`
    PercentAssign,
    /// `<<=`
    ShlAssign,
    /// `>>=`
    ShrAssign,
    /// `&=`
    AmpAssign,
    /// `|=`
    PipeAssign,
    /// `^=`
    CaretAssign,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable name used in diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::IntLit { value, .. } => format!("integer literal `{value}`"),
            TokenKind::FloatLit(v) => format!("float literal `{v}`"),
            TokenKind::CharLit(c) => format!("char literal `{}`", *c as char),
            TokenKind::StrLit(_) => "string literal".to_string(),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        use TokenKind::*;
        match self {
            KwChar => "char",
            KwInt => "int",
            KwLong => "long",
            KwUnsigned => "unsigned",
            KwDouble => "double",
            KwVoid => "void",
            KwStruct => "struct",
            KwIf => "if",
            KwElse => "else",
            KwWhile => "while",
            KwFor => "for",
            KwDo => "do",
            KwReturn => "return",
            KwBreak => "break",
            KwContinue => "continue",
            KwStatic => "static",
            KwSizeof => "sizeof",
            KwConst => "const",
            KwLine => "__LINE__",
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Dot => ".",
            Arrow => "->",
            Question => "?",
            Colon => ":",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            Tilde => "~",
            Bang => "!",
            Shl => "<<",
            Shr => ">>",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            EqEq => "==",
            BangEq => "!=",
            AmpAmp => "&&",
            PipePipe => "||",
            PlusPlus => "++",
            MinusMinus => "--",
            Assign => "=",
            PlusAssign => "+=",
            MinusAssign => "-=",
            StarAssign => "*=",
            SlashAssign => "/=",
            PercentAssign => "%=",
            ShlAssign => "<<=",
            ShrAssign => ">>=",
            AmpAssign => "&=",
            PipeAssign => "|=",
            CaretAssign => "^=",
            _ => "?",
        }
    }

    /// Maps an identifier to its keyword kind, if it is a keyword.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        Some(match ident {
            "char" => TokenKind::KwChar,
            "int" => TokenKind::KwInt,
            "long" => TokenKind::KwLong,
            "unsigned" => TokenKind::KwUnsigned,
            "double" => TokenKind::KwDouble,
            "void" => TokenKind::KwVoid,
            "struct" => TokenKind::KwStruct,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "for" => TokenKind::KwFor,
            "do" => TokenKind::KwDo,
            "return" => TokenKind::KwReturn,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            "static" => TokenKind::KwStatic,
            "sizeof" => TokenKind::KwSizeof,
            "const" => TokenKind::KwConst,
            "__LINE__" => TokenKind::KwLine,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("while"), Some(TokenKind::KwWhile));
        assert_eq!(TokenKind::keyword("__LINE__"), Some(TokenKind::KwLine));
        assert_eq!(TokenKind::keyword("whale"), None);
    }

    #[test]
    fn describe_is_informative() {
        assert_eq!(TokenKind::Arrow.describe(), "`->`");
        assert_eq!(
            TokenKind::IntLit {
                value: 7,
                long: false
            }
            .describe(),
            "integer literal `7`"
        );
    }
}
