//! The MinC type system.
//!
//! MinC has the C-like scalar types `char` (signed 8-bit), `int` (signed
//! 32-bit), `unsigned` (unsigned 32-bit), `long` (signed 64-bit), `double`
//! (IEEE 754 binary64), pointers, fixed-size arrays, and named structs.
//! Signed integer overflow is undefined behavior; unsigned arithmetic wraps.

use std::fmt;

/// A MinC type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `void` — only valid as a function return type or behind a pointer.
    Void,
    /// Signed 8-bit integer.
    Char,
    /// Signed 32-bit integer.
    Int,
    /// Unsigned 32-bit integer (wrapping arithmetic is *defined*).
    UInt,
    /// Signed 64-bit integer.
    Long,
    /// IEEE 754 double.
    Double,
    /// Pointer to another type.
    Ptr(Box<Type>),
    /// Fixed-size array.
    Array(Box<Type>, u64),
    /// Named struct; resolved against the program's struct table.
    Struct(String),
}

impl Type {
    /// Pointer to `self`.
    pub fn ptr_to(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    /// True for `char`, `int`, `unsigned`, `long`.
    pub fn is_integer(&self) -> bool {
        matches!(self, Type::Char | Type::Int | Type::UInt | Type::Long)
    }

    /// True for signed integer types (overflow is UB).
    pub fn is_signed_integer(&self) -> bool {
        matches!(self, Type::Char | Type::Int | Type::Long)
    }

    /// True for any arithmetic type (integers and `double`).
    pub fn is_arithmetic(&self) -> bool {
        self.is_integer() || matches!(self, Type::Double)
    }

    /// True for pointer types.
    pub fn is_pointer(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// True for types usable in a boolean context (condition).
    pub fn is_scalar(&self) -> bool {
        self.is_arithmetic() || self.is_pointer()
    }

    /// The pointee of a pointer, or element type of an array.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) => Some(t),
            Type::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// Array-to-pointer decay: `T[N]` becomes `T*`; other types unchanged.
    pub fn decay(&self) -> Type {
        match self {
            Type::Array(t, _) => Type::Ptr(t.clone()),
            other => other.clone(),
        }
    }

    /// Size of the type in bytes on the (single) MinC target.
    ///
    /// Struct sizes depend on implementation-defined layout and must be
    /// looked up through the compiler's layout engine; this returns the
    /// *minimum* (packed) size for structs, which the frontend uses only to
    /// validate `sizeof` on complete types.
    ///
    /// # Panics
    ///
    /// Panics on `void`.
    pub fn size_packed(&self, structs: &dyn StructSizer) -> u64 {
        match self {
            Type::Void => panic!("void has no size"),
            Type::Char => 1,
            Type::Int | Type::UInt => 4,
            Type::Long | Type::Double | Type::Ptr(_) => 8,
            Type::Array(t, n) => t.size_packed(structs) * n,
            Type::Struct(name) => structs.packed_size(name),
        }
    }

    /// Natural alignment of the type in bytes (structs: max field alignment).
    pub fn align(&self, structs: &dyn StructSizer) -> u64 {
        match self {
            Type::Void => 1,
            Type::Char => 1,
            Type::Int | Type::UInt => 4,
            Type::Long | Type::Double | Type::Ptr(_) => 8,
            Type::Array(t, _) => t.align(structs),
            Type::Struct(name) => structs.align(name),
        }
    }

    /// The type that results from the usual arithmetic conversions between
    /// two arithmetic operands (C11 §6.3.1.8, restricted to MinC's types).
    pub fn usual_arithmetic(lhs: &Type, rhs: &Type) -> Type {
        if matches!(lhs, Type::Double) || matches!(rhs, Type::Double) {
            Type::Double
        } else if matches!(lhs, Type::Long) || matches!(rhs, Type::Long) {
            Type::Long
        } else if matches!(lhs, Type::UInt) || matches!(rhs, Type::UInt) {
            Type::UInt
        } else {
            Type::Int
        }
    }

    /// Integer promotion: `char` promotes to `int`; other types unchanged.
    pub fn promote(&self) -> Type {
        match self {
            Type::Char => Type::Int,
            other => other.clone(),
        }
    }

    /// Bit width for integer types.
    pub fn bits(&self) -> Option<u32> {
        match self {
            Type::Char => Some(8),
            Type::Int | Type::UInt => Some(32),
            Type::Long => Some(64),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Char => write!(f, "char"),
            Type::Int => write!(f, "int"),
            Type::UInt => write!(f, "unsigned"),
            Type::Long => write!(f, "long"),
            Type::Double => write!(f, "double"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Array(t, n) => write!(f, "{t}[{n}]"),
            Type::Struct(name) => write!(f, "struct {name}"),
        }
    }
}

/// Resolves struct sizes/alignments; implemented by the semantic analyzer
/// (packed sizes) and by compiler layout engines (padded, impl-defined).
pub trait StructSizer {
    /// Sum of packed field sizes.
    fn packed_size(&self, name: &str) -> u64;
    /// Maximum field alignment.
    fn align(&self, name: &str) -> u64;
}

/// A [`StructSizer`] for programs without structs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoStructs;

impl StructSizer for NoStructs {
    fn packed_size(&self, name: &str) -> u64 {
        panic!("unknown struct `{name}`")
    }
    fn align(&self, name: &str) -> u64 {
        panic!("unknown struct `{name}`")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_alignment() {
        let s = NoStructs;
        assert_eq!(Type::Char.size_packed(&s), 1);
        assert_eq!(Type::Int.size_packed(&s), 4);
        assert_eq!(Type::Long.size_packed(&s), 8);
        assert_eq!(Type::Int.ptr_to().size_packed(&s), 8);
        assert_eq!(Type::Array(Box::new(Type::Int), 10).size_packed(&s), 40);
        assert_eq!(Type::Array(Box::new(Type::Char), 3).align(&s), 1);
    }

    #[test]
    fn usual_arithmetic_conversions() {
        use Type::*;
        assert_eq!(Type::usual_arithmetic(&Int, &Double), Double);
        assert_eq!(Type::usual_arithmetic(&Int, &Long), Long);
        assert_eq!(Type::usual_arithmetic(&Int, &UInt), UInt);
        assert_eq!(Type::usual_arithmetic(&Char, &Char), Int);
    }

    #[test]
    fn decay_converts_arrays() {
        let arr = Type::Array(Box::new(Type::Char), 16);
        assert_eq!(arr.decay(), Type::Char.ptr_to());
        assert_eq!(Type::Int.decay(), Type::Int);
    }

    #[test]
    fn signedness_classification() {
        assert!(Type::Int.is_signed_integer());
        assert!(Type::Char.is_signed_integer());
        assert!(!Type::UInt.is_signed_integer());
        assert!(Type::UInt.is_integer());
        assert!(!Type::Double.is_integer());
        assert!(Type::Double.is_arithmetic());
    }

    #[test]
    fn display_round_trips_common_types() {
        assert_eq!(Type::Int.ptr_to().to_string(), "int*");
        assert_eq!(Type::Struct("pkt".into()).to_string(), "struct pkt");
    }
}
