//! Frontend robustness: arbitrary inputs must produce errors, never
//! panics, and diagnostics must carry usable positions.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..Default::default() })]

    /// The lexer+parser never panic on arbitrary byte soup.
    #[test]
    fn parser_never_panics_on_garbage(input in "\\PC{0,200}") {
        let _ = minc::parse(&input);
    }

    /// Valid-token streams that do not form programs error gracefully too.
    #[test]
    fn parser_never_panics_on_token_soup(tokens in proptest::collection::vec(
        prop_oneof![
            Just("int"), Just("char"), Just("if"), Just("while"), Just("return"),
            Just("("), Just(")"), Just("{"), Just("}"), Just(";"), Just("+"),
            Just("*"), Just("x"), Just("42"), Just("\"s\""), Just("->"), Just("[3]"),
            Just("struct"), Just("sizeof"), Just("__LINE__"),
        ], 0..64)) {
        let src = tokens.join(" ");
        let _ = minc::parse(&src);
        let _ = minc::check(&src);
    }
}

#[test]
fn diagnostics_point_at_the_right_line() {
    let src = "int main() {\n    int x = 1;\n    return zz;\n}";
    let err = minc::check(src).unwrap_err();
    assert_eq!(err.first().span.line, 3, "{err}");
}

#[test]
fn deeply_nested_expressions_do_not_overflow() {
    // 300 levels of parentheses exercise parser recursion.
    let mut expr = String::from("1");
    for _ in 0..300 {
        expr = format!("({expr})");
    }
    let src = format!("int main() {{ return {expr}; }}");
    assert!(minc::check(&src).is_ok());
}

#[test]
fn long_programs_parse_quickly() {
    let mut src = String::new();
    for i in 0..500 {
        src.push_str(&format!("int g{i} = {i};\n"));
    }
    src.push_str("int main() { return g499; }");
    let checked = minc::check(&src).unwrap();
    assert_eq!(checked.program.globals.len(), 500);
}

#[test]
fn error_messages_are_lowercase_and_specific() {
    for (src, needle) in [
        ("int main() { return 1 +; }", "expected expression"),
        ("int main() { int int; }", "expected identifier"),
        ("int main(void) { return sizeof(void); }", "sizeof(void)"),
        ("struct s { int x; };\nint main() { struct s v; return v + 1; }", "cannot add"),
    ] {
        let err = minc::check(src).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains(needle), "{src}: {msg}");
    }
}
