//! Frontend robustness: arbitrary inputs must produce errors, never
//! panics, and diagnostics must carry usable positions.
//!
//! Random inputs come from a small inline SplitMix64 generator so the
//! crate tests offline with no external dependencies.

/// SplitMix64 (public domain algorithm) — enough randomness for fuzzing
/// the frontend deterministically.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

/// The lexer+parser never panic on arbitrary byte soup.
#[test]
fn parser_never_panics_on_garbage() {
    let mut rng = Rng(0x6a5b);
    for _case in 0..512 {
        let len = rng.below(200);
        let input: String = (0..len)
            .map(|_| {
                // Mostly printable ASCII with occasional arbitrary unicode.
                if rng.below(10) == 0 {
                    char::from_u32(rng.below(0x1_0000) as u32).unwrap_or('?')
                } else {
                    (0x20 + rng.below(0x5f)) as u8 as char
                }
            })
            .collect();
        let _ = minc::parse(&input);
    }
}

/// Valid-token streams that do not form programs error gracefully too.
#[test]
fn parser_never_panics_on_token_soup() {
    const TOKENS: [&str; 20] = [
        "int", "char", "if", "while", "return", "(", ")", "{", "}", ";", "+", "*", "x", "42",
        "\"s\"", "->", "[3]", "struct", "sizeof", "__LINE__",
    ];
    let mut rng = Rng(0x70c3);
    for _case in 0..512 {
        let n = rng.below(64);
        let src: Vec<&str> = (0..n).map(|_| TOKENS[rng.below(TOKENS.len())]).collect();
        let src = src.join(" ");
        let _ = minc::parse(&src);
        let _ = minc::check(&src);
    }
}

#[test]
fn diagnostics_point_at_the_right_line() {
    let src = "int main() {\n    int x = 1;\n    return zz;\n}";
    let err = minc::check(src).unwrap_err();
    assert_eq!(err.first().span.line, 3, "{err}");
}

#[test]
fn deeply_nested_expressions_do_not_overflow() {
    // 300 levels of parentheses exercise parser recursion.
    let mut expr = String::from("1");
    for _ in 0..300 {
        expr = format!("({expr})");
    }
    let src = format!("int main() {{ return {expr}; }}");
    assert!(minc::check(&src).is_ok());
}

#[test]
fn long_programs_parse_quickly() {
    let mut src = String::new();
    for i in 0..500 {
        src.push_str(&format!("int g{i} = {i};\n"));
    }
    src.push_str("int main() { return g499; }");
    let checked = minc::check(&src).unwrap();
    assert_eq!(checked.program.globals.len(), 500);
}

#[test]
fn error_messages_are_lowercase_and_specific() {
    for (src, needle) in [
        ("int main() { return 1 +; }", "expected expression"),
        ("int main() { int int; }", "expected identifier"),
        ("int main(void) { return sizeof(void); }", "sizeof(void)"),
        (
            "struct s { int x; };\nint main() { struct s v; return v + 1; }",
            "cannot add",
        ),
    ] {
        let err = minc::check(src).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains(needle), "{src}: {msg}");
    }
}
