//! The evolutionary loop: a seeded population of generated programs,
//! selected on divergence-driven fitness, with byte-deterministic runs
//! and checkpointable state.
//!
//! Determinism contract: generation `g` of a run with seed `s` draws all
//! randomness from `Rng::new(mix(s, g))` — the PRNG is re-seeded per
//! generation from the seed and generation number alone, so resuming from
//! a checkpoint continues *exactly* the run that would have happened
//! without the interruption, and two same-seed runs emit byte-identical
//! generation logs, divergent programs, and witnesses.

use crate::fitness::{evaluate, Evaluation};
use crate::gen::{generate, Genome};
use crate::mutate::{crossover, mutate};
use compdiff::{hash64, Json};
use fuzzing::Rng;
use std::collections::BTreeSet;

/// SplitMix64-style mixer for deriving per-generation PRNG seeds.
pub fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Evolution parameters.
#[derive(Debug, Clone)]
pub struct EvolveConfig {
    /// Master seed; the whole run is a pure function of it.
    pub seed: u64,
    /// Population size (default 8).
    pub population: usize,
}

impl Default for EvolveConfig {
    fn default() -> Self {
        EvolveConfig {
            seed: 1,
            population: 8,
        }
    }
}

/// One diverging program discovered by the loop.
#[derive(Debug, Clone)]
pub struct DivergentFind {
    /// The program source.
    pub source: String,
    /// The probe input it diverged on.
    pub probe: Vec<u8>,
    /// Hash-keyed divergence signature (dedup key).
    pub signature: String,
    /// Generation it was first seen in.
    pub generation: u32,
    /// Its fitness at discovery.
    pub fitness: i64,
}

/// One line of the generation log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerationRecord {
    /// Generation number (0-based).
    pub generation: u32,
    /// Individuals evaluated this generation.
    pub evaluated: usize,
    /// Best fitness in the generation.
    pub best_fitness: i64,
    /// Mean fitness (integer floor).
    pub mean_fitness: i64,
    /// Cumulative distinct diverging programs found so far.
    pub divergent_total: usize,
    /// Size of the lint-novelty archive after this generation.
    pub archive_size: usize,
    /// Content hash of the best individual's source.
    pub best_hash: u64,
}

impl GenerationRecord {
    /// JSONL rendering (one object per line).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("generation", Json::Int(i64::from(self.generation))),
            ("evaluated", Json::Int(self.evaluated as i64)),
            ("best_fitness", Json::Int(self.best_fitness)),
            ("mean_fitness", Json::Int(self.mean_fitness)),
            ("divergent_total", Json::Int(self.divergent_total as i64)),
            ("archive_size", Json::Int(self.archive_size as i64)),
            ("best_hash", Json::Str(format!("{:016x}", self.best_hash))),
        ])
    }
}

/// The checkpointable state of a run: everything needed to continue it.
#[derive(Debug, Clone)]
pub struct EvolveState {
    /// Master seed.
    pub seed: u64,
    /// Population size.
    pub population_size: usize,
    /// Next generation to run (0 for a fresh state).
    pub next_generation: u32,
    /// Current population as `(source, probes)` pairs — sources rather
    /// than ASTs so the state serializes, relying on the pretty
    /// round-trip guarantee.
    pub population: Vec<(String, Vec<Vec<u8>>)>,
    /// Lint keys already credited for novelty.
    pub archive: BTreeSet<String>,
    /// Divergence signatures already recorded.
    pub seen_signatures: BTreeSet<String>,
    /// Distinct diverging programs found so far.
    pub divergents: Vec<DivergentFind>,
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err(format!("odd hex length in `{s}`"));
    }
    (0..s.len() / 2)
        .map(|i| {
            u8::from_str_radix(&s[2 * i..2 * i + 2], 16).map_err(|_| format!("bad hex in `{s}`"))
        })
        .collect()
}

impl EvolveState {
    /// A fresh state: generation 0's population straight from the
    /// generator.
    pub fn new(cfg: &EvolveConfig) -> Self {
        let mut rng = Rng::new(mix(cfg.seed, 0x5eed));
        let population = (0..cfg.population.max(2))
            .map(|_| {
                let g = generate(&mut rng);
                (g.source(), g.probes)
            })
            .collect();
        EvolveState {
            seed: cfg.seed,
            population_size: cfg.population.max(2),
            next_generation: 0,
            population,
            archive: BTreeSet::new(),
            seen_signatures: BTreeSet::new(),
            divergents: Vec::new(),
        }
    }

    /// Serializes the full state (checkpoint file format).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seed", Json::Str(format!("{}", self.seed))),
            ("population_size", Json::Int(self.population_size as i64)),
            (
                "next_generation",
                Json::Int(i64::from(self.next_generation)),
            ),
            (
                "population",
                Json::Array(
                    self.population
                        .iter()
                        .map(|(src, probes)| {
                            Json::obj(vec![
                                ("source", Json::Str(src.clone())),
                                (
                                    "probes",
                                    Json::Array(probes.iter().map(|p| Json::Str(hex(p))).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("archive", Json::strings(self.archive.iter())),
            (
                "seen_signatures",
                Json::strings(self.seen_signatures.iter()),
            ),
            (
                "divergents",
                Json::Array(
                    self.divergents
                        .iter()
                        .map(|d| {
                            Json::obj(vec![
                                ("source", Json::Str(d.source.clone())),
                                ("probe", Json::Str(hex(&d.probe))),
                                ("signature", Json::Str(d.signature.clone())),
                                ("generation", Json::Int(i64::from(d.generation))),
                                ("fitness", Json::Int(d.fitness)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Restores a state serialized by [`to_json`](EvolveState::to_json).
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let field = |k: &str| j.get(k).ok_or_else(|| format!("missing `{k}`"));
        let seed: u64 = field("seed")?
            .as_str()
            .ok_or("`seed` not a string")?
            .parse()
            .map_err(|_| "bad `seed`".to_string())?;
        let population_size = field("population_size")?
            .as_u64()
            .ok_or("`population_size` not a number")? as usize;
        let next_generation = field("next_generation")?
            .as_u64()
            .ok_or("`next_generation` not a number")? as u32;
        let mut population = Vec::new();
        for p in field("population")?
            .as_array()
            .ok_or("`population` not an array")?
        {
            let src = p
                .get("source")
                .and_then(Json::as_str)
                .ok_or("population entry missing `source`")?
                .to_string();
            let mut probes = Vec::new();
            for pr in p
                .get("probes")
                .and_then(Json::as_array)
                .ok_or("population entry missing `probes`")?
            {
                probes.push(unhex(pr.as_str().ok_or("probe not a string")?)?);
            }
            population.push((src, probes));
        }
        let strings = |k: &str| -> Result<BTreeSet<String>, String> {
            Ok(field(k)?
                .as_array()
                .ok_or_else(|| format!("`{k}` not an array"))?
                .iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect())
        };
        let mut divergents = Vec::new();
        for d in field("divergents")?
            .as_array()
            .ok_or("`divergents` not an array")?
        {
            divergents.push(DivergentFind {
                source: d
                    .get("source")
                    .and_then(Json::as_str)
                    .ok_or("divergent missing `source`")?
                    .to_string(),
                probe: unhex(
                    d.get("probe")
                        .and_then(Json::as_str)
                        .ok_or("divergent missing `probe`")?,
                )?,
                signature: d
                    .get("signature")
                    .and_then(Json::as_str)
                    .ok_or("divergent missing `signature`")?
                    .to_string(),
                generation: d
                    .get("generation")
                    .and_then(Json::as_u64)
                    .ok_or("divergent missing `generation`")? as u32,
                fitness: d
                    .get("fitness")
                    .and_then(Json::as_i64)
                    .ok_or("divergent missing `fitness`")?,
            });
        }
        Ok(EvolveState {
            seed,
            population_size,
            next_generation,
            population,
            archive: strings("archive")?,
            seen_signatures: strings("seen_signatures")?,
            divergents,
        })
    }
}

fn parse_genome(src: &str, probes: &[Vec<u8>]) -> Option<Genome> {
    Some(Genome {
        program: minc::parse(src).ok()?,
        probes: probes.to_vec(),
    })
}

/// Tournament-of-3 selection over `(index, fitness)` pairs; ties break
/// toward the lower index (which, post-sort, is the fitter individual).
fn tournament(ranked: &[(usize, i64)], rng: &mut Rng) -> usize {
    let mut best = rng.below(ranked.len());
    for _ in 0..2 {
        let c = rng.below(ranked.len());
        if ranked[c].1 > ranked[best].1 || (ranked[c].1 == ranked[best].1 && c < best) {
            best = c;
        }
    }
    ranked[best].0
}

/// Runs `generations` more generations on `state`, invoking
/// `on_generation` with each generation's log record.
///
/// Returns the records for the generations run.
pub fn run_generations(
    state: &mut EvolveState,
    generations: u32,
    mut on_generation: impl FnMut(&GenerationRecord),
) -> Vec<GenerationRecord> {
    let mut records = Vec::new();
    for _ in 0..generations {
        let g = state.next_generation;
        let mut rng = Rng::new(mix(state.seed, u64::from(g)));

        // Evaluate sequentially in population order (archive grows as we
        // go — deterministic because the order is).
        let mut evals: Vec<(usize, Evaluation)> = Vec::new();
        for (i, (src, probes)) in state.population.iter().enumerate() {
            let Ok(eval) = evaluate(src, probes, &state.archive) else {
                continue;
            };
            for key in &eval.novel_keys {
                state.archive.insert(key.clone());
            }
            if eval.divergent {
                let sig = eval.signature.clone().unwrap_or_default();
                if state.seen_signatures.insert(sig.clone()) {
                    state.divergents.push(DivergentFind {
                        source: src.clone(),
                        probe: probes[eval.divergent_probe.unwrap_or(0)].clone(),
                        signature: sig,
                        generation: g,
                        fitness: eval.fitness,
                    });
                }
            }
            evals.push((i, eval));
        }

        // Rank: fitness descending, source ascending as the tiebreak.
        let mut ranked: Vec<(usize, i64)> = evals.iter().map(|(i, e)| (*i, e.fitness)).collect();
        ranked.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| state.population[a.0].0.cmp(&state.population[b.0].0))
        });

        let best_fitness = ranked.first().map(|r| r.1).unwrap_or(0);
        let mean_fitness = if ranked.is_empty() {
            0
        } else {
            ranked.iter().map(|r| r.1).sum::<i64>() / ranked.len() as i64
        };
        let best_hash = ranked
            .first()
            .map(|r| hash64(state.population[r.0].0.as_bytes()))
            .unwrap_or(0);
        let record = GenerationRecord {
            generation: g,
            evaluated: evals.len(),
            best_fitness,
            mean_fitness,
            divergent_total: state.divergents.len(),
            archive_size: state.archive.len(),
            best_hash,
        };
        on_generation(&record);
        records.push(record);

        // Next population: elitism (top 2), then tournament offspring.
        let mut next: Vec<(String, Vec<Vec<u8>>)> = Vec::with_capacity(state.population_size);
        for r in ranked.iter().take(2) {
            next.push(state.population[r.0].clone());
        }
        while next.len() < state.population_size {
            let child = if ranked.is_empty() {
                generate(&mut rng)
            } else {
                let pi = tournament(&ranked, &mut rng);
                let (src, probes) = &state.population[pi];
                match parse_genome(src, probes) {
                    None => generate(&mut rng),
                    Some(parent) => {
                        if rng.one_in(4) && ranked.len() > 1 {
                            let qi = tournament(&ranked, &mut rng);
                            let (qsrc, qprobes) = &state.population[qi];
                            match parse_genome(qsrc, qprobes) {
                                Some(other) => crossover(&parent, &other, &mut rng),
                                None => mutate(&parent, &mut rng),
                            }
                        } else {
                            mutate(&parent, &mut rng)
                        }
                    }
                }
            };
            next.push((child.source(), child.probes));
        }
        state.population = next;
        state.next_generation = g + 1;
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(seed: u64) -> EvolveConfig {
        EvolveConfig {
            seed,
            population: 4,
        }
    }

    #[test]
    fn same_seed_runs_are_identical() {
        let mut a = EvolveState::new(&small_cfg(9));
        let mut b = EvolveState::new(&small_cfg(9));
        let ra = run_generations(&mut a, 2, |_| {});
        let rb = run_generations(&mut b, 2, |_| {});
        assert_eq!(ra, rb);
        assert_eq!(a.population, b.population);
        assert_eq!(
            a.divergents.len(),
            b.divergents.len(),
            "same finds both runs"
        );
        for (da, db) in a.divergents.iter().zip(&b.divergents) {
            assert_eq!(da.source, db.source);
            assert_eq!(da.signature, db.signature);
        }
    }

    #[test]
    fn resume_from_checkpoint_matches_straight_run() {
        let mut straight = EvolveState::new(&small_cfg(13));
        run_generations(&mut straight, 2, |_| {});

        let mut first = EvolveState::new(&small_cfg(13));
        run_generations(&mut first, 1, |_| {});
        let json = first.to_json().render();
        let mut resumed = EvolveState::from_json(&Json::parse(&json).unwrap()).unwrap();
        run_generations(&mut resumed, 1, |_| {});

        assert_eq!(straight.population, resumed.population);
        assert_eq!(straight.next_generation, resumed.next_generation);
        assert_eq!(straight.archive, resumed.archive);
        assert_eq!(straight.seen_signatures, resumed.seen_signatures);
    }

    #[test]
    fn evolution_finds_divergence_quickly() {
        let mut state = EvolveState::new(&EvolveConfig {
            seed: 1,
            population: 6,
        });
        run_generations(&mut state, 2, |_| {});
        assert!(
            !state.divergents.is_empty(),
            "idiom-biased generation should diverge within 2 generations"
        );
    }

    #[test]
    fn state_round_trips_through_json() {
        let mut state = EvolveState::new(&small_cfg(3));
        run_generations(&mut state, 1, |_| {});
        let j = state.to_json().render();
        let back = EvolveState::from_json(&Json::parse(&j).unwrap()).unwrap();
        assert_eq!(back.seed, state.seed);
        assert_eq!(back.population, state.population);
        assert_eq!(back.archive, state.archive);
        assert_eq!(back.divergents.len(), state.divergents.len());
    }
}
