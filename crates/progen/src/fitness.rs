//! Divergence-driven fitness: how interesting is a generated program?
//!
//! Fitness is a deterministic integer combining three evidence channels:
//!
//! 1. **Divergence axes** — run the program's probes through the full
//!    10-implementation differential oracle; reward actual divergence,
//!    the number of distinct output classes, and the variety of exit
//!    statuses observed.
//! 2. **Rewrite-log richness** — run every implementation's optimization
//!    pipeline with provenance logging and reward distinct UB
//!    justifications (and, weakly, entry volume).
//! 3. **Lint-finding novelty** — findings of the `staticheck-ir` unstable
//!    lint that the evolution archive has not seen before.
//!
//! A small length penalty keeps programs from bloating. Everything is
//! integer arithmetic over deterministic inputs, so two same-seed runs
//! score identically byte for byte.

use compdiff::{signature_with_hash, CompDiff, DiffConfig};
use minc::FrontendError;
use minc_compile::CompilerImpl;
use minc_vm::ExitStatus;
use staticheck_ir::UnstableLint;
use std::collections::BTreeSet;

/// The outcome of evaluating one program against the oracle.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The combined fitness score (higher is more interesting).
    pub fitness: i64,
    /// True when at least one probe diverged.
    pub divergent: bool,
    /// Index of the first diverging probe, if any.
    pub divergent_probe: Option<usize>,
    /// Hash-keyed signature of the first divergence (stable dedup key).
    pub signature: Option<String>,
    /// Largest number of output equivalence classes over all probes.
    pub classes_max: usize,
    /// Number of distinct exit-status kinds observed across probes/impls.
    pub status_kinds: usize,
    /// Distinct UB justifications logged by the optimizer pipelines.
    pub reasons: Vec<String>,
    /// Total rewrite-provenance entries over the ten pipelines.
    pub rewrite_entries: usize,
    /// Unstable-lint finding count.
    pub lint_findings: usize,
    /// Lint keys (`defect@line`) not already in the archive.
    pub novel_keys: Vec<String>,
}

fn status_kind(s: &ExitStatus) -> &'static str {
    match s {
        ExitStatus::Code(_) => "code",
        ExitStatus::Trapped(_) => "trap",
        ExitStatus::Sanitizer(_) => "san",
        ExitStatus::TimedOut => "timeout",
    }
}

/// Evaluates `src` on `probes` against the archive of already-seen lint
/// keys.
///
/// # Errors
///
/// Returns the frontend error when `src` does not parse or check — the
/// evolution loop treats that as a rejected candidate (generated and
/// mutated genomes are valid by construction, so this only guards
/// hand-fed input).
pub fn evaluate(
    src: &str,
    probes: &[Vec<u8>],
    archive: &BTreeSet<String>,
) -> Result<Evaluation, FrontendError> {
    let diff = CompDiff::from_source_default(src, DiffConfig::default())?;
    let impls = diff.impls();
    let mut sessions = diff.make_sessions();

    let mut divergent = false;
    let mut divergent_probe = None;
    let mut signature = None;
    let mut classes_max = 1usize;
    let mut kinds: BTreeSet<&'static str> = BTreeSet::new();
    // One batched sweep over the whole probe set: each implementation
    // runs every probe before the next implementation starts, and only
    // probes with disagreeing digests pay the per-input bisection.
    let outcomes = diff.run_batch_sessions(&mut sessions, probes);
    for (i, outcome) in outcomes.iter().enumerate() {
        classes_max = classes_max.max(outcome.classes.len());
        for r in &outcome.results {
            kinds.insert(status_kind(&r.status));
        }
        if outcome.divergent && !divergent {
            divergent = true;
            divergent_probe = Some(i);
            signature = Some(signature_with_hash(diff.src_hash(), &impls, outcome));
        }
    }

    let checked = minc::check(src)?;
    let mut reasons: BTreeSet<String> = BTreeSet::new();
    let mut rewrite_entries = 0usize;
    for ci in CompilerImpl::default_set() {
        let (_ir, log) = minc_compile::optimize_logged(&checked, ci);
        rewrite_entries += log.entries.len();
        for entry in &log.entries {
            reasons.insert(entry.reason.to_string());
        }
    }

    let findings = UnstableLint::new().run(&checked);
    let mut novel: BTreeSet<String> = BTreeSet::new();
    for f in &findings {
        let key = format!("{}@{}", f.finding.defect, f.finding.span.line);
        if !archive.contains(&key) {
            novel.insert(key);
        }
    }

    let loc = src.lines().count() as i64;
    let fitness = i64::from(divergent) * 1000
        + (classes_max as i64 - 1) * 120
        + kinds.len() as i64 * 60
        + reasons.len() as i64 * 80
        + (rewrite_entries.min(16) as i64) * 6
        + (findings.len().min(8) as i64) * 15
        + novel.len() as i64 * 40
        - loc / 4;

    Ok(Evaluation {
        fitness,
        divergent,
        divergent_probe,
        signature,
        classes_max,
        status_kinds: kinds.len(),
        reasons: reasons.into_iter().collect(),
        rewrite_entries,
        lint_findings: findings.len(),
        novel_keys: novel.into_iter().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNINIT: &str = "int main() { int u; printf(\"u %d\\n\", u & 255); return 0; }";
    const STABLE: &str = "int main() { printf(\"ok\\n\"); return 0; }";

    #[test]
    fn uninit_read_outranks_stable_program() {
        let archive = BTreeSet::new();
        let hot = evaluate(UNINIT, &[Vec::new()], &archive).unwrap();
        let cold = evaluate(STABLE, &[Vec::new()], &archive).unwrap();
        assert!(hot.divergent, "uninit print diverges across personalities");
        assert!(hot.fitness > cold.fitness);
        assert!(hot.signature.as_deref().unwrap().starts_with('p'));
    }

    #[test]
    fn novelty_decays_once_archived() {
        let empty = BTreeSet::new();
        let first = evaluate(UNINIT, &[Vec::new()], &empty).unwrap();
        assert!(!first.novel_keys.is_empty(), "lint sees the uninit read");
        let archive: BTreeSet<String> = first.novel_keys.iter().cloned().collect();
        let second = evaluate(UNINIT, &[Vec::new()], &archive).unwrap();
        assert!(second.novel_keys.is_empty());
        assert!(second.fitness < first.fitness);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let archive = BTreeSet::new();
        let a = evaluate(UNINIT, &[Vec::new(), vec![1, 2]], &archive).unwrap();
        let b = evaluate(UNINIT, &[Vec::new(), vec![1, 2]], &archive).unwrap();
        assert_eq!(a.fitness, b.fitness);
        assert_eq!(a.signature, b.signature);
        assert_eq!(a.reasons, b.reasons);
    }
}
