//! Seeded, deterministic generator of well-formed MinC programs biased
//! toward unstable-code idioms.
//!
//! Every program the generator emits is valid under [`minc::check`] by
//! construction: a fixed prologue reads up to eight input bytes, a body of
//! 2–4 *idiom* fragments exercises the UB patterns the optimizer pipeline
//! rewrites (uninitialized reads, `a + b < a` overflow checks, oversized
//! shifts, cross-object pointer compares, null checks after a deref), and
//! a fixed epilogue prints the accumulated sink so every fragment stays
//! observable. Construction happens directly on the [`minc::ast`] with
//! dummy ids/spans; [`minc::pretty`] turns a genome back into source, and
//! the pretty round-trip guarantee keeps that rendering byte-stable.

use fuzzing::Rng;
use minc::ast::{
    BinOp, Expr, ExprKind, Function, Global, Param, Program, Stmt, StmtKind, Storage, UnOp,
};
use minc::{NodeId, Span, Type};

/// One candidate individual: a program AST plus the probe inputs it is
/// evaluated on. Probes travel with the program because gated idioms are
/// generated *together with* a probe byte that opens the gate.
#[derive(Debug, Clone, PartialEq)]
pub struct Genome {
    /// The program, always valid under [`minc::check`].
    pub program: Program,
    /// Inputs fed to every implementation during fitness evaluation.
    pub probes: Vec<Vec<u8>>,
}

impl Genome {
    /// The genome rendered as MinC source (stable across round-trips).
    pub fn source(&self) -> String {
        minc::pretty::program(&self.program)
    }
}

// ---- AST construction helpers (dummy ids/spans throughout) ----

fn e(kind: ExprKind) -> Expr {
    Expr {
        id: NodeId(0),
        span: Span::dummy(),
        kind,
    }
}

fn s(kind: StmtKind) -> Stmt {
    Stmt {
        id: NodeId(0),
        span: Span::dummy(),
        kind,
    }
}

/// `int` literal.
pub(crate) fn int(value: i64) -> Expr {
    e(ExprKind::IntLit { value, long: false })
}

/// `long` literal (`L` suffix).
pub(crate) fn long(value: i64) -> Expr {
    e(ExprKind::IntLit { value, long: true })
}

pub(crate) fn var(name: &str) -> Expr {
    e(ExprKind::Var(name.to_string()))
}

pub(crate) fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    e(ExprKind::Binary {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    })
}

pub(crate) fn un(op: UnOp, operand: Expr) -> Expr {
    e(ExprKind::Unary {
        op,
        operand: Box::new(operand),
    })
}

pub(crate) fn cast(to: Type, value: Expr) -> Expr {
    e(ExprKind::Cast {
        to,
        value: Box::new(value),
    })
}

pub(crate) fn call(callee: &str, args: Vec<Expr>) -> Expr {
    e(ExprKind::Call {
        callee: callee.to_string(),
        args,
    })
}

pub(crate) fn str_lit(text: &str) -> Expr {
    e(ExprKind::StrLit(text.as_bytes().to_vec()))
}

pub(crate) fn index(base: Expr, idx: Expr) -> Expr {
    e(ExprKind::Index {
        base: Box::new(base),
        index: Box::new(idx),
    })
}

pub(crate) fn assign(target: Expr, value: Expr) -> Stmt {
    s(StmtKind::Expr(e(ExprKind::Assign {
        op: None,
        target: Box::new(target),
        value: Box::new(value),
    })))
}

pub(crate) fn decl(name: &str, ty: Type, init: Option<Expr>) -> Stmt {
    s(StmtKind::Decl {
        name: name.to_string(),
        ty,
        storage: Storage::Auto,
        init,
    })
}

pub(crate) fn expr_stmt(x: Expr) -> Stmt {
    s(StmtKind::Expr(x))
}

pub(crate) fn block(stmts: Vec<Stmt>) -> Stmt {
    s(StmtKind::Block(stmts))
}

pub(crate) fn sif(cond: Expr, then: Vec<Stmt>, els: Option<Vec<Stmt>>) -> Stmt {
    s(StmtKind::If {
        cond,
        then: Box::new(block(then)),
        els: els.map(|b| Box::new(block(b))),
    })
}

pub(crate) fn sfor(init: Stmt, cond: Expr, step: Expr, body: Vec<Stmt>) -> Stmt {
    s(StmtKind::For {
        init: Some(Box::new(init)),
        cond: Some(cond),
        step: Some(step),
        body: Box::new(block(body)),
    })
}

pub(crate) fn ret(x: Option<Expr>) -> Stmt {
    s(StmtKind::Return(x))
}

pub(crate) fn printf(fmt: &str, args: Vec<Expr>) -> Stmt {
    let mut all = vec![str_lit(fmt)];
    all.extend(args);
    expr_stmt(call("printf", all))
}

fn global(name: &str, ty: Type) -> Global {
    Global {
        id: NodeId(0),
        name: name.to_string(),
        ty,
        init: None,
        span: Span::dummy(),
    }
}

// ---- Idiom fragments ----

/// The unstable-code idioms the generator draws from. Each maps to a
/// pattern one of the UB-exploiting passes rewrites (and most of them to a
/// runtime divergence across implementation personalities).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Idiom {
    /// `int u; printf(..., u & 255)` — uninitialized read, junk differs
    /// per personality.
    UninitPrint,
    /// Uninitialized read steering a branch.
    UninitBranch,
    /// `if (off + len < off)` — the paper's Listing 1 overflow check,
    /// deleted at `-O2`+ under the signed-overflow assumption.
    OverflowCheck,
    /// Shift by a constant `>=` the type width; folded to 0 when the
    /// optimizer exploits the UB, personality junk otherwise.
    OversizedShift,
    /// Relational compare of pointers to distinct globals — layout is
    /// implementation-defined.
    PtrCmpGlobals,
    /// `*p` then `if (p == 0)` — the null check is provably dead to the
    /// optimizer; feeds the rewrite-provenance channel.
    NullCheckAfterDeref,
    /// 32-bit multiply overflow widened to `long` after the fact.
    IntWiden,
    /// A small counted accumulation loop — structural material for the
    /// unroll pass and for mutation.
    LoopAccum,
}

/// All idioms, in generation-weight order (earlier entries are favored).
pub const IDIOMS: [Idiom; 8] = [
    Idiom::UninitPrint,
    Idiom::OverflowCheck,
    Idiom::UninitBranch,
    Idiom::OversizedShift,
    Idiom::PtrCmpGlobals,
    Idiom::NullCheckAfterDeref,
    Idiom::IntWiden,
    Idiom::LoopAccum,
];

impl Idiom {
    /// Whether the idiom needs the `G_A`/`G_B` globals.
    fn needs_globals(&self) -> bool {
        matches!(self, Idiom::PtrCmpGlobals)
    }

    /// Statements for one instance of the idiom. `n` uniquifies local
    /// names so several instances coexist in one body.
    pub(crate) fn stmts(&self, n: u32, rng: &mut Rng) -> Vec<Stmt> {
        let v = |stem: &str| format!("{stem}{n}");
        match self {
            Idiom::UninitPrint => {
                let u = v("u");
                vec![
                    decl(&u, Type::Int, None),
                    printf("u %d\n", vec![bin(BinOp::BitAnd, var(&u), int(255))]),
                ]
            }
            Idiom::UninitBranch => {
                let u = v("ub");
                vec![
                    decl(&u, Type::Int, None),
                    sif(
                        bin(BinOp::Eq, bin(BinOp::BitAnd, var(&u), int(1)), int(1)),
                        vec![printf("odd\n", vec![])],
                        Some(vec![printf("even\n", vec![])]),
                    ),
                ]
            }
            Idiom::OverflowCheck => {
                let off = v("off");
                let len = v("len");
                // off has bit 30 set; len pushes the sum past INT_MAX, so
                // -O0 takes the guard while -O2 has deleted it.
                let extra = i64::from(rng.byte() & 7);
                vec![
                    decl(
                        &off,
                        Type::Int,
                        Some(bin(
                            BinOp::BitOr,
                            bin(BinOp::BitAnd, var("a"), int(268435455)),
                            int(1073741824),
                        )),
                    ),
                    decl(&len, Type::Int, Some(int(1073741824 + extra))),
                    sif(
                        bin(BinOp::Lt, bin(BinOp::Add, var(&off), var(&len)), var(&off)),
                        vec![
                            printf("guard\n", vec![]),
                            assign(var("SINK"), bin(BinOp::Add, var("SINK"), int(1))),
                        ],
                        None,
                    ),
                    printf("s %d\n", vec![bin(BinOp::Add, var(&off), var(&len))]),
                ]
            }
            Idiom::OversizedShift => {
                let sh = v("sh");
                let amount = 33 + i64::from(rng.byte() & 15);
                vec![
                    decl(&sh, Type::Int, Some(bin(BinOp::Add, var("a"), int(3)))),
                    printf("sh %d\n", vec![bin(BinOp::Shl, var(&sh), int(amount))]),
                ]
            }
            Idiom::PtrCmpGlobals => {
                let cp = Type::Ptr(Box::new(Type::Char));
                vec![
                    assign(var("G_A"), var("a")),
                    assign(var("G_B"), cast(Type::Long, var("b"))),
                    sif(
                        bin(
                            BinOp::Lt,
                            cast(cp.clone(), un(UnOp::Addr, var("G_A"))),
                            cast(cp, un(UnOp::Addr, var("G_B"))),
                        ),
                        vec![printf("a-first\n", vec![])],
                        Some(vec![printf("b-first\n", vec![])]),
                    ),
                ]
            }
            Idiom::NullCheckAfterDeref => {
                let val = v("nv");
                let p = v("np");
                vec![
                    decl(&val, Type::Int, Some(bin(BinOp::Add, var("a"), int(1)))),
                    decl(
                        &p,
                        Type::Ptr(Box::new(Type::Int)),
                        Some(un(UnOp::Addr, var(&val))),
                    ),
                    assign(
                        var("SINK"),
                        bin(BinOp::Add, var("SINK"), un(UnOp::Deref, var(&p))),
                    ),
                    sif(
                        bin(BinOp::Eq, var(&p), int(0)),
                        vec![printf("null\n", vec![]), ret(Some(int(1)))],
                        None,
                    ),
                ]
            }
            Idiom::IntWiden => {
                let w = v("w");
                let lw = v("lw");
                vec![
                    decl(
                        &w,
                        Type::Int,
                        Some(bin(
                            BinOp::Mul,
                            bin(BinOp::Add, var("a"), int(200)),
                            int(1000000),
                        )),
                    ),
                    decl(
                        &lw,
                        Type::Long,
                        Some(cast(Type::Long, bin(BinOp::Mul, var(&w), int(37)))),
                    ),
                    printf("w %ld\n", vec![var(&lw)]),
                ]
            }
            Idiom::LoopAccum => {
                let acc = v("acc");
                let k = v("k");
                let bound = 4 + i64::from(rng.byte() & 7);
                vec![
                    decl(&acc, Type::Int, Some(int(0))),
                    sfor(
                        decl(&k, Type::Int, Some(int(0))),
                        bin(BinOp::Lt, var(&k), int(bound)),
                        e(ExprKind::Assign {
                            op: Some(BinOp::Add),
                            target: Box::new(var(&k)),
                            value: Box::new(int(1)),
                        }),
                        vec![assign(
                            var(&acc),
                            bin(BinOp::Add, var(&acc), bin(BinOp::Mul, var(&k), var("a"))),
                        )],
                    ),
                    printf("acc %d\n", vec![var(&acc)]),
                ]
            }
        }
    }
}

/// Picks an idiom with weight biased toward the front of [`IDIOMS`].
fn pick_idiom(rng: &mut Rng) -> Idiom {
    // Two draws, keep the earlier-indexed one: a gentle bias toward the
    // idioms that most reliably produce divergence or rewrite provenance.
    let a = rng.below(IDIOMS.len());
    let b = rng.below(IDIOMS.len());
    IDIOMS[a.min(b)]
}

/// How many probe inputs each genome carries.
pub const PROBES_PER_GENOME: usize = 4;

/// Generates one genome from the given PRNG state.
///
/// The program shape is: globals (`int SINK;`, plus `int G_A; long G_B;`
/// when a pointer-compare idiom is present), then `main` with a fixed
/// input-reading prologue (`a`/`b` hold the first two input bytes), 2–4
/// idiom fragments — each possibly gated on an input byte whose opening
/// value is recorded in a probe — and a fixed observable epilogue.
pub fn generate(rng: &mut Rng) -> Genome {
    let count = 2 + rng.below(3); // 2..=4 idioms
    let mut idioms = Vec::with_capacity(count);
    for _ in 0..count {
        idioms.push(pick_idiom(rng));
    }

    let mut body: Vec<Stmt> = vec![
        decl("buf", Type::Array(Box::new(Type::Char), 8), None),
        decl(
            "n",
            Type::Long,
            Some(call("read_input", vec![var("buf"), long(8)])),
        ),
        decl("a", Type::Int, Some(int(0))),
        decl("b", Type::Int, Some(int(0))),
        sif(
            bin(BinOp::Gt, var("n"), long(0)),
            vec![assign(var("a"), index(var("buf"), int(0)))],
            None,
        ),
        sif(
            bin(BinOp::Gt, var("n"), long(1)),
            vec![assign(var("b"), index(var("buf"), int(1)))],
            None,
        ),
    ];

    // A probe that opens every gate, plus the baseline probes.
    let mut opener = vec![0u8; PROBES_PER_GENOME.max(2)];

    for (i, idiom) in idioms.iter().enumerate() {
        let stmts = idiom.stmts(i as u32, rng);
        if rng.one_in(3) {
            // Gate the fragment on an input byte and remember a byte value
            // that opens it (probe bytes stay in the positive `char`
            // range, so `a = buf[0]` sees them unchanged).
            let gate = i64::from(rng.byte() & 63);
            opener[0] = opener[0].max(gate as u8 + 1);
            body.push(sif(bin(BinOp::Gt, var("a"), int(gate)), stmts, None));
        } else {
            body.extend(stmts);
        }
    }

    body.push(printf(
        "end %d %d\n",
        vec![bin(BinOp::BitXor, var("a"), var("b")), var("SINK")],
    ));
    body.push(ret(Some(int(0))));

    let mut globals = vec![global("SINK", Type::Int)];
    if idioms.iter().any(Idiom::needs_globals) {
        globals.push(global("G_A", Type::Int));
        globals.push(global("G_B", Type::Long));
    }

    let program = Program {
        structs: Vec::new(),
        globals,
        functions: vec![Function {
            id: NodeId(0),
            name: "main".to_string(),
            ret: Type::Int,
            params: Vec::<Param>::new(),
            body: block(body),
            span: Span::dummy(),
        }],
    };

    let mut probes: Vec<Vec<u8>> = Vec::with_capacity(PROBES_PER_GENOME);
    probes.push(Vec::new());
    opener[1] = 0x41;
    probes.push(opener);
    for _ in 2..PROBES_PER_GENOME {
        let len = 2 + rng.below(5);
        probes.push((0..len).map(|_| rng.byte() & 0x7f).collect());
    }

    debug_assert!(
        minc::check(&minc::pretty::program(&program)).is_ok(),
        "generator must only emit well-formed programs"
    );
    Genome { program, probes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_genome() {
        let a = generate(&mut Rng::new(42));
        let b = generate(&mut Rng::new(42));
        assert_eq!(a.program, b.program);
        assert_eq!(a.probes, b.probes);
        assert_eq!(a.source(), b.source());
    }

    #[test]
    fn generated_programs_are_well_formed() {
        let mut rng = Rng::new(7);
        for _ in 0..40 {
            let g = generate(&mut rng);
            let src = g.source();
            minc::check(&src).unwrap_or_else(|e| panic!("invalid program:\n{src}\n{e}"));
        }
    }

    #[test]
    fn source_round_trips_through_parser() {
        let mut rng = Rng::new(3);
        for _ in 0..10 {
            let g = generate(&mut rng);
            let src = g.source();
            let reparsed = minc::parse(&src).expect("parses");
            assert_eq!(src, minc::pretty::program(&reparsed), "pretty is stable");
        }
    }

    #[test]
    fn every_idiom_is_reachable_and_valid() {
        // Exercise each idiom in isolation inside the standard frame.
        for (i, idiom) in IDIOMS.iter().enumerate() {
            let mut rng = Rng::new(100 + i as u64);
            let stmts = idiom.stmts(0, &mut rng);
            assert!(!stmts.is_empty());
        }
    }
}
