//! # progen — evolutionary MinC program generation
//!
//! Grows the differential-testing corpus beyond the static target
//! catalog: a seeded generator emits well-formed MinC programs biased
//! toward unstable-code idioms, typed AST mutators and crossover breed
//! them, and an evolutionary loop selects on **divergence-driven
//! fitness** — coverage of divergence axes under the 10-implementation
//! oracle, rewrite-provenance richness, and unstable-lint novelty. Any
//! diverging program can then be shrunk by the **witness reducer**
//! (delta-debugging over AST nodes) to a minimal program that still
//! diverges under the same implementation pair.
//!
//! Everything is deterministic: same seed, byte-identical runs. The
//! `compdiff progen` CLI drives generation/evolution/reduction, and the
//! `targets::TargetSource` seam feeds the results into campaigns.
//!
//! ```
//! use fuzzing::Rng;
//!
//! let genome = progen::generate(&mut Rng::new(1));
//! assert!(minc::check(&genome.source()).is_ok());
//! ```

#![warn(missing_docs)]
pub mod evolve;
pub mod fitness;
pub mod gen;
pub mod mutate;
pub mod reduce;

pub use evolve::{
    mix, run_generations, DivergentFind, EvolveConfig, EvolveState, GenerationRecord,
};
pub use fitness::{evaluate, Evaluation};
pub use gen::{generate, Genome, Idiom, PROBES_PER_GENOME};
pub use mutate::{crossover, mutate};
pub use reduce::{reduce, ReduceOutcome};
