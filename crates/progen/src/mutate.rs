//! Typed mutation and crossover operators over the MinC AST.
//!
//! Operators work on the genome's [`Program`] directly — statement splice,
//! expression perturbation, fresh-idiom injection, loop/branch
//! restructuring — and every mutant is validated through
//! [`minc::check`] before it is accepted. Invalid mutants (a deleted
//! declaration whose variable is still used, say) are rejected and the
//! operator retries under the same PRNG stream, so mutation is total and
//! deterministic: the same parent and seed always yield the same child.

use crate::gen::{self, Genome, IDIOMS};
use fuzzing::Rng;
use minc::ast::{BinOp, Expr, ExprKind, Program, Stmt, StmtKind};

/// How many candidate mutants to try before falling back to the parent.
const RETRY_BUDGET: usize = 8;

/// Interesting integer constants for literal perturbation.
const INTERESTING: [i64; 8] = [0, 1, -1, 127, 255, 33, 1073741824, 2147483647];

/// The statement index where idiom fragments start in a generated `main`
/// (after the fixed input-reading prologue).
const PROLOGUE_LEN: usize = 6;

fn main_body(p: &Program) -> Option<&Vec<Stmt>> {
    let f = p.functions.iter().find(|f| f.name == "main")?;
    match &f.body.kind {
        StmtKind::Block(stmts) => Some(stmts),
        _ => None,
    }
}

fn main_body_mut(p: &mut Program) -> Option<&mut Vec<Stmt>> {
    let f = p.functions.iter_mut().find(|f| f.name == "main")?;
    match &mut f.body.kind {
        StmtKind::Block(stmts) => Some(stmts),
        _ => None,
    }
}

/// True when the mutated program still checks.
fn valid(p: &Program) -> bool {
    minc::check(&minc::pretty::program(p)).is_ok()
}

// ---- Expression perturbation ----

fn walk_exprs(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match &e.kind {
        ExprKind::Unary { operand, .. } | ExprKind::SizeofExpr(operand) => walk_exprs(operand, f),
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Logical { lhs, rhs, .. } => {
            walk_exprs(lhs, f);
            walk_exprs(rhs, f);
        }
        ExprKind::Assign { target, value, .. } => {
            walk_exprs(target, f);
            walk_exprs(value, f);
        }
        ExprKind::IncDec { target, .. } => walk_exprs(target, f),
        ExprKind::Cond { cond, then, els } => {
            walk_exprs(cond, f);
            walk_exprs(then, f);
            walk_exprs(els, f);
        }
        ExprKind::Call { args, .. } => args.iter().for_each(|a| walk_exprs(a, f)),
        ExprKind::Index { base, index } => {
            walk_exprs(base, f);
            walk_exprs(index, f);
        }
        ExprKind::Member { base, .. } | ExprKind::Arrow { base, .. } => walk_exprs(base, f),
        ExprKind::Cast { value, .. } => walk_exprs(value, f),
        _ => {}
    }
}

fn walk_exprs_mut(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    f(e);
    match &mut e.kind {
        ExprKind::Unary { operand, .. } | ExprKind::SizeofExpr(operand) => {
            walk_exprs_mut(operand, f)
        }
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Logical { lhs, rhs, .. } => {
            walk_exprs_mut(lhs, f);
            walk_exprs_mut(rhs, f);
        }
        ExprKind::Assign { target, value, .. } => {
            walk_exprs_mut(target, f);
            walk_exprs_mut(value, f);
        }
        ExprKind::IncDec { target, .. } => walk_exprs_mut(target, f),
        ExprKind::Cond { cond, then, els } => {
            walk_exprs_mut(cond, f);
            walk_exprs_mut(then, f);
            walk_exprs_mut(els, f);
        }
        ExprKind::Call { args, .. } => args.iter_mut().for_each(|a| walk_exprs_mut(a, f)),
        ExprKind::Index { base, index } => {
            walk_exprs_mut(base, f);
            walk_exprs_mut(index, f);
        }
        ExprKind::Member { base, .. } | ExprKind::Arrow { base, .. } => walk_exprs_mut(base, f),
        ExprKind::Cast { value, .. } => walk_exprs_mut(value, f),
        _ => {}
    }
}

fn for_each_expr_in_stmt(st: &Stmt, f: &mut impl FnMut(&Expr)) {
    match &st.kind {
        StmtKind::Decl { init: Some(x), .. } => walk_exprs(x, f),
        StmtKind::Expr(x) => walk_exprs(x, f),
        StmtKind::If { cond, then, els } => {
            walk_exprs(cond, f);
            for_each_expr_in_stmt(then, f);
            if let Some(e) = els {
                for_each_expr_in_stmt(e, f);
            }
        }
        StmtKind::While { cond, body } => {
            walk_exprs(cond, f);
            for_each_expr_in_stmt(body, f);
        }
        StmtKind::DoWhile { body, cond } => {
            for_each_expr_in_stmt(body, f);
            walk_exprs(cond, f);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                for_each_expr_in_stmt(i, f);
            }
            if let Some(c) = cond {
                walk_exprs(c, f);
            }
            if let Some(s) = step {
                walk_exprs(s, f);
            }
            for_each_expr_in_stmt(body, f);
        }
        StmtKind::Return(Some(x)) => walk_exprs(x, f),
        StmtKind::Block(stmts) => stmts.iter().for_each(|s| for_each_expr_in_stmt(s, f)),
        _ => {}
    }
}

fn for_each_expr_in_stmt_mut(st: &mut Stmt, f: &mut impl FnMut(&mut Expr)) {
    match &mut st.kind {
        StmtKind::Decl { init: Some(x), .. } => walk_exprs_mut(x, f),
        StmtKind::Expr(x) => walk_exprs_mut(x, f),
        StmtKind::If { cond, then, els } => {
            walk_exprs_mut(cond, f);
            for_each_expr_in_stmt_mut(then, f);
            if let Some(e) = els {
                for_each_expr_in_stmt_mut(e, f);
            }
        }
        StmtKind::While { cond, body } => {
            walk_exprs_mut(cond, f);
            for_each_expr_in_stmt_mut(body, f);
        }
        StmtKind::DoWhile { body, cond } => {
            for_each_expr_in_stmt_mut(body, f);
            walk_exprs_mut(cond, f);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                for_each_expr_in_stmt_mut(i, f);
            }
            if let Some(c) = cond {
                walk_exprs_mut(c, f);
            }
            if let Some(s) = step {
                walk_exprs_mut(s, f);
            }
            for_each_expr_in_stmt_mut(body, f);
        }
        StmtKind::Return(Some(x)) => walk_exprs_mut(x, f),
        StmtKind::Block(stmts) => stmts
            .iter_mut()
            .for_each(|s| for_each_expr_in_stmt_mut(s, f)),
        _ => {}
    }
}

/// Nudges the `k`-th integer literal in the program.
fn perturb_int_lit(p: &mut Program, rng: &mut Rng) -> bool {
    let total: usize = main_body(p)
        .map(|b| {
            b.iter()
                .map(|s| {
                    let mut n = 0;
                    for_each_expr_in_stmt(s, &mut |x| n += count_int_lits_shallow(x));
                    n
                })
                .sum()
        })
        .unwrap_or(0);
    if total == 0 {
        return false;
    }
    let target = rng.below(total);
    let delta = *rng.choose(&INTERESTING);
    let add = rng.one_in(2);
    let mut seen = 0usize;
    if let Some(body) = main_body_mut(p) {
        for st in body.iter_mut() {
            for_each_expr_in_stmt_mut(st, &mut |x| {
                if let ExprKind::IntLit { value, .. } = &mut x.kind {
                    if seen == target {
                        *value = if add {
                            value.wrapping_add(delta)
                        } else {
                            delta
                        };
                    }
                    seen += 1;
                }
            });
        }
    }
    true
}

fn count_int_lits_shallow(e: &Expr) -> usize {
    usize::from(matches!(e.kind, ExprKind::IntLit { .. }))
}

/// Swaps one binary operator for a near neighbour (comparison family or
/// arithmetic family), preserving typability in almost all cases.
fn swap_binop(p: &mut Program, rng: &mut Rng) -> bool {
    let mut total = 0usize;
    if let Some(body) = main_body(p) {
        for st in body {
            for_each_expr_in_stmt(st, &mut |x| {
                if matches!(x.kind, ExprKind::Binary { .. }) {
                    total += 1;
                }
            });
        }
    }
    if total == 0 {
        return false;
    }
    let target = rng.below(total);
    let roll = rng.next_u64();
    let mut seen = 0usize;
    if let Some(body) = main_body_mut(p) {
        for st in body.iter_mut() {
            for_each_expr_in_stmt_mut(st, &mut |x| {
                if let ExprKind::Binary { op, .. } = &mut x.kind {
                    if seen == target {
                        *op = neighbour_op(*op, roll);
                    }
                    seen += 1;
                }
            });
        }
    }
    true
}

fn neighbour_op(op: BinOp, roll: u64) -> BinOp {
    use BinOp::*;
    let flip = roll & 1 == 0;
    match op {
        Add => Sub,
        Sub => Add,
        Mul => {
            if flip {
                Add
            } else {
                Sub
            }
        }
        Lt => {
            if flip {
                Le
            } else {
                Gt
            }
        }
        Le => Lt,
        Gt => {
            if flip {
                Ge
            } else {
                Lt
            }
        }
        Ge => Gt,
        Eq => Ne,
        Ne => Eq,
        Shl => Shr,
        Shr => Shl,
        BitAnd => {
            if flip {
                BitOr
            } else {
                BitXor
            }
        }
        BitOr => BitAnd,
        BitXor => BitOr,
        other => other,
    }
}

// ---- Statement-level operators ----

/// Duplicates a non-declaration statement elsewhere in the idiom region.
fn splice(p: &mut Program, rng: &mut Rng) -> bool {
    let Some(body) = main_body_mut(p) else {
        return false;
    };
    // Keep the trailing printf/return epilogue fixed.
    let hi = body.len().saturating_sub(2);
    if hi <= PROLOGUE_LEN {
        return false;
    }
    let from = PROLOGUE_LEN + rng.below(hi - PROLOGUE_LEN);
    if matches!(body[from].kind, StmtKind::Decl { .. } | StmtKind::Return(_)) {
        return false;
    }
    let to = PROLOGUE_LEN + rng.below(hi - PROLOGUE_LEN + 1);
    let cloned = body[from].clone();
    body.insert(to, cloned);
    true
}

/// Deletes one statement from the idiom region.
fn remove(p: &mut Program, rng: &mut Rng) -> bool {
    let Some(body) = main_body_mut(p) else {
        return false;
    };
    let hi = body.len().saturating_sub(2);
    if hi <= PROLOGUE_LEN {
        return false;
    }
    let at = PROLOGUE_LEN + rng.below(hi - PROLOGUE_LEN);
    body.remove(at);
    true
}

/// Inserts a fresh idiom instance at a random point in the idiom region.
/// The instance index is derived from the body length so names stay
/// unique without scanning.
fn inject(p: &mut Program, rng: &mut Rng) -> bool {
    let fresh = {
        let Some(body) = main_body(p) else {
            return false;
        };
        100 + body.len() as u32
    };
    let idiom = *rng.choose(&IDIOMS);
    if idiom == crate::gen::Idiom::PtrCmpGlobals && !p.globals.iter().any(|g| g.name == "G_A") {
        // Would reference missing globals; validation would reject it, so
        // don't waste the attempt.
        return false;
    }
    let stmts = idiom.stmts(fresh, rng);
    let Some(body) = main_body_mut(p) else {
        return false;
    };
    let hi = body.len().saturating_sub(2);
    if hi < PROLOGUE_LEN {
        return false;
    }
    let at = PROLOGUE_LEN + rng.below(hi - PROLOGUE_LEN + 1);
    for (i, s) in stmts.into_iter().enumerate() {
        body.insert(at + i, s);
    }
    true
}

/// Wraps a statement from the idiom region in a gate or a short counted
/// loop — structural material for the unroll/branch passes.
fn restructure(p: &mut Program, rng: &mut Rng) -> bool {
    let Some(body) = main_body_mut(p) else {
        return false;
    };
    let hi = body.len().saturating_sub(2);
    if hi <= PROLOGUE_LEN {
        return false;
    }
    let at = PROLOGUE_LEN + rng.below(hi - PROLOGUE_LEN);
    if matches!(body[at].kind, StmtKind::Decl { .. } | StmtKind::Return(_)) {
        return false;
    }
    let inner = body.remove(at);
    let wrapped = if rng.one_in(2) {
        // Gate on an input byte.
        let gate = i64::from(rng.byte() & 63);
        gen::sif(
            gen::bin(BinOp::Ge, gen::var("a"), gen::int(gate)),
            vec![inner],
            None,
        )
    } else {
        // Run it twice through a tiny counted loop (fresh counter name
        // derived from position).
        let k = format!("rk{at}");
        gen::sfor(
            gen::decl(&k, minc::Type::Int, Some(gen::int(0))),
            gen::bin(BinOp::Lt, gen::var(&k), gen::int(2)),
            minc::ast::Expr {
                id: minc::NodeId(0),
                span: minc::Span::dummy(),
                kind: ExprKind::Assign {
                    op: Some(BinOp::Add),
                    target: Box::new(gen::var(&k)),
                    value: Box::new(gen::int(1)),
                },
            },
            vec![inner],
        )
    };
    body.insert(at, wrapped);
    true
}

// ---- Public operators ----

/// Produces a mutated child of `parent`. Always returns a valid genome:
/// invalid candidates are rejected and retried, and after
/// [`RETRY_BUDGET`] failures the parent is returned unchanged (the PRNG
/// stream consumed so far keeps the run deterministic either way).
pub fn mutate(parent: &Genome, rng: &mut Rng) -> Genome {
    for _ in 0..RETRY_BUDGET {
        let mut child = parent.program.clone();
        let applied = match rng.below(6) {
            0 => splice(&mut child, rng),
            1 => remove(&mut child, rng),
            2 => perturb_int_lit(&mut child, rng),
            3 => swap_binop(&mut child, rng),
            4 => inject(&mut child, rng),
            _ => restructure(&mut child, rng),
        };
        if applied && valid(&child) {
            let mut probes = parent.probes.clone();
            // Occasionally nudge a probe byte alongside the code change.
            if rng.one_in(4) {
                let pi = rng.below(probes.len());
                if probes[pi].is_empty() {
                    probes[pi] = vec![rng.byte() & 0x7f];
                } else {
                    let bi = rng.below(probes[pi].len());
                    probes[pi][bi] = rng.byte() & 0x7f;
                }
            }
            return Genome {
                program: child,
                probes,
            };
        }
    }
    parent.clone()
}

/// Single-point crossover on the `main` idiom regions: the child takes
/// `a`'s prologue and head plus `b`'s tail (and `a`'s probes). Falls back
/// to a clone of `a` when the splice does not produce a valid program.
pub fn crossover(a: &Genome, b: &Genome, rng: &mut Rng) -> Genome {
    let (Some(body_a), Some(body_b)) = (main_body(&a.program), main_body(&b.program)) else {
        return a.clone();
    };
    let hi_a = body_a.len().saturating_sub(2);
    let hi_b = body_b.len().saturating_sub(2);
    if hi_a <= PROLOGUE_LEN || hi_b <= PROLOGUE_LEN {
        return a.clone();
    }
    let cut_a = PROLOGUE_LEN + rng.below(hi_a - PROLOGUE_LEN + 1);
    let cut_b = PROLOGUE_LEN + rng.below(hi_b - PROLOGUE_LEN + 1);
    let mut child = a.program.clone();
    // Child needs b's globals too (union, a's first).
    for g in &b.program.globals {
        if !child.globals.iter().any(|cg| cg.name == g.name) {
            child.globals.push(g.clone());
        }
    }
    let tail: Vec<Stmt> = b.program.functions[0].body.kind.clone_block_range(cut_b);
    if let Some(body) = main_body_mut(&mut child) {
        body.truncate(cut_a);
        body.extend(tail);
    }
    if valid(&child) {
        Genome {
            program: child,
            probes: a.probes.clone(),
        }
    } else {
        a.clone()
    }
}

/// Helper trait to pull a suffix of a block's statements.
trait CloneBlockRange {
    fn clone_block_range(&self, from: usize) -> Vec<Stmt>;
}

impl CloneBlockRange for StmtKind {
    fn clone_block_range(&self, from: usize) -> Vec<Stmt> {
        match self {
            StmtKind::Block(stmts) if from <= stmts.len() => stmts[from..].to_vec(),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn mutants_are_always_valid() {
        let mut rng = Rng::new(11);
        let mut g = generate(&mut rng);
        for _ in 0..30 {
            g = mutate(&g, &mut rng);
            assert!(valid(&g.program), "mutant failed check:\n{}", g.source());
        }
    }

    #[test]
    fn mutation_is_deterministic() {
        let parent = generate(&mut Rng::new(5));
        let a = mutate(&parent, &mut Rng::new(99));
        let b = mutate(&parent, &mut Rng::new(99));
        assert_eq!(a.source(), b.source());
        assert_eq!(a.probes, b.probes);
    }

    #[test]
    fn crossover_children_are_valid() {
        let mut rng = Rng::new(21);
        let a = generate(&mut rng);
        let b = generate(&mut rng);
        for seed in 0..10 {
            let child = crossover(&a, &b, &mut Rng::new(seed));
            assert!(valid(&child.program), "bad child:\n{}", child.source());
        }
    }

    #[test]
    fn generated_bodies_have_literals_to_perturb() {
        let g = generate(&mut Rng::new(2));
        let mut lits = 0usize;
        if let Some(body) = main_body(&g.program) {
            for st in body {
                for_each_expr_in_stmt(st, &mut |x| lits += count_int_lits_shallow(x));
            }
        }
        assert!(lits > 0, "prologue alone carries literals");
    }
}
