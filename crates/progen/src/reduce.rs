//! Automatic witness reduction: delta-debugging over AST nodes.
//!
//! Given a diverging program and the probe it diverges on, the reducer
//! repeatedly tries structural shrink operations — delete a statement,
//! hoist a compound statement's body, drop an `else` branch, delete an
//! unused global or helper function — keeping an edit only when the
//! shrunk program still (a) passes the frontend and (b) diverges with the
//! *same witness pair*: the first two implementations that landed in
//! different output classes in the original run. Edits are enumerated in
//! a fixed depth-first order and applied first-fit to a fixpoint, so the
//! reducer is fully deterministic (no PRNG at all) and idempotent by
//! construction: reducing a reduced witness finds no applicable edit and
//! returns it unchanged.
//!
//! The final witness is re-verified through the full 10-implementation
//! oracle before it is returned.

use compdiff::{signature_with_hash, CompDiff, DiffConfig};
use minc::ast::{Program, Stmt, StmtKind};

/// A successfully reduced witness.
#[derive(Debug, Clone)]
pub struct ReduceOutcome {
    /// The minimal diverging source.
    pub source: String,
    /// Oracle evaluations performed (the paper-style "reduction steps").
    pub steps: u64,
    /// Hash-keyed signature of the reduced program's divergence.
    pub signature: String,
    /// The two implementation indices whose divergence was preserved.
    pub witness_pair: (usize, usize),
}

/// One candidate shrink operation, addressed structurally.
#[derive(Debug, Clone)]
enum Edit {
    /// Delete the statement at `path` inside function `func`'s body.
    DeleteStmt {
        func: usize,
        path: Vec<usize>,
    },
    /// Replace the compound statement at `path` with (a part of) its
    /// body: `arm` 0 = then/body contents, 1 = else contents.
    Hoist {
        func: usize,
        path: Vec<usize>,
        arm: usize,
    },
    /// Remove the `else` branch of the `if` at `path`.
    DropElse {
        func: usize,
        path: Vec<usize>,
    },
    DeleteGlobal(usize),
    DeleteFunction(usize),
    DeleteStruct(usize),
}

/// Children of a statement that we descend into, as `(index, child)`.
fn children(s: &Stmt) -> Vec<&Stmt> {
    match &s.kind {
        StmtKind::Block(v) => v.iter().collect(),
        StmtKind::If { then, els, .. } => {
            let mut c = vec![then.as_ref()];
            if let Some(e) = els {
                c.push(e.as_ref());
            }
            c
        }
        StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => vec![body.as_ref()],
        StmtKind::For { init, body, .. } => {
            let mut c = Vec::new();
            if let Some(i) = init {
                c.push(i.as_ref());
            }
            c.push(body.as_ref());
            c
        }
        _ => Vec::new(),
    }
}

fn child_mut(s: &mut Stmt, idx: usize) -> Option<&mut Stmt> {
    match &mut s.kind {
        StmtKind::Block(v) => v.get_mut(idx),
        StmtKind::If { then, els, .. } => match idx {
            0 => Some(then.as_mut()),
            1 => els.as_deref_mut(),
            _ => None,
        },
        StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
            (idx == 0).then(|| body.as_mut())
        }
        StmtKind::For { init, body, .. } => match (idx, init) {
            (0, Some(i)) => Some(i.as_mut()),
            (0, None) => Some(body.as_mut()),
            (1, Some(_)) => Some(body.as_mut()),
            _ => None,
        },
        _ => None,
    }
}

/// Enumerates candidate edits in depth-first order: biggest wins first
/// (whole-statement deletion), then structural flattening, then
/// program-level deletions.
fn enumerate_edits(p: &Program) -> Vec<Edit> {
    let mut edits = Vec::new();
    for (fi, f) in p.functions.iter().enumerate() {
        let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
        while let Some(path) = stack.pop() {
            let Some(node) = resolve(&f.body, &path) else {
                continue;
            };
            // Deleting is only meaningful for elements of a Block parent.
            if let StmtKind::Block(v) = &node.kind {
                for i in 0..v.len() {
                    let mut child_path = path.clone();
                    child_path.push(i);
                    edits.push(Edit::DeleteStmt {
                        func: fi,
                        path: child_path,
                    });
                }
            }
            match &node.kind {
                StmtKind::If { els, .. } => {
                    edits.push(Edit::Hoist {
                        func: fi,
                        path: path.clone(),
                        arm: 0,
                    });
                    if els.is_some() {
                        edits.push(Edit::Hoist {
                            func: fi,
                            path: path.clone(),
                            arm: 1,
                        });
                        edits.push(Edit::DropElse {
                            func: fi,
                            path: path.clone(),
                        });
                    }
                }
                StmtKind::While { .. } | StmtKind::DoWhile { .. } | StmtKind::For { .. } => {
                    edits.push(Edit::Hoist {
                        func: fi,
                        path: path.clone(),
                        arm: 0,
                    });
                }
                _ => {}
            }
            for (i, _) in children(node).iter().enumerate() {
                let mut child_path = path.clone();
                child_path.push(i);
                stack.push(child_path);
            }
        }
    }
    for gi in 0..p.globals.len() {
        edits.push(Edit::DeleteGlobal(gi));
    }
    for (fi, f) in p.functions.iter().enumerate() {
        if f.name != "main" {
            edits.push(Edit::DeleteFunction(fi));
        }
    }
    for si in 0..p.structs.len() {
        edits.push(Edit::DeleteStruct(si));
    }
    edits
}

fn resolve<'a>(root: &'a Stmt, path: &[usize]) -> Option<&'a Stmt> {
    let mut cur = root;
    for &i in path {
        cur = *children(cur).get(i)?;
    }
    Some(cur)
}

fn resolve_mut<'a>(root: &'a mut Stmt, path: &[usize]) -> Option<&'a mut Stmt> {
    let mut cur = root;
    for &i in path {
        cur = child_mut(cur, i)?;
    }
    Some(cur)
}

/// The statements a compound statement's `arm` hoists to (clones).
fn hoist_body(s: &Stmt, arm: usize) -> Option<Vec<Stmt>> {
    let unwrap = |b: &Stmt| match &b.kind {
        StmtKind::Block(v) => v.clone(),
        _ => vec![b.clone()],
    };
    match (&s.kind, arm) {
        (StmtKind::If { then, .. }, 0) => Some(unwrap(then)),
        (StmtKind::If { els: Some(e), .. }, 1) => Some(unwrap(e)),
        (StmtKind::While { body, .. }, 0)
        | (StmtKind::DoWhile { body, .. }, 0)
        | (StmtKind::For { body, .. }, 0) => Some(unwrap(body)),
        _ => None,
    }
}

/// Applies `edit` to a clone of `p`; `None` when it does not apply (the
/// tree changed since enumeration).
fn apply_edit(p: &Program, edit: &Edit) -> Option<Program> {
    let mut out = p.clone();
    match edit {
        Edit::DeleteStmt { func, path } => {
            let (parent_path, last) = path.split_at(path.len() - 1);
            let f = out.functions.get_mut(*func)?;
            let parent = resolve_mut(&mut f.body, parent_path)?;
            match &mut parent.kind {
                StmtKind::Block(v) if last[0] < v.len() => {
                    v.remove(last[0]);
                }
                _ => return None,
            }
        }
        Edit::Hoist { func, path, arm } => {
            let f = out.functions.get_mut(*func)?;
            let node = resolve_mut(&mut f.body, path)?;
            let body = hoist_body(node, *arm)?;
            node.kind = StmtKind::Block(body);
        }
        Edit::DropElse { func, path } => {
            let f = out.functions.get_mut(*func)?;
            let node = resolve_mut(&mut f.body, path)?;
            match &mut node.kind {
                StmtKind::If { els, .. } if els.is_some() => *els = None,
                _ => return None,
            }
        }
        Edit::DeleteGlobal(i) => {
            if *i >= out.globals.len() {
                return None;
            }
            out.globals.remove(*i);
        }
        Edit::DeleteFunction(i) => {
            if *i >= out.functions.len() || out.functions[*i].name == "main" {
                return None;
            }
            out.functions.remove(*i);
        }
        Edit::DeleteStruct(i) => {
            if *i >= out.structs.len() {
                return None;
            }
            out.structs.remove(*i);
        }
    }
    Some(out)
}

/// The witness oracle: does `src` still diverge on `probe` with impls
/// `i` and `j` in different output classes? Counts one step per call.
fn still_diverges(src: &str, probe: &[u8], pair: (usize, usize), steps: &mut u64) -> bool {
    *steps += 1;
    let Ok(diff) = CompDiff::from_source_default(src, DiffConfig::default()) else {
        return false;
    };
    let outcome = diff.run_input(probe);
    outcome.divergent && outcome.hashes[pair.0] != outcome.hashes[pair.1]
}

/// Reduces `src` to a minimal program that still diverges on `probe`
/// under the same implementation pair as the original run.
///
/// # Errors
///
/// Returns a message when `src` does not compile or does not diverge on
/// `probe` (there is nothing to reduce).
pub fn reduce(src: &str, probe: &[u8]) -> Result<ReduceOutcome, String> {
    let diff = CompDiff::from_source_default(src, DiffConfig::default())
        .map_err(|e| format!("frontend: {e}"))?;
    let outcome = diff.run_input(probe);
    if !outcome.divergent {
        return Err("program does not diverge on the given probe".to_string());
    }
    // Witness pair: representatives of the first two output classes.
    let pair = (outcome.classes[0][0], outcome.classes[1][0]);

    let mut program = minc::parse(src).map_err(|e| format!("parse: {e}"))?;
    let mut steps = 0u64;

    // First-fit passes to a fixpoint: retry the full edit enumeration
    // after every successful shrink (the tree changed under it).
    loop {
        let mut progressed = false;
        for edit in enumerate_edits(&program) {
            let Some(candidate) = apply_edit(&program, &edit) else {
                continue;
            };
            let rendered = minc::pretty::program(&candidate);
            if minc::check(&rendered).is_err() {
                continue;
            }
            if still_diverges(&rendered, probe, pair, &mut steps) {
                program = candidate;
                progressed = true;
                break;
            }
        }
        if !progressed {
            break;
        }
    }

    // Final re-verification through the full oracle.
    let source = minc::pretty::program(&program);
    let final_diff = CompDiff::from_source_default(&source, DiffConfig::default())
        .map_err(|e| format!("reduced witness stopped compiling: {e}"))?;
    let final_outcome = final_diff.run_input(probe);
    if !final_outcome.divergent || final_outcome.hashes[pair.0] == final_outcome.hashes[pair.1] {
        return Err("reduced witness no longer diverges (oracle violation)".to_string());
    }
    let signature = signature_with_hash(final_diff.src_hash(), &final_diff.impls(), &final_outcome);
    Ok(ReduceOutcome {
        source,
        steps,
        signature,
        witness_pair: pair,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An uninit read wrapped in removable noise.
    const NOISY: &str = r#"
int SINK;
int helper(int x) { return x + 1; }
int main() {
    int a = 3;
    int b = helper(a);
    if (b > 0) { SINK = SINK + b; } else { SINK = 0; }
    int u;
    printf("u %d\n", u & 255);
    printf("end %d\n", a + b);
    return 0;
}
"#;

    #[test]
    fn reduction_strips_noise_and_preserves_divergence() {
        let out = reduce(NOISY, b"").expect("reduces");
        assert!(out.steps > 0);
        assert!(
            out.source.len() < NOISY.len(),
            "got no smaller: {}",
            out.source
        );
        assert!(out.source.contains("printf"), "witness stays observable");
        // Oracle preservation is checked inside reduce(); double-check
        // from the outside too.
        let diff = CompDiff::from_source_default(&out.source, DiffConfig::default()).unwrap();
        let oc = diff.run_input(b"");
        assert!(oc.divergent);
        assert_ne!(oc.hashes[out.witness_pair.0], oc.hashes[out.witness_pair.1]);
    }

    #[test]
    fn reduction_is_deterministic() {
        let a = reduce(NOISY, b"").unwrap();
        let b = reduce(NOISY, b"").unwrap();
        assert_eq!(a.source, b.source);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.signature, b.signature);
    }

    #[test]
    fn reduction_is_idempotent() {
        let once = reduce(NOISY, b"").unwrap();
        let twice = reduce(&once.source, b"").unwrap();
        assert_eq!(once.source, twice.source, "fixpoint reached");
    }

    #[test]
    fn non_divergent_input_is_rejected() {
        let err = reduce("int main() { printf(\"hi\\n\"); return 0; }", b"").unwrap_err();
        assert!(err.contains("does not diverge"), "{err}");
    }
}
