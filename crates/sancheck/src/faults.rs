//! Deterministic sanitizer fault injection: the meta-oracle's own chaos
//! harness.
//!
//! The meta-oracle claims it can tell a broken sanitizer from a working
//! one. The only way to test that claim is to break a sanitizer on
//! purpose: a [`SanFaultPlan`] deterministically *suppresses* reports a
//! sanitizer would have made (planting false negatives) or *fires*
//! spurious reports it would not have (planting false positives), and
//! the regression suite asserts the meta-oracle flags each planted
//! defect. The grammar mirrors the campaign's `FaultPlan`
//! (`kind@site[#k]`, comma-separated), and firing decisions are pure
//! functions of per-run callback counters — never of timing — so the
//! same plan replays the same defects.
//!
//! # Plan grammar
//!
//! ```text
//! suppress@msan            swallow every MSan report
//! suppress@ubsan#2         swallow only UBSan's 2nd report of the run
//! fire@ubsan:shift-out-of-bounds      inject at UBSan's 1st check
//! fire@asan:heap-buffer-overflow#3    inject at ASan's 3rd check
//! ```
//!
//! A `fire` rule injects only where the wrapped sanitizer stayed silent,
//! so a plan never converts one genuine report into a different one.

use minc_compile::ir::{BinKind, IrType};
use minc_vm::hooks::{FreeDisposition, Hooks, Loc, PoisonUse};
use minc_vm::result::{Fault, SanitizerKind};
use std::fmt;

/// One planted sanitizer defect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SanFault {
    /// Swallow the `k`-th report (`None` = every report) of the sanitizer.
    Suppress {
        /// Sanitizer the rule applies to.
        san: SanitizerKind,
        /// 1-based report ordinal; `None` suppresses all.
        nth: Option<u32>,
    },
    /// Inject a spurious report with `category` at the sanitizer's `nth`
    /// check callback (only if the real check stayed silent there).
    Fire {
        /// Sanitizer the rule applies to.
        san: SanitizerKind,
        /// Category string of the injected fault.
        category: String,
        /// 1-based check-callback ordinal.
        nth: u32,
    },
}

/// A comma-separated list of [`SanFault`] rules.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SanFaultPlan {
    /// The rules, in spec order.
    pub rules: Vec<SanFault>,
}

fn parse_san(s: &str) -> Result<SanitizerKind, String> {
    match s {
        "asan" => Ok(SanitizerKind::Asan),
        "ubsan" => Ok(SanitizerKind::Ubsan),
        "msan" => Ok(SanitizerKind::Msan),
        other => Err(format!("unknown sanitizer `{other}` (asan|ubsan|msan)")),
    }
}

fn san_name(k: SanitizerKind) -> &'static str {
    match k {
        SanitizerKind::Asan => "asan",
        SanitizerKind::Ubsan => "ubsan",
        SanitizerKind::Msan => "msan",
    }
}

impl SanFaultPlan {
    /// Parses a plan spec; empty input is the empty plan.
    pub fn parse(spec: &str) -> Result<SanFaultPlan, String> {
        let mut rules = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (kind, rest) = part
                .split_once('@')
                .ok_or_else(|| format!("rule `{part}` is missing `@`"))?;
            let (site, nth) = match rest.rsplit_once('#') {
                Some((site, k)) => {
                    let n: u32 = k
                        .parse()
                        .map_err(|_| format!("bad ordinal `{k}` in `{part}`"))?;
                    if n == 0 {
                        return Err(format!("ordinal in `{part}` is 1-based"));
                    }
                    (site, Some(n))
                }
                None => (rest, None),
            };
            match kind {
                "suppress" => rules.push(SanFault::Suppress {
                    san: parse_san(site)?,
                    nth,
                }),
                "fire" => {
                    let (san, category) = site
                        .split_once(':')
                        .ok_or_else(|| format!("fire rule `{part}` needs `san:category`"))?;
                    if category.is_empty() {
                        return Err(format!("fire rule `{part}` has an empty category"));
                    }
                    rules.push(SanFault::Fire {
                        san: parse_san(san)?,
                        category: category.to_string(),
                        nth: nth.unwrap_or(1),
                    });
                }
                other => return Err(format!("unknown rule kind `{other}` (suppress|fire)")),
            }
        }
        Ok(SanFaultPlan { rules })
    }

    fn suppresses(&self, san: SanitizerKind, report_ordinal: u32) -> bool {
        self.rules.iter().any(|r| {
            matches!(r, SanFault::Suppress { san: s, nth }
                if *s == san && nth.is_none_or(|n| n == report_ordinal))
        })
    }

    fn injection(&self, san: SanitizerKind, check_ordinal: u32) -> Option<&str> {
        self.rules.iter().find_map(|r| match r {
            SanFault::Fire {
                san: s,
                category,
                nth,
            } if *s == san && *nth == check_ordinal => Some(category.as_str()),
            _ => None,
        })
    }
}

impl fmt::Display for SanFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for r in &self.rules {
            if !first {
                f.write_str(",")?;
            }
            first = false;
            match r {
                SanFault::Suppress { san, nth: None } => write!(f, "suppress@{}", san_name(*san))?,
                SanFault::Suppress { san, nth: Some(n) } => {
                    write!(f, "suppress@{}#{n}", san_name(*san))?
                }
                SanFault::Fire { san, category, nth } => {
                    write!(f, "fire@{}:{category}#{nth}", san_name(*san))?
                }
            }
        }
        Ok(())
    }
}

/// A [`Hooks`] wrapper applying a [`SanFaultPlan`] to one sanitizer run.
///
/// Every fault-capable callback counts as one *check*; every fault the
/// inner sanitizer produces counts as one *report*. Suppression rules
/// swallow reports; fire rules inject where the inner check was silent.
#[derive(Debug)]
pub struct PlannedSan<H> {
    inner: H,
    plan: SanFaultPlan,
    kind: SanitizerKind,
    checks: u32,
    reports: u32,
}

impl<H: Hooks> PlannedSan<H> {
    /// Wraps `inner` (a `kind` sanitizer) under `plan`.
    pub fn new(inner: H, kind: SanitizerKind, plan: SanFaultPlan) -> Self {
        PlannedSan {
            inner,
            plan,
            kind,
            checks: 0,
            reports: 0,
        }
    }

    /// Applies the plan to one check's outcome.
    fn filter(&mut self, fault: Option<Fault>) -> Option<Fault> {
        self.checks += 1;
        match fault {
            Some(f) => {
                self.reports += 1;
                if self.plan.suppresses(self.kind, self.reports) {
                    None
                } else {
                    Some(f)
                }
            }
            None => self
                .plan
                .injection(self.kind, self.checks)
                .map(|cat| Fault::new(self.kind, cat.to_string(), "planted by SanFaultPlan")),
        }
    }
}

impl<H: Hooks> Hooks for PlannedSan<H> {
    fn on_edge(&mut self, from: Loc, to: Loc) {
        self.inner.on_edge(from, to);
    }
    fn check_load(&mut self, addr: u64, width: u64, loc: Loc) -> Option<Fault> {
        let f = self.inner.check_load(addr, width, loc);
        self.filter(f)
    }
    fn check_store(&mut self, addr: u64, width: u64, loc: Loc) -> Option<Fault> {
        let f = self.inner.check_store(addr, width, loc);
        self.filter(f)
    }
    fn check_bin(
        &mut self,
        op: BinKind,
        ty: IrType,
        a: u64,
        b: u64,
        ub_signed: bool,
        loc: Loc,
    ) -> Option<Fault> {
        let f = self.inner.check_bin(op, ty, a, b, ub_signed, loc);
        self.filter(f)
    }
    fn heap_redzone(&self) -> u64 {
        self.inner.heap_redzone()
    }
    fn on_malloc(&mut self, addr: u64, size: u64) {
        self.inner.on_malloc(addr, size);
    }
    fn on_free(&mut self, addr: u64, size: u64, loc: Loc) -> Result<FreeDisposition, Fault> {
        match self.inner.on_free(addr, size, loc) {
            Ok(d) => {
                self.checks += 1;
                match self.plan.injection(self.kind, self.checks) {
                    Some(cat) => Err(Fault::new(
                        self.kind,
                        cat.to_string(),
                        "planted by SanFaultPlan",
                    )),
                    None => Ok(d),
                }
            }
            Err(f) => {
                self.checks += 1;
                self.reports += 1;
                if self.plan.suppresses(self.kind, self.reports) {
                    // A suppressed free-error still needs a disposition;
                    // quarantine is what a silent ASan would have done.
                    Ok(FreeDisposition::Quarantine)
                } else {
                    Err(f)
                }
            }
        }
    }
    fn on_bad_free(&mut self, addr: u64, loc: Loc) -> Option<Fault> {
        let f = self.inner.on_bad_free(addr, loc);
        self.filter(f)
    }
    fn on_frame_enter(&mut self, lo: u64, hi: u64, slots: &[(u64, u64)]) {
        self.inner.on_frame_enter(lo, hi, slots);
    }
    fn on_frame_exit(&mut self, lo: u64, hi: u64) {
        self.inner.on_frame_exit(lo, hi);
    }
    fn track_poison(&self) -> bool {
        self.inner.track_poison()
    }
    fn load_poison(&mut self, addr: u64, width: u64) -> bool {
        self.inner.load_poison(addr, width)
    }
    fn store_poison(&mut self, addr: u64, width: u64, poisoned: bool) {
        self.inner.store_poison(addr, width, poisoned);
    }
    fn on_poison_use(&mut self, use_: PoisonUse, loc: Loc) -> Option<Fault> {
        let f = self.inner.on_poison_use(use_, loc);
        self.filter(f)
    }
    fn on_exit(&mut self, live_heap: &[(u64, u64)]) -> Option<Fault> {
        let f = self.inner.on_exit(live_heap);
        // Exit reports are filtered too (a suppressed leak report), but
        // injections keyed on check ordinals do not apply here.
        match f {
            Some(fault) => {
                self.reports += 1;
                if self.plan.suppresses(self.kind, self.reports) {
                    None
                } else {
                    Some(fault)
                }
            }
            None => None,
        }
    }
    fn bulk_mem_ok(&self) -> bool {
        self.inner.bulk_mem_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let spec = "suppress@msan,suppress@ubsan#2,fire@asan:heap-buffer-overflow#3";
        let plan = SanFaultPlan::parse(spec).unwrap();
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(
            plan.to_string(),
            "suppress@msan,suppress@ubsan#2,fire@asan:heap-buffer-overflow#3"
        );
        assert_eq!(SanFaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(SanFaultPlan::parse("suppress").is_err());
        assert!(SanFaultPlan::parse("suppress@tsan").is_err());
        assert!(SanFaultPlan::parse("fire@ubsan").is_err());
        assert!(SanFaultPlan::parse("fire@ubsan:").is_err());
        assert!(SanFaultPlan::parse("suppress@msan#0").is_err());
        assert!(SanFaultPlan::parse("explode@msan").is_err());
        assert!(SanFaultPlan::parse("").unwrap().rules.is_empty());
    }

    #[test]
    fn suppression_rules_match_ordinals() {
        let plan = SanFaultPlan::parse("suppress@msan,suppress@ubsan#2").unwrap();
        assert!(plan.suppresses(SanitizerKind::Msan, 1));
        assert!(plan.suppresses(SanitizerKind::Msan, 7));
        assert!(!plan.suppresses(SanitizerKind::Ubsan, 1));
        assert!(plan.suppresses(SanitizerKind::Ubsan, 2));
        assert!(!plan.suppresses(SanitizerKind::Asan, 1));
    }

    #[test]
    fn fire_rules_match_check_ordinals() {
        let plan = SanFaultPlan::parse("fire@ubsan:integer-divide-by-zero#2").unwrap();
        assert_eq!(plan.injection(SanitizerKind::Ubsan, 1), None);
        assert_eq!(
            plan.injection(SanitizerKind::Ubsan, 2),
            Some("integer-divide-by-zero")
        );
        assert_eq!(plan.injection(SanitizerKind::Msan, 2), None);
    }
}
