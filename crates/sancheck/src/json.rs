//! JSON renderings for lint findings and meta-oracle reports.
//!
//! The CLI's `--json` flags route through here so both subcommands share
//! one stable schema, built on the workspace's dependency-free
//! [`compdiff::Json`] value type. Everything is emitted in deterministic
//! order (the inputs are already sorted by their producers), so two runs
//! over the same program render byte-identical documents — the property
//! the CI determinism gate compares.

use compdiff::Json;
use staticheck_ir::ubmap::Certainty;
use staticheck_ir::LintFinding;

use crate::SancheckReport;

/// Lint findings as a JSON array (one object per finding).
pub fn lint_to_json(findings: &[LintFinding]) -> Json {
    Json::Array(
        findings
            .iter()
            .map(|f| {
                Json::obj(vec![
                    ("line", Json::Int(f.finding.span.line as i64)),
                    ("defect", Json::Str(f.finding.defect.to_string())),
                    ("message", Json::Str(f.finding.message.clone())),
                    ("origin", Json::Str(f.origin.to_string())),
                    ("impls", Json::strings(f.impls.iter())),
                ])
            })
            .collect(),
    )
}

/// A full meta-oracle report as one JSON object.
pub fn report_to_json(r: &SancheckReport) -> Json {
    let sites = Json::Array(
        r.map
            .sites
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("line", Json::Int(s.line as i64)),
                    ("function", Json::Str(s.function.clone())),
                    ("class", Json::Str(s.class.to_string())),
                    (
                        "certainty",
                        Json::Str(
                            if s.certainty == Certainty::Must {
                                "must"
                            } else {
                                "may"
                            }
                            .to_string(),
                        ),
                    ),
                    ("origin", Json::Str(s.origin.to_string())),
                    ("message", Json::Str(s.message.clone())),
                ])
            })
            .collect(),
    );
    let contradictions = Json::Array(
        r.map
            .contradictions
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("line", Json::Int(c.line as i64)),
                    ("class", Json::Str(c.class.to_string())),
                    ("impls", Json::strings(c.impls.iter())),
                    ("detail", Json::Str(c.detail.clone())),
                ])
            })
            .collect(),
    );
    let unknown = Json::strings(r.map.unknown.iter().map(|c| c.to_string()));
    let verdicts = Json::Array(
        r.verdicts
            .iter()
            .map(|v| {
                Json::obj(vec![
                    ("impl", Json::Str(v.impl_id.to_string())),
                    ("sanitizer", Json::Str(v.kind.to_string())),
                    ("verdict", Json::Str(v.verdict())),
                ])
            })
            .collect(),
    );
    let fns = Json::Array(
        r.false_negatives
            .iter()
            .map(|f| {
                Json::obj(vec![
                    ("impl", Json::Str(f.impl_id.to_string())),
                    ("sanitizer", Json::Str(f.kind.to_string())),
                    ("class", Json::Str(f.class.to_string())),
                    ("line", Json::Int(f.line as i64)),
                ])
            })
            .collect(),
    );
    let fps = Json::Array(
        r.false_positives
            .iter()
            .map(|f| {
                Json::obj(vec![
                    ("impl", Json::Str(f.impl_id.to_string())),
                    ("sanitizer", Json::Str(f.kind.to_string())),
                    ("class", Json::Str(f.class.to_string())),
                    ("category", Json::Str(f.category.clone())),
                ])
            })
            .collect(),
    );
    let divergences = Json::Array(
        r.divergences
            .iter()
            .map(|d| {
                Json::obj(vec![
                    ("sanitizer", Json::Str(d.kind.to_string())),
                    ("signature", Json::Str(d.signature.clone())),
                    (
                        "groups",
                        Json::Array(
                            d.groups
                                .iter()
                                .map(|(verdict, impls)| {
                                    Json::obj(vec![
                                        ("verdict", Json::Str(verdict.clone())),
                                        ("impls", Json::strings(impls.iter())),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("sites", sites),
        ("contradictions", contradictions),
        ("unknown", unknown),
        ("verdicts", verdicts),
        ("false_negatives", fns),
        ("false_positives", fps),
        ("divergences", divergences),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_source, SanFaultPlan, SancheckConfig};
    use minc_compile::personality::CompilerImpl;
    use staticheck_ir::UnstableLint;

    fn cfg() -> SancheckConfig {
        SancheckConfig {
            impls: vec![
                CompilerImpl::parse("gcc-O0").unwrap(),
                CompilerImpl::parse("gcc-O2").unwrap(),
            ],
            fault_plan: SanFaultPlan::default(),
            ..SancheckConfig::default()
        }
    }

    const SRC: &str = r#"
        int main() {
            int u;
            if (u > 0) { printf("y\n"); }
            return 0;
        }
    "#;

    #[test]
    fn lint_json_round_trips_through_the_parser() {
        let findings = UnstableLint::new().run_source(SRC).unwrap();
        assert!(!findings.is_empty());
        let rendered = lint_to_json(&findings).render_pretty();
        let parsed = Json::parse(&rendered).unwrap();
        let arr = parsed.as_array().unwrap();
        assert_eq!(arr.len(), findings.len());
        assert_eq!(
            arr[0].get("defect").and_then(Json::as_str),
            Some(findings[0].finding.defect.to_string().as_str())
        );
        assert_eq!(
            arr[0].get("line").and_then(Json::as_i64),
            Some(findings[0].finding.span.line as i64)
        );
    }

    #[test]
    fn report_json_round_trips_and_is_deterministic() {
        let a = check_source(SRC, &cfg()).unwrap();
        let b = check_source(SRC, &cfg()).unwrap();
        let ja = report_to_json(&a).render_pretty();
        let jb = report_to_json(&b).render_pretty();
        assert_eq!(ja, jb, "two runs must render byte-identical JSON");
        let parsed = Json::parse(&ja).unwrap();
        assert!(parsed.get("sites").and_then(Json::as_array).is_some());
        assert_eq!(
            parsed
                .get("verdicts")
                .and_then(Json::as_array)
                .map(|v| v.len()),
            Some(a.verdicts.len())
        );
    }
}
