//! # sancheck — the sanitizer meta-oracle
//!
//! The paper treats sanitizers as ground truth for "did UB execute?".
//! That is only safe if the sanitizers themselves are trustworthy, so
//! this crate turns the tables and *checks the checkers*: it builds the
//! static UB ground-truth map ([`staticheck_ir::UbSiteMap`]) for a
//! program, runs every compiler implementation's sanitizer-instrumented
//! build under each sanitizer analog, and diffs the dynamic verdicts
//! against the static map and against each other:
//!
//! * a sanitizer staying **silent on a `must` site** in its scope is a
//!   false negative ([`FnFinding`]);
//! * a sanitizer **firing a class the map refutes** (statically covered,
//!   fully decided, zero sites) is a false alarm ([`FpFinding`]);
//! * implementations **disagreeing about one sanitizer's verdict** form
//!   a [`Divergence`] — a new defect class with a content-hashed
//!   signature, the sanitizer-level analog of the paper's differential
//!   discrepancies. The usual cause is an optimizer legally deleting a
//!   dead UB operation that the `-O0` build still executes.
//!
//! The harness is validated by its own fault injection
//! ([`faults::SanFaultPlan`]): regression tests plant suppressed and
//! spurious reports and assert the meta-oracle flags each one.

#![warn(missing_docs)]

pub mod faults;
pub mod json;

pub use faults::{PlannedSan, SanFault, SanFaultPlan};

use compdiff::hash64;
use minc::{CheckedProgram, FrontendError};
use minc_compile::personality::CompilerImpl;
use minc_compile::Binary;
use minc_vm::result::{Fault, SanitizerKind, Trap};
use minc_vm::{ExecResult, ExitStatus, VmConfig};
use sanitizers::{Asan, Msan, Ubsan};
use staticheck_ir::ubmap::{self, UbClass};
use staticheck_ir::{Certainty, UbSiteMap};
use std::collections::BTreeMap;

/// The sanitizers, in the fixed order every scan uses.
pub const SAN_KINDS: [SanitizerKind; 3] = [
    SanitizerKind::Asan,
    SanitizerKind::Ubsan,
    SanitizerKind::Msan,
];

/// The UB classes a sanitizer is *supposed* to catch (paper Table 1).
/// Silence outside the scope proves nothing.
pub fn scope(kind: SanitizerKind) -> &'static [UbClass] {
    match kind {
        SanitizerKind::Msan => &[UbClass::Uninit],
        SanitizerKind::Ubsan => &[
            UbClass::SignedOverflow,
            UbClass::OversizedShift,
            UbClass::DivByZero,
            UbClass::NullDeref,
        ],
        SanitizerKind::Asan => &[
            UbClass::OutOfBounds,
            UbClass::UseAfterFree,
            UbClass::DoubleFree,
            UbClass::BadFree,
        ],
    }
}

/// Meta-oracle configuration.
#[derive(Debug, Clone)]
pub struct SancheckConfig {
    /// Implementations to build and cross-check (also the provenance
    /// channel of the UB-site map).
    pub impls: Vec<CompilerImpl>,
    /// Input fed to every run.
    pub input: Vec<u8>,
    /// Planted sanitizer defects (empty = honest sanitizers).
    pub fault_plan: SanFaultPlan,
    /// VM limits.
    pub vm: VmConfig,
}

impl Default for SancheckConfig {
    fn default() -> Self {
        SancheckConfig {
            impls: CompilerImpl::default_set(),
            input: Vec::new(),
            fault_plan: SanFaultPlan::default(),
            vm: VmConfig::default(),
        }
    }
}

/// One (implementation × sanitizer) run outcome.
#[derive(Debug, Clone)]
pub struct SanVerdict {
    /// The implementation whose sanitized build ran.
    pub impl_id: CompilerImpl,
    /// The sanitizer.
    pub kind: SanitizerKind,
    /// How the run ended.
    pub status: ExitStatus,
    /// The sanitizer report, if it fired.
    pub fired: Option<Fault>,
}

impl SanVerdict {
    /// Canonical verdict string (the divergence-grouping key).
    pub fn verdict(&self) -> String {
        match &self.fired {
            Some(f) => format!("fired:{}", f.category),
            None => "silent".to_string(),
        }
    }
}

/// A sanitizer stayed silent on a `must` UB site in its scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnFinding {
    /// The implementation whose build missed it.
    pub impl_id: CompilerImpl,
    /// The silent sanitizer.
    pub kind: SanitizerKind,
    /// The missed UB class.
    pub class: UbClass,
    /// Source line of the (first) missed must-site.
    pub line: u32,
}

/// A sanitizer fired a class the static map refutes for this program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FpFinding {
    /// The implementation whose build fired.
    pub impl_id: CompilerImpl,
    /// The firing sanitizer.
    pub kind: SanitizerKind,
    /// The refuted UB class.
    pub class: UbClass,
    /// The report's category string.
    pub category: String,
}

/// Implementations disagreeing about one sanitizer's verdict — the
/// `SanitizerDivergence` defect class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The sanitizer whose verdict split.
    pub kind: SanitizerKind,
    /// Content-hashed signature (`s<hash>|p<src>|san:<kind>|...`),
    /// stable across runs and machines.
    pub signature: String,
    /// Verdict -> implementation display names, both sorted.
    pub groups: Vec<(String, Vec<String>)>,
}

/// Everything the meta-oracle concluded about one program.
#[derive(Debug, Clone)]
pub struct SancheckReport {
    /// The static UB ground-truth map.
    pub map: UbSiteMap,
    /// Every (impl × sanitizer) verdict, in scan order.
    pub verdicts: Vec<SanVerdict>,
    /// Sanitizer false negatives.
    pub false_negatives: Vec<FnFinding>,
    /// Sanitizer false alarms.
    pub false_positives: Vec<FpFinding>,
    /// Cross-implementation verdict splits.
    pub divergences: Vec<Divergence>,
}

impl SancheckReport {
    /// The one-line machine-greppable summary.
    pub fn summary(&self) -> String {
        format!(
            "sancheck: sites={} must={} san_fn={} san_fp={} verdict_splits={} contradictions={}",
            self.map.sites.len(),
            self.map
                .sites
                .iter()
                .filter(|s| s.certainty == Certainty::Must)
                .count(),
            self.false_negatives.len(),
            self.false_positives.len(),
            self.divergences.len(),
            self.map.contradictions.len(),
        )
    }

    /// Deterministic human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.summary());
        out.push('\n');
        out.push_str(&self.map.render());
        for v in &self.verdicts {
            out.push_str(&format!(
                "  verdict {} x {}: {}\n",
                v.impl_id,
                v.kind,
                v.verdict()
            ));
        }
        for f in &self.false_negatives {
            out.push_str(&format!(
                "  FALSE NEGATIVE: {} stayed silent under {} on must-site {} at line {}\n",
                f.kind, f.impl_id, f.class, f.line
            ));
        }
        for f in &self.false_positives {
            out.push_str(&format!(
                "  FALSE ALARM: {} under {} reported {} ({}), statically refuted\n",
                f.kind, f.impl_id, f.category, f.class
            ));
        }
        for d in &self.divergences {
            out.push_str(&format!(
                "  SANITIZER DIVERGENCE [{}] {}\n",
                d.kind, d.signature
            ));
            for (verdict, impls) in &d.groups {
                out.push_str(&format!("    {} <- {}\n", verdict, impls.join("+")));
            }
        }
        out
    }
}

/// Builds `impl_id`'s *sanitized* binary: the implementation's own
/// pipeline (so optimizer-deleted UB stays deleted, which is what makes
/// verdicts diverge) with ASan-style frame padding so redzones exist.
pub fn compile_sanitized_for(checked: &CheckedProgram, impl_id: CompilerImpl) -> Binary {
    let mut p = impl_id.personality();
    p.slot_padding = p.slot_padding.max(16);
    minc_compile::compile_with_personality(checked, p)
}

fn run_planned(
    bin: &Binary,
    input: &[u8],
    vm: &VmConfig,
    kind: SanitizerKind,
    plan: &SanFaultPlan,
) -> ExecResult {
    match kind {
        SanitizerKind::Asan => minc_vm::execute_with_hooks(
            bin,
            input,
            vm,
            &mut PlannedSan::new(Asan::new(), kind, plan.clone()),
        ),
        SanitizerKind::Ubsan => minc_vm::execute_with_hooks(
            bin,
            input,
            vm,
            &mut PlannedSan::new(Ubsan::new(), kind, plan.clone()),
        ),
        SanitizerKind::Msan => minc_vm::execute_with_hooks(
            bin,
            input,
            vm,
            &mut PlannedSan::new(Msan::new(), kind, plan.clone()),
        ),
    }
}

/// Whether a silent sanitizer can be *blamed* for this run: judging a
/// false negative needs the run to have actually reached the site. A
/// normal exit reached everything on the unconditional path; a trap of
/// the site's own class proves the UB executed uncaught; any other trap
/// or a timeout means execution may have died earlier, so no judgment.
fn fn_judgeable(status: &ExitStatus, class: UbClass) -> bool {
    match status {
        ExitStatus::Code(_) => true,
        ExitStatus::Trapped(Trap::Sigfpe) => {
            matches!(class, UbClass::DivByZero | UbClass::SignedOverflow)
        }
        ExitStatus::Trapped(Trap::Segv) => class == UbClass::NullDeref,
        _ => false,
    }
}

/// Runs the full meta-oracle over a checked program.
///
/// `src_hash` keys divergence signatures to the program (pass
/// [`compdiff::hash64`] of the source bytes, or 0 to omit).
pub fn check_program(
    checked: &CheckedProgram,
    src_hash: u64,
    config: &SancheckConfig,
) -> SancheckReport {
    let map = UbSiteMap::build(checked, &config.impls);

    // One sanitized build per impl, three sanitizer runs each.
    let mut verdicts: Vec<SanVerdict> = Vec::new();
    for impl_id in &config.impls {
        let bin = compile_sanitized_for(checked, *impl_id);
        for kind in SAN_KINDS {
            let r = run_planned(&bin, &config.input, &config.vm, kind, &config.fault_plan);
            let fired = match &r.status {
                ExitStatus::Sanitizer(f) => Some(f.clone()),
                _ => None,
            };
            verdicts.push(SanVerdict {
                impl_id: *impl_id,
                kind,
                status: r.status,
                fired,
            });
        }
    }

    // False negatives: silence on a must-site in scope.
    let mut false_negatives = Vec::new();
    for v in &verdicts {
        if v.fired.is_some() {
            continue;
        }
        for &class in scope(v.kind) {
            let must_line = map
                .sites
                .iter()
                .find(|s| s.class == class && s.certainty == Certainty::Must)
                .map(|s| s.line);
            if let Some(line) = must_line {
                if fn_judgeable(&v.status, class) {
                    false_negatives.push(FnFinding {
                        impl_id: v.impl_id,
                        kind: v.kind,
                        class,
                        line,
                    });
                }
            }
        }
    }

    // False alarms: a fired class the static map refutes.
    let mut false_positives = Vec::new();
    for v in &verdicts {
        let Some(f) = &v.fired else { continue };
        let Some(class) = ubmap::class_of_category(&f.category) else {
            continue; // category outside the taxonomy: not judgeable
        };
        if map.refutes(class) {
            false_positives.push(FpFinding {
                impl_id: v.impl_id,
                kind: v.kind,
                class,
                category: f.category.clone(),
            });
        }
    }

    // Divergences: per sanitizer, group impls by verdict string.
    let mut divergences = Vec::new();
    for kind in SAN_KINDS {
        let mut groups: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for v in verdicts.iter().filter(|v| v.kind == kind) {
            groups
                .entry(v.verdict())
                .or_default()
                .push(v.impl_id.to_string());
        }
        if groups.len() > 1 {
            for impls in groups.values_mut() {
                impls.sort();
            }
            let parts: Vec<String> = groups
                .iter()
                .map(|(verdict, impls)| format!("{}@{verdict}", impls.join("+")))
                .collect();
            let base = format!("p{src_hash:016x}|san:{}|{}", kind, parts.join(" | "));
            divergences.push(Divergence {
                kind,
                signature: format!("s{:016x}|{base}", hash64(base.as_bytes())),
                groups: groups.into_iter().collect(),
            });
        }
    }

    SancheckReport {
        map,
        verdicts,
        false_negatives,
        false_positives,
        divergences,
    }
}

/// [`check_program`] from source text; the divergence signatures are
/// keyed by the source hash.
pub fn check_source(src: &str, config: &SancheckConfig) -> Result<SancheckReport, FrontendError> {
    let checked = minc::check(src)?;
    Ok(check_program(&checked, hash64(src.as_bytes()), config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use minc_compile::personality::{Family, OptLevel};

    fn impls(names: &[&str]) -> Vec<CompilerImpl> {
        names
            .iter()
            .map(|n| CompilerImpl::parse(n).expect("valid impl"))
            .collect()
    }

    fn config_with(names: &[&str], plan: &str) -> SancheckConfig {
        SancheckConfig {
            impls: impls(names),
            fault_plan: SanFaultPlan::parse(plan).unwrap(),
            ..SancheckConfig::default()
        }
    }

    const CLEAN: &str = r#"
        int main() {
            int x = 1 + 2;
            printf("%d\n", x);
            return 0;
        }
    "#;

    const UNINIT_BRANCH: &str = r#"
        int main() {
            int u;
            if (u > 0) { printf("y\n"); }
            return 0;
        }
    "#;

    // The divergence witness: the division's result is dead, so
    // aggressive pipelines legally delete the division while `-O0` still
    // executes it — UBSan fires at O0 and stays silent at O2.
    const DEAD_DIV: &str = r#"
        int main() {
            int z = (int)input_size();
            int t = 5 / z;
            printf("ok\n");
            return 0;
        }
    "#;

    #[test]
    fn clean_program_yields_no_findings() {
        let report = check_source(CLEAN, &config_with(&["gcc-O0", "gcc-O2"], "")).unwrap();
        assert!(
            report.false_negatives.is_empty(),
            "{:?}",
            report.false_negatives
        );
        assert!(
            report.false_positives.is_empty(),
            "{:?}",
            report.false_positives
        );
        assert!(report.divergences.is_empty(), "{:?}", report.divergences);
    }

    #[test]
    fn dead_ub_operation_splits_sanitizer_verdicts() {
        let report = check_source(DEAD_DIV, &config_with(&["gcc-O0", "gcc-O2"], "")).unwrap();
        let div = report
            .divergences
            .iter()
            .find(|d| d.kind == SanitizerKind::Ubsan)
            .expect("UBSan verdict split");
        assert!(div.signature.starts_with('s'));
        assert_eq!(div.groups.len(), 2);
        assert!(
            div.groups
                .iter()
                .any(|(v, _)| v == "fired:integer-divide-by-zero"),
            "{:?}",
            div.groups
        );
        // Deterministic signature across runs.
        let again = check_source(DEAD_DIV, &config_with(&["gcc-O0", "gcc-O2"], "")).unwrap();
        assert_eq!(
            again.divergences[0].signature,
            report.divergences[0].signature
        );
    }

    #[test]
    fn suppressed_msan_report_is_flagged_as_false_negative() {
        let honest = check_source(UNINIT_BRANCH, &config_with(&["gcc-O0", "gcc-O2"], "")).unwrap();
        let planted = check_source(
            UNINIT_BRANCH,
            &config_with(&["gcc-O0", "gcc-O2"], "suppress@msan"),
        )
        .unwrap();
        assert!(
            planted.false_negatives.len() > honest.false_negatives.len(),
            "planted FNs not detected: honest={:?} planted={:?}",
            honest.false_negatives,
            planted.false_negatives
        );
        assert!(planted
            .false_negatives
            .iter()
            .any(|f| f.kind == SanitizerKind::Msan && f.class == UbClass::Uninit));
        // The suppression also splits verdicts against nothing — both
        // impls are suppressed alike, so no *extra* divergence appears
        // relative to the honest run for MSan.
        let msan_div =
            |r: &SancheckReport| r.divergences.iter().any(|d| d.kind == SanitizerKind::Msan);
        assert_eq!(msan_div(&honest), msan_div(&planted));
    }

    #[test]
    fn spurious_ubsan_report_is_flagged_as_false_alarm() {
        let planted = check_source(
            CLEAN,
            &config_with(&["gcc-O0"], "fire@ubsan:shift-out-of-bounds#1"),
        )
        .unwrap();
        assert!(
            planted
                .false_positives
                .iter()
                .any(|f| f.kind == SanitizerKind::Ubsan
                    && f.class == UbClass::OversizedShift
                    && f.category == "shift-out-of-bounds"),
            "planted FP not detected: {:?}",
            planted.false_positives
        );
    }

    #[test]
    fn injection_needs_a_real_check_to_ride_on() {
        // A fire rule keyed to an ordinal past the program's last check
        // callback never triggers: injection rides existing checks, it
        // does not invent new program points.
        let planted = check_source(
            CLEAN,
            &config_with(&["gcc-O0", "gcc-O2"], "fire@ubsan:shift-out-of-bounds#999"),
        )
        .unwrap();
        assert!(
            planted.false_positives.is_empty(),
            "{:?}",
            planted.false_positives
        );
        assert!(planted.divergences.is_empty(), "{:?}", planted.divergences);
        assert!(planted.verdicts.iter().all(|v| v.verdict() == "silent"));
    }

    #[test]
    fn report_and_summary_are_deterministic() {
        let cfg = config_with(&["gcc-O0", "clang-O2"], "");
        let a = check_source(DEAD_DIV, &cfg).unwrap();
        let b = check_source(DEAD_DIV, &cfg).unwrap();
        assert_eq!(a.render(), b.render());
        assert!(a.summary().starts_with("sancheck: sites="));
        assert!(a.summary().contains("verdict_splits="));
    }

    #[test]
    fn must_site_class_in_scope_only_blames_scoped_sanitizers() {
        // ASan is never blamed for an arithmetic must-site.
        let report = check_source(
            UNINIT_BRANCH,
            &config_with(&["gcc-O0"], "suppress@msan,suppress@ubsan,suppress@asan"),
        )
        .unwrap();
        assert!(report
            .false_negatives
            .iter()
            .all(|f| f.kind == SanitizerKind::Msan));
    }

    #[test]
    fn impl_parse_helper_sanity() {
        assert_eq!(
            impls(&["gcc-O0"])[0],
            CompilerImpl::new(Family::Gcc, OptLevel::O0)
        );
    }
}
