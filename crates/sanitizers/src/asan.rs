//! AddressSanitizer analog.
//!
//! Scope (paper Table 1): memory errors — heap/stack buffer overflow and
//! underflow, use-after-free, double free, invalid free. Mechanism mirrors
//! real ASan: redzones around heap chunks, poisoned gaps between stack
//! slots, a quarantine that prevents freed-address reuse, and byte-granular
//! shadow checks on every access.

use crate::shadow::Shadow;
use minc_vm::hooks::{FreeDisposition, Hooks, Loc};
use minc_vm::result::{Fault, SanitizerKind};
use std::collections::{HashMap, HashSet};

/// Shadow byte states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Heap redzone (left or right of a chunk).
    HeapRedzone,
    /// Freed (quarantined) heap memory.
    Freed,
    /// Stack frame bytes not belonging to any slot.
    StackRedzone,
}

/// ASan-analog hook implementation.
#[derive(Debug, Default)]
pub struct Asan {
    shadow: Shadow<State>,
    live: HashMap<u64, u64>,
    freed: HashSet<u64>,
}

impl Asan {
    /// Fresh instance (one per execution).
    pub fn new() -> Self {
        Asan::default()
    }

    /// Bytes of redzone on each side of heap chunks.
    pub const REDZONE: u64 = 16;

    fn fault(&self, category: &str, addr: u64) -> Fault {
        Fault::new(
            SanitizerKind::Asan,
            category,
            format!("invalid access at 0x{addr:x}"),
        )
    }

    fn check(&mut self, addr: u64, width: u64) -> Option<Fault> {
        let (bad, state) = self.shadow.first_marked(addr, width)?;
        let category = match state {
            State::HeapRedzone => "heap-buffer-overflow",
            State::Freed => "heap-use-after-free",
            State::StackRedzone => "stack-buffer-overflow",
        };
        Some(self.fault(category, bad))
    }
}

impl Hooks for Asan {
    fn check_load(&mut self, addr: u64, width: u64, _loc: Loc) -> Option<Fault> {
        self.check(addr, width)
    }

    fn check_store(&mut self, addr: u64, width: u64, _loc: Loc) -> Option<Fault> {
        self.check(addr, width)
    }

    fn heap_redzone(&self) -> u64 {
        Self::REDZONE
    }

    fn on_malloc(&mut self, addr: u64, size: u64) {
        self.shadow.mark(
            addr.wrapping_sub(Self::REDZONE),
            Self::REDZONE,
            State::HeapRedzone,
        );
        self.shadow
            .mark(addr + size, Self::REDZONE, State::HeapRedzone);
        self.shadow.clear(addr, size);
        self.live.insert(addr, size);
        self.freed.remove(&addr);
    }

    fn on_free(&mut self, addr: u64, size: u64, _loc: Loc) -> Result<FreeDisposition, Fault> {
        self.live.remove(&addr);
        self.freed.insert(addr);
        self.shadow.mark(addr, size, State::Freed);
        Ok(FreeDisposition::Quarantine)
    }

    fn on_bad_free(&mut self, addr: u64, _loc: Loc) -> Option<Fault> {
        if self.freed.contains(&addr) {
            return Some(Fault::new(
                SanitizerKind::Asan,
                "double-free",
                format!("double free of 0x{addr:x}"),
            ));
        }
        Some(Fault::new(
            SanitizerKind::Asan,
            "bad-free",
            format!("free of non-heap or interior pointer 0x{addr:x}"),
        ))
    }

    fn on_frame_enter(&mut self, lo: u64, hi: u64, slots: &[(u64, u64)]) {
        self.shadow.mark(lo, hi - lo, State::StackRedzone);
        for &(addr, size) in slots {
            self.shadow.clear(addr, size);
        }
    }

    fn on_frame_exit(&mut self, lo: u64, hi: u64) {
        self.shadow.clear(lo, hi - lo);
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::run_sanitized;
    use minc_vm::result::{ExitStatus, SanitizerKind};

    fn asan_category(src: &str) -> Option<String> {
        match run_sanitized(src, b"", SanitizerKind::Asan).status {
            ExitStatus::Sanitizer(f) => Some(f.category),
            _ => None,
        }
    }

    #[test]
    fn detects_heap_overflow() {
        let src = r#"
            int main() {
                char* p = (char*)malloc(8L);
                p[8] = 'x';
                free(p);
                return 0;
            }
        "#;
        assert_eq!(asan_category(src).as_deref(), Some("heap-buffer-overflow"));
    }

    #[test]
    fn detects_heap_underwrite() {
        let src = r#"
            int main() {
                char* p = (char*)malloc(8L);
                p[-1] = 'x';
                return 0;
            }
        "#;
        assert_eq!(asan_category(src).as_deref(), Some("heap-buffer-overflow"));
    }

    #[test]
    fn detects_use_after_free() {
        let src = r#"
            int main() {
                int* p = (int*)malloc(16L);
                p[0] = 1;
                free(p);
                printf("%d\n", p[0]);
                return 0;
            }
        "#;
        assert_eq!(asan_category(src).as_deref(), Some("heap-use-after-free"));
    }

    #[test]
    fn detects_double_free() {
        let src = r#"
            int main() {
                char* p = (char*)malloc(8L);
                free(p);
                free(p);
                return 0;
            }
        "#;
        assert_eq!(asan_category(src).as_deref(), Some("double-free"));
    }

    #[test]
    fn detects_free_of_stack_memory() {
        let src = "int main() { int x; free(&x); return 0; }";
        assert_eq!(asan_category(src).as_deref(), Some("bad-free"));
    }

    #[test]
    fn detects_stack_overflow_into_padding() {
        let src = r#"
            int main() {
                char a[8];
                a[9] = 'x';
                return 0;
            }
        "#;
        assert_eq!(asan_category(src).as_deref(), Some("stack-buffer-overflow"));
    }

    #[test]
    fn clean_program_passes() {
        let src = r#"
            int main() {
                char* p = (char*)malloc(8L);
                int i;
                for (i = 0; i < 8; i++) p[i] = (char)i;
                int s = 0;
                for (i = 0; i < 8; i++) s += p[i];
                free(p);
                printf("%d\n", s);
                return 0;
            }
        "#;
        assert_eq!(asan_category(src), None);
    }

    #[test]
    fn misses_uninit_and_evalorder_like_real_asan() {
        // Table 1: ASan scope is memory errors only.
        let uninit = "int main() { int u; printf(\"%d\\n\", u); return 0; }";
        assert_eq!(asan_category(uninit), None);
    }
}
