//! # sanitizers — ASan / UBSan / MSan analogs for the MinC VM
//!
//! The CompDiff paper compares against the three mainstream sanitizers;
//! this crate reproduces each one's *scope* (paper Table 1) as VM
//! instrumentation:
//!
//! | analog | scope | mechanism |
//! |---|---|---|
//! | [`Asan`]  | memory errors | redzones + quarantine + stack poisoning |
//! | [`Ubsan`] | arithmetic/shift/div/null UB | per-operation checks |
//! | [`Msan`]  | uses of uninitialized memory | byte-granular definedness shadow, reported at branch/address/divisor uses |
//!
//! Sanitizer binaries are *separate builds* (like `-fsanitize=` builds):
//! [`sanitizer_personality`] is clang-sim `-O1` with extra frame padding so
//! stack redzones exist, mirroring how real ASan instruments frames.
//!
//! ```
//! use sanitizers::{compile_sanitized, run_sanitized};
//! use minc_vm::{ExitStatus, SanitizerKind, VmConfig};
//!
//! # fn main() -> Result<(), minc::FrontendError> {
//! let bin = compile_sanitized("int main() { char b[4]; b[6] = 1; return 0; }")?;
//! let r = run_sanitized(&bin, b"", &VmConfig::default(), SanitizerKind::Asan);
//! assert!(matches!(r.status, ExitStatus::Sanitizer(_)));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
pub mod asan;
pub mod lsan;
pub mod msan;
pub mod shadow;
pub mod ubsan;

pub use asan::Asan;
pub use lsan::Lsan;
pub use msan::Msan;
pub use ubsan::Ubsan;

use minc::FrontendError;
use minc_compile::ir::{BinKind, IrType};
use minc_compile::{Binary, CompilerImpl, Personality};
use minc_vm::hooks::{FreeDisposition, Hooks, Loc, PoisonUse};
use minc_vm::result::{Fault, SanitizerKind};
use minc_vm::{ExecResult, VmConfig};

/// The build configuration for sanitizer binaries: clang-sim `-O1` with
/// 16-byte gaps between stack slots (so stack redzones exist — real ASan
/// does the same by growing frames).
pub fn sanitizer_personality() -> Personality {
    let mut p = CompilerImpl::parse("clang-O1")
        .expect("valid impl")
        .personality();
    p.slot_padding = 16;
    // Real -fsanitize builds insert checks in the frontend, *before* the
    // optimizer can delete "dead" UB operations; model that by keeping
    // dead loads/divisions alive in sanitizer builds (no DCE, no widening).
    use minc_compile::PassKind::*;
    p.pipeline = vec![Mem2Reg, ConstFold, CopyProp, SimplifyCfg];
    p
}

/// Compiles `src` the way a `-fsanitize=` build would.
///
/// # Errors
///
/// Returns the frontend error if `src` does not parse or check.
pub fn compile_sanitized(src: &str) -> Result<Binary, FrontendError> {
    let checked = minc::check(src)?;
    Ok(minc_compile::compile_with_personality(
        &checked,
        sanitizer_personality(),
    ))
}

/// Runs a (sanitizer-built) binary under one sanitizer analog.
pub fn run_sanitized(
    bin: &Binary,
    input: &[u8],
    config: &VmConfig,
    kind: SanitizerKind,
) -> ExecResult {
    match kind {
        SanitizerKind::Asan => minc_vm::execute_with_hooks(bin, input, config, &mut Asan::new()),
        SanitizerKind::Ubsan => minc_vm::execute_with_hooks(bin, input, config, &mut Ubsan::new()),
        SanitizerKind::Msan => minc_vm::execute_with_hooks(bin, input, config, &mut Msan::new()),
    }
}

/// Runs a binary under all three sanitizers (three executions, like the
/// paper's separate ASan/UBSan and MSan fuzzing configurations) and
/// collects any reports.
pub fn run_all_sanitizers(bin: &Binary, input: &[u8], config: &VmConfig) -> Vec<Fault> {
    let mut faults = Vec::new();
    for kind in [
        SanitizerKind::Asan,
        SanitizerKind::Ubsan,
        SanitizerKind::Msan,
    ] {
        if let minc_vm::ExitStatus::Sanitizer(f) = run_sanitized(bin, input, config, kind).status {
            faults.push(f);
        }
    }
    faults
}

/// ASan and UBSan combined in one binary (the common fuzzing setup; the
/// paper compiles "ASan/UBSan" together). UBSan's operation checks run
/// first, then ASan's memory checks.
#[derive(Debug, Default)]
pub struct AsanUbsan {
    asan: Asan,
    ubsan: Ubsan,
}

impl AsanUbsan {
    /// Fresh instance.
    pub fn new() -> Self {
        AsanUbsan::default()
    }
}

impl Hooks for AsanUbsan {
    fn check_load(&mut self, addr: u64, width: u64, loc: Loc) -> Option<Fault> {
        self.ubsan
            .check_load(addr, width, loc)
            .or_else(|| self.asan.check_load(addr, width, loc))
    }
    fn check_store(&mut self, addr: u64, width: u64, loc: Loc) -> Option<Fault> {
        self.ubsan
            .check_store(addr, width, loc)
            .or_else(|| self.asan.check_store(addr, width, loc))
    }
    fn check_bin(
        &mut self,
        op: BinKind,
        ty: IrType,
        a: u64,
        b: u64,
        ub_signed: bool,
        loc: Loc,
    ) -> Option<Fault> {
        self.ubsan.check_bin(op, ty, a, b, ub_signed, loc)
    }
    fn heap_redzone(&self) -> u64 {
        self.asan.heap_redzone()
    }
    fn on_malloc(&mut self, addr: u64, size: u64) {
        self.asan.on_malloc(addr, size);
    }
    fn on_free(&mut self, addr: u64, size: u64, loc: Loc) -> Result<FreeDisposition, Fault> {
        self.asan.on_free(addr, size, loc)
    }
    fn on_bad_free(&mut self, addr: u64, loc: Loc) -> Option<Fault> {
        self.asan.on_bad_free(addr, loc)
    }
    fn on_frame_enter(&mut self, lo: u64, hi: u64, slots: &[(u64, u64)]) {
        self.asan.on_frame_enter(lo, hi, slots);
    }
    fn on_frame_exit(&mut self, lo: u64, hi: u64) {
        self.asan.on_frame_exit(lo, hi);
    }
    fn on_poison_use(&mut self, _use_: PoisonUse, _loc: Loc) -> Option<Fault> {
        None
    }
}

/// Test helper shared by the per-sanitizer test modules (public so the
/// crate's unit tests and downstream integration tests can use it).
#[doc(hidden)]
pub mod testutil {
    use super::*;

    /// Compiles `src` with the sanitizer personality and runs it under the
    /// given sanitizer.
    pub fn run_sanitized(src: &str, input: &[u8], kind: SanitizerKind) -> ExecResult {
        let bin = compile_sanitized(src).expect("test source compiles");
        super::run_sanitized(&bin, input, &VmConfig::default(), kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minc_vm::ExitStatus;

    #[test]
    fn combined_asan_ubsan_reports_both_classes() {
        let mem = "int main() { char* p = (char*)malloc(4L); p[4] = 1; return 0; }";
        let bin = compile_sanitized(mem).unwrap();
        let r = minc_vm::execute_with_hooks(&bin, b"", &VmConfig::default(), &mut AsanUbsan::new());
        assert!(
            matches!(&r.status, ExitStatus::Sanitizer(f) if f.category == "heap-buffer-overflow")
        );

        let int = "int main() { int a = 2147483647 - (int)input_size(); return a + 1; }";
        let bin = compile_sanitized(int).unwrap();
        let r = minc_vm::execute_with_hooks(&bin, b"", &VmConfig::default(), &mut AsanUbsan::new());
        assert!(
            matches!(&r.status, ExitStatus::Sanitizer(f) if f.category == "signed-integer-overflow")
        );
    }

    #[test]
    fn run_all_sanitizers_aggregates() {
        let src = "int main() { int u; if (u) { printf(\"x\\n\"); } return 0; }";
        let bin = compile_sanitized(src).unwrap();
        let faults = run_all_sanitizers(&bin, b"", &VmConfig::default());
        assert!(faults.iter().any(|f| f.kind == SanitizerKind::Msan));
        assert!(!faults.iter().any(|f| f.kind == SanitizerKind::Asan));
    }

    #[test]
    fn clean_program_is_clean_under_everything() {
        let src = r#"
            int main() {
                int a[4];
                int i;
                for (i = 0; i < 4; i++) a[i] = i;
                printf("%d\n", a[0] + a[3]);
                return 0;
            }
        "#;
        let bin = compile_sanitized(src).unwrap();
        assert!(run_all_sanitizers(&bin, b"", &VmConfig::default()).is_empty());
    }
}
