//! LeakSanitizer analog (opt-in, like `ASAN_OPTIONS=detect_leaks=1`).
//!
//! Not part of the paper's comparison (its Table 1 covers ASan/UBSan/MSan
//! scopes, and leaks are not undefined behavior), but real sanitizer
//! deployments ship it, so a production-complete suite should too. It is
//! therefore *not* wired into the Juliet/targets evaluation harnesses.

use minc_vm::hooks::Hooks;
use minc_vm::result::{Fault, SanitizerKind};

/// LSan-analog hook implementation: reports still-reachable heap memory at
/// normal exit. Crashing or sanitizer-aborted runs are not checked (real
/// LSan behaves the same way).
#[derive(Debug, Default)]
pub struct Lsan;

impl Lsan {
    /// Fresh instance.
    pub fn new() -> Self {
        Lsan
    }
}

impl Hooks for Lsan {
    fn on_exit(&mut self, live_heap: &[(u64, u64)]) -> Option<Fault> {
        if live_heap.is_empty() {
            return None;
        }
        let total: u64 = live_heap.iter().map(|&(_, s)| s).sum();
        Some(Fault::new(
            SanitizerKind::Asan, // LSan ships inside ASan's runtime
            "memory-leak",
            format!(
                "{} byte(s) in {} allocation(s) leaked; first at 0x{:x}",
                total,
                live_heap.len(),
                live_heap[0].0
            ),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_sanitized;
    use minc_vm::{execute_with_hooks, ExitStatus, VmConfig};

    fn run_lsan(src: &str) -> ExitStatus {
        let bin = compile_sanitized(src).unwrap();
        execute_with_hooks(&bin, b"", &VmConfig::default(), &mut Lsan::new()).status
    }

    #[test]
    fn reports_leaked_allocation() {
        let status = run_lsan("int main() { char* p = (char*)malloc(32L); p[0] = 'x'; return 0; }");
        match status {
            ExitStatus::Sanitizer(f) => {
                assert_eq!(f.category, "memory-leak");
                assert!(f.message.contains("32 byte(s) in 1 allocation(s)"), "{f}");
            }
            other => panic!("expected leak report, got {other}"),
        }
    }

    #[test]
    fn freed_memory_is_not_a_leak() {
        let status =
            run_lsan("int main() { char* p = (char*)malloc(32L); p[0] = 'x'; free(p); return 0; }");
        assert_eq!(status, ExitStatus::Code(0));
    }

    #[test]
    fn exit_builtin_is_also_checked() {
        let status = run_lsan("int main() { malloc(8L); exit(0); return 0; }");
        assert!(matches!(status, ExitStatus::Sanitizer(f) if f.category == "memory-leak"));
    }

    #[test]
    fn crashes_skip_the_leak_check() {
        let status = run_lsan(
            "int main() { char* p = (char*)malloc(8L); int* q = 0; int d = *q; return d; }",
        );
        // The null deref dominates; no leak report on crashed runs.
        assert!(
            !matches!(&status, ExitStatus::Sanitizer(f) if f.category == "memory-leak"),
            "{status}"
        );
    }

    #[test]
    fn multiple_leaks_are_summed() {
        let status = run_lsan("int main() { malloc(8L); malloc(24L); return 0; }");
        match status {
            ExitStatus::Sanitizer(f) => {
                assert!(f.message.contains("2 allocation(s)"), "{f}");
            }
            other => panic!("{other}"),
        }
    }
}
