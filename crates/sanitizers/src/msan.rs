//! MemorySanitizer analog.
//!
//! Scope (paper Table 1): use of uninitialized memory. Like real MSan —
//! and this matters for the paper's comparison — it reports only when an
//! uninitialized value *determines* execution: a branch condition, a
//! memory address, or a divisor. Copying, storing, or printing an
//! uninitialized value is deliberately not reported (real MSan suppresses
//! these paths to avoid false positives; the paper's exiv2 example is
//! exactly such a miss).

use crate::shadow::Shadow;
use minc_vm::hooks::{FreeDisposition, Hooks, Loc, PoisonUse};
use minc_vm::result::{Fault, SanitizerKind};

/// MSan-analog hook implementation.
#[derive(Debug, Default)]
pub struct Msan {
    poisoned: Shadow<()>,
}

impl Msan {
    /// Fresh instance.
    pub fn new() -> Self {
        Msan::default()
    }
}

impl Hooks for Msan {
    fn track_poison(&self) -> bool {
        true
    }

    fn on_frame_enter(&mut self, _lo: u64, _hi: u64, slots: &[(u64, u64)]) {
        for &(addr, size) in slots {
            self.poisoned.mark(addr, size, ());
        }
    }

    fn on_frame_exit(&mut self, lo: u64, hi: u64) {
        self.poisoned.clear(lo, hi - lo);
    }

    fn on_malloc(&mut self, addr: u64, size: u64) {
        self.poisoned.mark(addr, size, ());
    }

    fn on_free(&mut self, addr: u64, size: u64, _loc: Loc) -> Result<FreeDisposition, Fault> {
        self.poisoned.mark(addr, size, ());
        Ok(FreeDisposition::Reuse)
    }

    fn load_poison(&mut self, addr: u64, width: u64) -> bool {
        self.poisoned.first_marked(addr, width).is_some()
    }

    fn store_poison(&mut self, addr: u64, width: u64, poisoned: bool) {
        if poisoned {
            self.poisoned.mark(addr, width, ());
        } else {
            self.poisoned.clear(addr, width);
        }
    }

    fn on_poison_use(&mut self, use_: PoisonUse, _loc: Loc) -> Option<Fault> {
        let what = match use_ {
            PoisonUse::Branch => "branch on uninitialized value",
            PoisonUse::Address => "uninitialized value used as address",
            PoisonUse::Divisor => "uninitialized divisor",
        };
        Some(Fault::new(
            SanitizerKind::Msan,
            "use-of-uninitialized-value",
            what,
        ))
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::run_sanitized;
    use minc_vm::result::{ExitStatus, SanitizerKind};

    fn msan_category(src: &str) -> Option<String> {
        match run_sanitized(src, b"", SanitizerKind::Msan).status {
            ExitStatus::Sanitizer(f) => Some(f.category),
            _ => None,
        }
    }

    #[test]
    fn detects_branch_on_uninitialized_local() {
        let src = r#"
            int main() {
                int u;
                if (u > 3) { printf("big\n"); } else { printf("small\n"); }
                return 0;
            }
        "#;
        assert_eq!(
            msan_category(src).as_deref(),
            Some("use-of-uninitialized-value")
        );
    }

    #[test]
    fn detects_branch_on_uninitialized_heap() {
        let src = r#"
            int main() {
                int* p = (int*)malloc(8L);
                if (p[1] != 0) { printf("x\n"); }
                free(p);
                return 0;
            }
        "#;
        assert_eq!(
            msan_category(src).as_deref(),
            Some("use-of-uninitialized-value")
        );
    }

    #[test]
    fn does_not_report_printing_uninitialized_value() {
        // The paper's exiv2 example shape: the uninitialized value is only
        // printed, so MSan stays silent (and CompDiff catches it instead).
        let src = "int main() { int u; printf(\"%d\\n\", u); return 0; }";
        assert_eq!(msan_category(src), None);
    }

    #[test]
    fn initialized_paths_are_clean() {
        let src = r#"
            int main() {
                int v = 4;
                int* p = (int*)malloc(8L);
                p[0] = v;
                if (p[0] > 3) { printf("ok\n"); }
                free(p);
                return 0;
            }
        "#;
        assert_eq!(msan_category(src), None);
    }

    #[test]
    fn propagates_through_arithmetic_and_copies() {
        let src = r#"
            int main() {
                int u;
                int v = u + 1;
                int w = v * 2;
                if (w == 12345) { printf("hit\n"); }
                return 0;
            }
        "#;
        assert_eq!(
            msan_category(src).as_deref(),
            Some("use-of-uninitialized-value")
        );
    }

    #[test]
    fn input_initializes_memory() {
        let src = r#"
            int main() {
                char buf[4];
                read_input(buf, 4L);
                if (buf[0] == 'a') { printf("a!\n"); }
                return 0;
            }
        "#;
        let r = run_sanitized(src, b"abcd", SanitizerKind::Msan);
        assert_eq!(r.status, ExitStatus::Code(0), "{:?}", r.status);
    }
}
