//! Byte-granular shadow memory shared by the sanitizer analogs.

use std::collections::HashMap;

/// A sparse map from address to a shadow byte. Absent addresses carry the
/// default state (addressable / initialized).
#[derive(Debug, Clone)]
pub struct Shadow<S: Copy + PartialEq> {
    map: HashMap<u64, S>,
}

impl<S: Copy + PartialEq> Default for Shadow<S> {
    fn default() -> Self {
        Shadow::new()
    }
}

impl<S: Copy + PartialEq> Shadow<S> {
    /// Empty shadow.
    pub fn new() -> Self {
        Shadow {
            map: HashMap::new(),
        }
    }

    /// Marks `[addr, addr+len)` with `state`.
    pub fn mark(&mut self, addr: u64, len: u64, state: S) {
        for i in 0..len {
            self.map.insert(addr.wrapping_add(i), state);
        }
    }

    /// Clears `[addr, addr+len)` back to the default state.
    pub fn clear(&mut self, addr: u64, len: u64) {
        for i in 0..len {
            self.map.remove(&addr.wrapping_add(i));
        }
    }

    /// The state of one byte, if marked.
    pub fn get(&self, addr: u64) -> Option<S> {
        self.map.get(&addr).copied()
    }

    /// First marked byte in `[addr, addr+len)`, with its state.
    pub fn first_marked(&self, addr: u64, len: u64) -> Option<(u64, S)> {
        (0..len).find_map(|i| {
            let a = addr.wrapping_add(i);
            self.map.get(&a).map(|s| (a, *s))
        })
    }

    /// Number of marked bytes (for tests).
    pub fn marked_len(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_query_clear() {
        let mut s: Shadow<u8> = Shadow::new();
        s.mark(100, 4, 7);
        assert_eq!(s.get(100), Some(7));
        assert_eq!(s.get(103), Some(7));
        assert_eq!(s.get(104), None);
        assert_eq!(s.first_marked(98, 8), Some((100, 7)));
        s.clear(100, 2);
        assert_eq!(s.get(100), None);
        assert_eq!(s.get(102), Some(7));
        assert_eq!(s.marked_len(), 2);
    }

    #[test]
    fn first_marked_none_when_clean() {
        let s: Shadow<u8> = Shadow::new();
        assert_eq!(s.first_marked(0, 64), None);
    }
}
