//! UndefinedBehaviorSanitizer analog.
//!
//! Scope (paper Table 1): miscellaneous UBs with cheap local checks —
//! signed integer overflow, division by zero, `INT_MIN / -1`, out-of-range
//! shifts, null dereference. UBSan checks the *operation*, so it fires even
//! when the erroneous value never reaches the output (where CompDiff would
//! miss it) — and conversely it cannot see layout- or order-dependent bugs.

use minc_compile::ir::{BinKind, IrType};
use minc_vm::hooks::{Hooks, Loc};
use minc_vm::result::{Fault, SanitizerKind};

/// UBSan-analog hook implementation.
#[derive(Debug, Default)]
pub struct Ubsan;

impl Ubsan {
    /// Fresh instance.
    pub fn new() -> Self {
        Ubsan
    }

    fn fault(category: &str, message: String) -> Option<Fault> {
        Some(Fault::new(SanitizerKind::Ubsan, category, message))
    }
}

impl Hooks for Ubsan {
    fn check_bin(
        &mut self,
        op: BinKind,
        ty: IrType,
        a: u64,
        b: u64,
        ub_signed: bool,
        _loc: Loc,
    ) -> Option<Fault> {
        use BinKind::*;
        let narrow = ty == IrType::I32;
        let (sa, sb) = if narrow {
            (a as u32 as i32 as i64, b as u32 as i32 as i64)
        } else {
            (a as i64, b as i64)
        };
        match op {
            Add | Sub | Mul if ub_signed => {
                let wide = match op {
                    Add => (sa as i128) + (sb as i128),
                    Sub => (sa as i128) - (sb as i128),
                    Mul => (sa as i128) * (sb as i128),
                    _ => unreachable!(),
                };
                let (lo, hi) = if narrow {
                    (i32::MIN as i128, i32::MAX as i128)
                } else {
                    (i64::MIN as i128, i64::MAX as i128)
                };
                if wide < lo || wide > hi {
                    return Self::fault(
                        "signed-integer-overflow",
                        format!("{sa} {op:?} {sb} overflows"),
                    );
                }
                None
            }
            DivS | RemS => {
                if sb == 0 {
                    return Self::fault("integer-divide-by-zero", format!("{sa} / 0"));
                }
                let min = if narrow { i32::MIN as i64 } else { i64::MIN };
                if sa == min && sb == -1 {
                    return Self::fault(
                        "signed-integer-overflow",
                        "division overflow MIN / -1".to_string(),
                    );
                }
                None
            }
            DivU | RemU => {
                let ub_ = if narrow { b as u32 as u64 } else { b };
                if ub_ == 0 {
                    return Self::fault(
                        "integer-divide-by-zero",
                        "unsigned division by zero".into(),
                    );
                }
                None
            }
            Shl | ShrS | ShrU => {
                let width: i64 = if narrow { 32 } else { 64 };
                if sb < 0 || sb >= width {
                    return Self::fault(
                        "shift-out-of-bounds",
                        format!("shift amount {sb} out of range for {width}-bit operand"),
                    );
                }
                if op == Shl && ub_signed && sa >= 0 {
                    // C: shifting into/past the sign bit is UB for signed.
                    let wide = (sa as i128) << sb;
                    let hi = if narrow {
                        i32::MAX as i128
                    } else {
                        i64::MAX as i128
                    };
                    if wide > hi {
                        return Self::fault(
                            "shift-out-of-bounds",
                            format!("{sa} << {sb} overflows signed type"),
                        );
                    }
                }
                None
            }
            _ => None,
        }
    }

    fn check_load(&mut self, addr: u64, _width: u64, _loc: Loc) -> Option<Fault> {
        if addr < 4096 {
            return Self::fault("null-dereference", format!("load from 0x{addr:x}"));
        }
        None
    }

    fn check_store(&mut self, addr: u64, _width: u64, _loc: Loc) -> Option<Fault> {
        if addr < 4096 {
            return Self::fault("null-dereference", format!("store to 0x{addr:x}"));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::run_sanitized;
    use minc_vm::result::{ExitStatus, SanitizerKind};

    fn ubsan_category(src: &str) -> Option<String> {
        match run_sanitized(src, b"", SanitizerKind::Ubsan).status {
            ExitStatus::Sanitizer(f) => Some(f.category),
            _ => None,
        }
    }

    #[test]
    fn detects_signed_overflow() {
        let src = r#"
            int main() {
                int a = 2147483647 - (int)input_size();
                int b = a + 1;
                printf("%d\n", b);
                return 0;
            }
        "#;
        assert_eq!(
            ubsan_category(src).as_deref(),
            Some("signed-integer-overflow")
        );
    }

    #[test]
    fn detects_divide_by_zero() {
        let src = "int main() { int z = (int)input_size(); return 5 / z; }";
        assert_eq!(
            ubsan_category(src).as_deref(),
            Some("integer-divide-by-zero")
        );
    }

    #[test]
    fn detects_oversized_shift() {
        let src = "int main() { int s = 40 + (int)input_size(); return 1 << s; }";
        assert_eq!(ubsan_category(src).as_deref(), Some("shift-out-of-bounds"));
    }

    #[test]
    fn detects_null_dereference() {
        let src = "int main() { int* p = 0; return *p; }";
        assert_eq!(ubsan_category(src).as_deref(), Some("null-dereference"));
    }

    #[test]
    fn unsigned_wrap_is_defined_and_clean() {
        let src = r#"
            int main() {
                unsigned u = 4000000000u;
                printf("%u\n", u + u);
                return 0;
            }
        "#;
        assert_eq!(ubsan_category(src), None);
    }

    #[test]
    fn misses_memory_and_uninit_like_real_ubsan() {
        let uninit = "int main() { int u; printf(\"%d\\n\", u); return 0; }";
        assert_eq!(ubsan_category(uninit), None);
    }
}
