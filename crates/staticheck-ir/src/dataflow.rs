//! A small forward-dataflow framework over the minc-compile CFG.
//!
//! The IR uses *mutable* virtual registers (not SSA), so analyses here are
//! classic iterative dataflow: a worklist drives per-block transfer
//! functions to a fixpoint over block *input* states. Analyses supply the
//! lattice through [`Analysis::join`]; may-analyses join by union,
//! must-analyses by intersection, and numeric domains widen inside `join`
//! so the fixpoint terminates on loops.

use minc_compile::ir::{BlockId, Inst, IrFunction, Terminator};

/// One forward dataflow analysis: the state type plus its transfer and
/// join functions.
pub trait Analysis {
    /// The abstract state attached to each program point.
    type State: Clone;

    /// State on entry to the function (entry block input).
    fn entry_state(&self, f: &IrFunction) -> Self::State;

    /// Applies one instruction's effect to `st`.
    fn transfer_inst(&self, st: &mut Self::State, inst: &Inst, f: &IrFunction);

    /// Applies a terminator's effect (most analyses need nothing here).
    fn transfer_term(&self, _st: &mut Self::State, _term: &Terminator, _f: &IrFunction) {}

    /// Merges `from` into `into` at a control-flow join, returning `true`
    /// iff `into` changed. Must be monotone (and widening where the domain
    /// has infinite ascending chains) or the fixpoint will not terminate.
    fn join(&self, into: &mut Self::State, from: &Self::State) -> bool;
}

/// Fixpoint result: the input state of every block (`None` = unreachable).
pub struct BlockStates<S> {
    /// Input state per block, indexed by `BlockId.0`.
    pub inputs: Vec<Option<S>>,
}

/// Runs `a` to fixpoint over `f` and returns per-block input states.
pub fn fixpoint<A: Analysis>(f: &IrFunction, a: &A) -> BlockStates<A::State> {
    let n = f.blocks.len();
    let mut inputs: Vec<Option<A::State>> = (0..n).map(|_| None).collect();
    if n == 0 {
        return BlockStates { inputs };
    }
    inputs[0] = Some(a.entry_state(f));
    let mut work: Vec<BlockId> = vec![BlockId(0)];
    // Defense in depth against a non-monotone join: every analysis domain
    // here has finite height, but a hard cap keeps the lint total even if
    // a future domain gets widening wrong.
    let mut budget = 256usize.saturating_mul(n.max(1));
    while let Some(b) = work.pop() {
        if budget == 0 {
            break;
        }
        budget -= 1;
        let Some(mut st) = inputs[b.0 as usize].clone() else {
            continue;
        };
        let blk = &f.blocks[b.0 as usize];
        for inst in &blk.insts {
            a.transfer_inst(&mut st, inst, f);
        }
        a.transfer_term(&mut st, &blk.term, f);
        for s in blk.term.successors() {
            let slot = &mut inputs[s.0 as usize];
            let changed = match slot {
                None => {
                    *slot = Some(st.clone());
                    true
                }
                Some(cur) => a.join(cur, &st),
            };
            if changed {
                work.push(s);
            }
        }
    }
    BlockStates { inputs }
}

/// One program point handed to [`scan_with_term`]'s visitor.
pub enum Visit<'a> {
    /// A straight-line instruction.
    Inst(&'a Inst),
    /// A block terminator.
    Term(&'a Terminator),
}

/// Replays the fixpoint over every reachable block, calling `visit` with
/// the state *before* each instruction. This is how detectors turn a
/// fixpoint into findings without duplicating the transfer logic.
pub fn scan<A: Analysis>(
    f: &IrFunction,
    a: &A,
    states: &BlockStates<A::State>,
    mut visit: impl FnMut(&A::State, &Inst),
) {
    scan_with_term(f, a, states, |st, v| {
        if let Visit::Inst(inst) = v {
            visit(st, inst);
        }
    });
}

/// [`scan`], but the visitor also sees the state before each terminator.
pub fn scan_with_term<A: Analysis>(
    f: &IrFunction,
    a: &A,
    states: &BlockStates<A::State>,
    mut visit: impl FnMut(&A::State, Visit),
) {
    scan_with_blocks(f, a, states, |_, st, v| visit(st, v));
}

/// [`scan_with_term`], with the containing block's id handed to the
/// visitor — consumers that need execution certainty (is this point on
/// the unconditional path from entry?) key it off the block.
pub fn scan_with_blocks<A: Analysis>(
    f: &IrFunction,
    a: &A,
    states: &BlockStates<A::State>,
    mut visit: impl FnMut(BlockId, &A::State, Visit),
) {
    for (bi, blk) in f.blocks.iter().enumerate() {
        let Some(input) = &states.inputs[bi] else {
            continue;
        };
        let b = BlockId(bi as u32);
        let mut st = input.clone();
        for inst in &blk.insts {
            visit(b, &st, Visit::Inst(inst));
            a.transfer_inst(&mut st, inst, f);
        }
        visit(b, &st, Visit::Term(&blk.term));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minc_compile::personality::{CompilerImpl, Family, OptLevel};

    /// A trivial may-analysis counting defined registers, to exercise the
    /// worklist on a loopy CFG.
    struct Defined;

    impl Analysis for Defined {
        type State = std::collections::BTreeSet<u32>;

        fn entry_state(&self, f: &IrFunction) -> Self::State {
            (0..f.param_count).collect()
        }

        fn transfer_inst(&self, st: &mut Self::State, inst: &Inst, _f: &IrFunction) {
            if let Some(d) = inst.dst() {
                st.insert(d.0);
            }
        }

        fn join(&self, into: &mut Self::State, from: &Self::State) -> bool {
            let before = into.len();
            into.extend(from.iter().copied());
            into.len() != before
        }
    }

    #[test]
    fn fixpoint_reaches_loop_blocks() {
        let src = r#"
            int main() {
                int i;
                int acc = 0;
                for (i = 0; i < 10; i++) { acc += i; }
                return acc;
            }
        "#;
        let checked = minc::check(src).unwrap();
        let p = CompilerImpl::new(Family::Gcc, OptLevel::O0).personality();
        let ir = minc_compile::lower::lower(&checked, &p);
        let f = &ir.functions[0];
        let states = fixpoint(f, &Defined);
        for b in f.reachable_blocks() {
            assert!(states.inputs[b.0 as usize].is_some(), "{b} unreachable?");
        }
        // The exit block's input knows every register defined on the path.
        let mut seen = 0;
        scan(f, &Defined, &states, |st, _| seen = seen.max(st.len()));
        assert!(seen > 0);
    }

    #[test]
    fn unreachable_blocks_stay_none() {
        let src = "int main() { return 0; int x = 1; return x; }";
        let checked = minc::check(src).unwrap();
        let p = CompilerImpl::new(Family::Gcc, OptLevel::O0).personality();
        let ir = minc_compile::lower::lower(&checked, &p);
        let f = &ir.functions[0];
        let states = fixpoint(f, &Defined);
        let reachable: std::collections::HashSet<u32> =
            f.reachable_blocks().iter().map(|b| b.0).collect();
        for (i, s) in states.inputs.iter().enumerate() {
            assert_eq!(s.is_some(), reachable.contains(&(i as u32)), "block {i}");
        }
    }
}
