//! IR-level detectors for the unstable-code classes the lint reports
//! directly from dataflow (independent of any optimizer's rewrite log).
//!
//! All detectors run on the *reference IR*: an `-O0` lowering with only
//! `mem2reg` applied. That shape makes uninitialized locals explicit as
//! [`ConstVal::Junk`] registers while every register still carries the
//! source line it was allocated for (copy propagation would erase the
//! line-stamped copies).

use crate::dataflow::{fixpoint, scan, scan_with_term, Visit};
use crate::domains::{shift_width, Interval, IntervalAnalysis, JunkAnalysis, NullAnalysis};
use crate::summaries::FnSummaries;
use minc_compile::ir::{
    BinKind, CastKind, ConstVal, Inst, IrFunction, IrProgram, Terminator, ValueId,
};
use staticheck::Defect;
use std::collections::{BTreeSet, HashMap};

/// One IR-level finding, before merging with the provenance channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrFinding {
    /// Function the finding is in.
    pub function: String,
    /// Defect class (shared with the staticheck tools).
    pub defect: Defect,
    /// 1-based source line (0 if the IR carried no attribution).
    pub line: u32,
    /// Human-readable detail.
    pub message: String,
    /// For uninitialized-use findings: the mem2reg junk id observed, used
    /// to corroborate `UninitPromotion` provenance entries.
    pub junk_id: Option<u32>,
}

/// Runs every detector over every function of `prog`, with
/// interprocedural summaries computed callee-first.
pub fn scan_program(prog: &IrProgram) -> Vec<IrFinding> {
    let summaries = FnSummaries::of(prog);
    let mut out = Vec::new();
    for f in &prog.functions {
        scan_function(f, &summaries, &mut out);
    }
    // Deterministic order + per-line dedup (a junk value read five times
    // on one line is one finding).
    out.sort_by(|a, b| {
        (a.line, &a.function, format!("{}", a.defect), &a.message).cmp(&(
            b.line,
            &b.function,
            format!("{}", b.defect),
            &b.message,
        ))
    });
    out.dedup_by(|a, b| a.function == b.function && a.defect == b.defect && a.line == b.line);
    out
}

/// Runs every detector over one function, appending to `out`.
pub fn scan_function(f: &IrFunction, summaries: &FnSummaries, out: &mut Vec<IrFinding>) {
    junk_reads(f, summaries, out);
    oversized_shifts(f, summaries, out);
    block_patterns(f, out);
    null_check_after_deref(f, summaries, out);
}

// ----------------------------------------------------- uninitialized use

/// Flags observable uses of registers that may carry mem2reg junk: call
/// arguments, stored values, branch conditions, and return values.
fn junk_reads(f: &IrFunction, summaries: &FnSummaries, out: &mut Vec<IrFinding>) {
    let a = JunkAnalysis::new(summaries);
    let states = fixpoint(f, &a);
    let report = |line: u32, id: u32, what: &str, out: &mut Vec<IrFinding>| {
        out.push(IrFinding {
            function: f.name.clone(),
            defect: Defect::Uninitialized,
            line,
            message: format!("{what} may observe an uninitialized (indeterminate) value"),
            junk_id: Some(id),
        });
    };
    let mut sink: Vec<(u32, u32, &'static str)> = Vec::new();
    scan_with_term(f, &a, &states, |st, v| match v {
        Visit::Inst(Inst::Call { args, .. }) => {
            for arg in args {
                if let Some(id) = st.get(&arg.0) {
                    sink.push((f.line_of(*arg), *id, "call argument"));
                }
            }
        }
        Visit::Inst(Inst::Store { src, .. }) => {
            if let Some(id) = st.get(&src.0) {
                sink.push((f.line_of(*src), *id, "stored value"));
            }
        }
        Visit::Term(Terminator::Br { cond, .. }) => {
            if let Some(id) = st.get(&cond.0) {
                sink.push((f.line_of(*cond), *id, "branch condition"));
            }
        }
        Visit::Term(Terminator::Ret(Some(v))) => {
            if let Some(id) = st.get(&v.0) {
                sink.push((f.line_of(*v), *id, "returned value"));
            }
        }
        _ => {}
    });
    for (line, id, what) in sink {
        report(line, id, what, out);
    }
}

/// The junk ids whose reads [`junk_reads`] observed anywhere in `prog` —
/// the corroboration set for `UninitPromotion` provenance entries.
pub fn observed_junk_ids(findings: &[IrFinding]) -> BTreeSet<u32> {
    findings.iter().filter_map(|f| f.junk_id).collect()
}

// ----------------------------------------------------------- bad shifts

/// Flags shifts whose amount is provably out of range for the operand
/// width (`>= width` or negative) via interval analysis.
fn oversized_shifts(f: &IrFunction, summaries: &FnSummaries, out: &mut Vec<IrFinding>) {
    let a = IntervalAnalysis::new(summaries);
    let states = fixpoint(f, &a);
    let mut sink: Vec<(u32, i64, Interval)> = Vec::new();
    scan(f, &a, &states, |st, inst| {
        if let Inst::Bin {
            dst,
            ty,
            op: BinKind::Shl | BinKind::ShrS | BinKind::ShrU,
            b,
            ..
        } = inst
        {
            if let Some(amt) = st.get(&b.0) {
                let width = shift_width(*ty);
                if amt.lo >= width || amt.hi < 0 {
                    sink.push((f.line_of(*dst), width, *amt));
                }
            }
        }
    });
    for (line, width, amt) in sink {
        let shown = if amt.lo == amt.hi {
            format!("{}", amt.lo)
        } else {
            format!("[{}, {}]", amt.lo, amt.hi)
        };
        out.push(IrFinding {
            function: f.name.clone(),
            defect: Defect::BadShift,
            line,
            message: format!(
                "shift amount {shown} is out of range for a {width}-bit value; \
                 implementations legally disagree on the result"
            ),
            junk_id: None,
        });
    }
}

// ------------------------------------------- block-local pattern scans

/// Where a pointer value originates, for cross-object compare detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PtrBase {
    Slot(u32),
    Global(u32),
    Str(u32),
}

/// A versioned value origin: `(register, version)`, where a fresh version
/// is minted per non-copy definition.
type OriginId = (u32, u32);

/// Block-local detectors that need value-identity rather than a lattice:
/// the `a + b < a` overflow-check idiom and relational comparison of
/// pointers into different objects. Copies are resolved through an
/// *origin* map (register -> versioned defining value), which makes the
/// scans transparent to the mem2reg `Load`/`Store` -> `Copy` rewrites.
fn block_patterns(f: &IrFunction, out: &mut Vec<IrFinding>) {
    for blk in &f.blocks {
        // Versioned origins: a fresh version per non-copy definition, so
        // register reuse (the IR is not SSA) cannot alias stale values.
        let mut origin: HashMap<u32, OriginId> = HashMap::new();
        let mut next_version = 0u32;
        // Overflow-check candidates: origin of an `ub_signed` Add/Sub ->
        // (is_add, origins of its operands).
        let mut arith: HashMap<OriginId, (bool, OriginId, OriginId)> = HashMap::new();
        let mut bases: HashMap<OriginId, PtrBase> = HashMap::new();

        let origin_of =
            |r: ValueId, origin: &mut HashMap<u32, OriginId>, next_version: &mut u32| {
                *origin.entry(r.0).or_insert_with(|| {
                    *next_version += 1;
                    (r.0, *next_version)
                })
            };
        let fresh = |r: ValueId, origin: &mut HashMap<u32, OriginId>, next_version: &mut u32| {
            *next_version += 1;
            let o = (r.0, *next_version);
            origin.insert(r.0, o);
            o
        };

        for inst in &blk.insts {
            match inst {
                Inst::Copy { dst, src, .. } => {
                    let o = origin_of(*src, &mut origin, &mut next_version);
                    origin.insert(dst.0, o);
                }
                Inst::Const { dst, val, .. } => {
                    let o = fresh(*dst, &mut origin, &mut next_version);
                    match val {
                        ConstVal::GlobalAddr(g, _) => {
                            bases.insert(o, PtrBase::Global(g.0));
                        }
                        ConstVal::StrAddr(s, _) => {
                            bases.insert(o, PtrBase::Str(s.0));
                        }
                        _ => {}
                    }
                }
                Inst::FrameAddr { dst, slot } => {
                    let o = fresh(*dst, &mut origin, &mut next_version);
                    bases.insert(o, PtrBase::Slot(slot.0));
                }
                Inst::Cast {
                    dst,
                    kind: CastKind::SextI32I64 | CastKind::ZextI32I64,
                    a,
                } => {
                    // Width-extending casts preserve pointer identity for
                    // the base-tracking (pointers are I64 already, but be
                    // permissive about re-extended offsets).
                    let oa = origin_of(*a, &mut origin, &mut next_version);
                    let o = fresh(*dst, &mut origin, &mut next_version);
                    if let Some(b) = bases.get(&oa).copied() {
                        bases.insert(o, b);
                    }
                }
                Inst::Bin {
                    dst,
                    op,
                    a,
                    b,
                    ub_signed,
                    ..
                } => {
                    let oa = origin_of(*a, &mut origin, &mut next_version);
                    let ob = origin_of(*b, &mut origin, &mut next_version);
                    use BinKind::*;

                    // (1) `a + b < a` family, mirroring the optimizer's
                    // rewrite precondition exactly.
                    if matches!(op, LtS | LeS | GtS | GeS) {
                        let mut hit = false;
                        if let Some((is_add, xa, xb)) = arith.get(&oa) {
                            // add/sub on the left: cmp(arith(x,y), x); the
                            // sub form only matches its minuend.
                            hit = *xa == ob || (*is_add && *xb == ob);
                        }
                        if !hit {
                            if let Some((is_add, xa, xb)) = arith.get(&ob) {
                                // add on the right: cmp(x, add(x,y)).
                                hit = *is_add && (*xa == oa || *xb == oa);
                            }
                        }
                        if hit {
                            out.push(IrFinding {
                                function: f.name.clone(),
                                defect: Defect::IntegerOverflow,
                                line: f.line_of(*dst),
                                message: "overflow check of the `a + b < a` family relies on \
                                          signed wraparound; optimizers may delete it"
                                    .to_string(),
                                junk_id: None,
                            });
                        }
                    }

                    // (2) relational compare of pointers into different
                    // objects (== and != stay legal).
                    if matches!(op, LtS | LeS | GtS | GeS | LtU | LeU | GtU | GeU) {
                        if let (Some(ba), Some(bb)) = (bases.get(&oa), bases.get(&ob)) {
                            if ba != bb {
                                out.push(IrFinding {
                                    function: f.name.clone(),
                                    defect: Defect::PointerCompare,
                                    line: f.line_of(*dst),
                                    message: "relational comparison of pointers into \
                                              different objects; the result depends on \
                                              implementation-chosen layout"
                                        .to_string(),
                                    junk_id: None,
                                });
                            }
                        }
                    }

                    let o = fresh(*dst, &mut origin, &mut next_version);
                    match (op, ub_signed) {
                        (Add, true) => {
                            arith.insert(o, (true, oa, ob));
                        }
                        (Sub, true) => {
                            arith.insert(o, (false, oa, ob));
                        }
                        (Add | Sub, _) => {
                            // Pointer arithmetic keeps the base object.
                            let base = match (bases.get(&oa), bases.get(&ob)) {
                                (Some(b), None) => Some(*b),
                                (None, Some(b)) if *op == Add => Some(*b),
                                _ => None,
                            };
                            if let Some(b) = base {
                                bases.insert(o, b);
                            }
                        }
                        _ => {}
                    }
                }
                other => {
                    if let Some(d) = other.dst() {
                        fresh(d, &mut origin, &mut next_version);
                    }
                }
            }
        }
    }
}

// --------------------------------------------- null check after deref

/// Flags `p == 0` / `p != 0` tests of a pointer already dereferenced on
/// every path to the test — exactly the checks the optimizer deletes.
fn null_check_after_deref(f: &IrFunction, summaries: &FnSummaries, out: &mut Vec<IrFinding>) {
    let a = NullAnalysis::new(summaries);
    let states = fixpoint(f, &a);
    let mut sink: Vec<u32> = Vec::new();
    scan(f, &a, &states, |st, inst| {
        if let Inst::Bin {
            dst,
            ty: minc_compile::ir::IrType::I64,
            op: BinKind::Eq | BinKind::Ne,
            a,
            b,
            ..
        } = inst
        {
            let null_cmp = |p: ValueId, z: ValueId| {
                st.zeros.contains(&z.0) && st.derefed.contains(&st.root(p.0))
            };
            if null_cmp(*a, *b) || null_cmp(*b, *a) {
                sink.push(f.line_of(*dst));
            }
        }
    });
    for line in sink {
        out.push(IrFinding {
            function: f.name.clone(),
            defect: Defect::NullDeref,
            line,
            message: "null check of a pointer already dereferenced on this path; \
                      optimizers delete the check, `-O0` keeps it"
                .to_string(),
            junk_id: None,
        });
    }
}
