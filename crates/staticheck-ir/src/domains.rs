//! Abstract domains for the IR lint.
//!
//! Three domains cover the unstable-code classes the lint reports
//! directly:
//!
//! * [`JunkAnalysis`] — which registers *may* carry an indeterminate
//!   ([`ConstVal::Junk`]) value, tagged with the mem2reg junk id so a
//!   finding can be correlated with the promotion that introduced it;
//! * [`NullAnalysis`] — which registers have been dereferenced on *every*
//!   path (the null-check-after-deref precondition);
//! * [`IntervalAnalysis`] — value intervals with widening, used to prove
//!   shift amounts out of range for the operand width.
//!
//! Every domain carries a [`FnSummaries`] reference: `Call` transfer
//! functions consult the callee's summary instead of blindly killing the
//! destination, which is what makes the lint interprocedural. Passing
//! [`FnSummaries::empty`] reproduces the old intraprocedural behaviour.

use crate::dataflow::Analysis;
use crate::summaries::{FnSummaries, PARAM_JUNK_BASE};
use minc_compile::ir::{Callee, ConstVal, Inst, IrFunction, IrType};
use std::collections::{BTreeMap, BTreeSet};

// ------------------------------------------------------------------- junk

/// May-analysis: registers possibly holding mem2reg junk (an uninitialized
/// promoted local, or a value computed from one).
pub struct JunkAnalysis<'a> {
    /// Callee summaries for junk flow through calls.
    pub summaries: &'a FnSummaries,
    /// Seed each parameter register with its sentinel junk id
    /// ([`PARAM_JUNK_BASE`]` + i`) — the summary-computation mode that
    /// discovers parameter-to-return flow. Detector scans leave this off.
    pub seed_params: bool,
}

impl<'a> JunkAnalysis<'a> {
    /// Detector-mode analysis (no parameter seeding).
    pub fn new(summaries: &'a FnSummaries) -> Self {
        JunkAnalysis {
            summaries,
            seed_params: false,
        }
    }
}

/// State for [`JunkAnalysis`]: register -> junk id it may carry.
pub type JunkState = BTreeMap<u32, u32>;

impl Analysis for JunkAnalysis<'_> {
    type State = JunkState;

    fn entry_state(&self, f: &IrFunction) -> JunkState {
        let mut st = JunkState::new();
        if self.seed_params {
            for p in 0..f.param_count {
                st.insert(p, PARAM_JUNK_BASE + p);
            }
        }
        st
    }

    fn transfer_inst(&self, st: &mut JunkState, inst: &Inst, _f: &IrFunction) {
        match inst {
            Inst::Const {
                dst,
                val: ConstVal::Junk(id),
                ..
            } => {
                st.insert(dst.0, *id);
            }
            Inst::Copy { dst, src, .. } => match st.get(&src.0).copied() {
                Some(id) => {
                    st.insert(dst.0, id);
                }
                None => {
                    st.remove(&dst.0);
                }
            },
            // Junk is poison: arithmetic on an indeterminate value yields
            // an indeterminate value (the MSan shadow-propagation rule).
            Inst::Bin { .. } | Inst::Un { .. } | Inst::Cast { .. } => {
                let tainted = inst.uses().iter().find_map(|u| st.get(&u.0).copied());
                let dst = inst.dst().expect("bin/un/cast produce a value");
                match tainted {
                    Some(id) => {
                        st.insert(dst.0, id);
                    }
                    None => {
                        st.remove(&dst.0);
                    }
                }
            }
            // Calls: the callee summary says whether junk comes back —
            // either junk the callee manufactures itself or junk passed
            // in through an argument that flows to the return value.
            Inst::Call {
                dst,
                callee: Callee::Func(fid),
                args,
                ..
            } => {
                let flow = self.summaries.get(*fid).and_then(|s| {
                    let own = s.returns_junk;
                    let via_args = args
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| s.param_junk_to_ret.get(*i).copied().unwrap_or(false))
                        .filter_map(|(_, a)| st.get(&a.0).copied())
                        .min();
                    match (own, via_args) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    }
                });
                if let Some(d) = dst {
                    match flow {
                        Some(id) => {
                            st.insert(d.0, id);
                        }
                        None => {
                            st.remove(&d.0);
                        }
                    }
                }
            }
            // Memory and builtin-call results are treated as clean: the
            // lint only chases register junk introduced by promotion.
            _ => {
                if let Some(dst) = inst.dst() {
                    st.remove(&dst.0);
                }
            }
        }
    }

    fn join(&self, into: &mut JunkState, from: &JunkState) -> bool {
        let mut changed = false;
        for (r, id) in from {
            match into.get(r) {
                // Two different junk sources meeting: keep the smaller id
                // deterministically; either attribution is valid evidence.
                Some(cur) if cur <= id => {}
                _ => {
                    into.insert(*r, *id);
                    changed = true;
                }
            }
        }
        changed
    }
}

// ------------------------------------------------------------------- null

/// Must-analysis: registers known dereferenced on every path, plus the
/// copy-alias and known-zero facts needed to recognize `p == 0` checks.
#[derive(Clone, Default, PartialEq)]
pub struct NullState {
    /// Roots dereferenced on all paths to this point.
    pub derefed: BTreeSet<u32>,
    /// Copy aliases: register -> the root register it currently mirrors.
    pub alias: BTreeMap<u32, u32>,
    /// Registers currently holding the constant 0 (a null literal).
    pub zeros: BTreeSet<u32>,
    /// Pointer-arithmetic derivations: register -> the root register its
    /// value offsets (`q = p + k`). A dereference of `q` implies `p` is
    /// non-null too (a null base plus an offset is already UB), which is
    /// what lets `p[i]`-style accesses feed the check-after-deref facts.
    pub derived: BTreeMap<u32, u32>,
}

impl NullState {
    /// Resolves a register through the copy-alias map.
    pub fn root(&self, r: u32) -> u32 {
        self.alias.get(&r).copied().unwrap_or(r)
    }

    /// Resolves a register to the pointer base it was derived from:
    /// through copies, then through pointer-arithmetic offsets, then
    /// through copies again (one offset level is all the lowerer emits
    /// per subscript, but chase a short chain to be safe).
    pub fn base(&self, r: u32) -> u32 {
        *self.deref_chain(r).last().expect("chain starts at root(r)")
    }

    /// Every root along the derivation chain from `r` down to its base.
    /// Dereferencing `r` proves *all* of them non-null: a null base plus
    /// an offset is already UB, so `p` is covered by a `p[i]` access even
    /// though the loaded address is the derived `p + i*size` temporary.
    pub fn deref_chain(&self, r: u32) -> Vec<u32> {
        let mut cur = self.root(r);
        let mut chain = vec![cur];
        for _ in 0..8 {
            match self.derived.get(&cur) {
                Some(&b) => {
                    cur = self.root(b);
                    chain.push(cur);
                }
                None => break,
            }
        }
        chain
    }
}

/// Must-derefed analysis backing the null-check-after-deref detector.
pub struct NullAnalysis<'a> {
    /// Callee summaries: arguments passed to a parameter the callee
    /// dereferences on every path become derefed facts at the call site.
    pub summaries: &'a FnSummaries,
}

impl<'a> NullAnalysis<'a> {
    /// Analysis over the given summaries.
    pub fn new(summaries: &'a FnSummaries) -> Self {
        NullAnalysis { summaries }
    }
}

impl Analysis for NullAnalysis<'_> {
    type State = NullState;

    fn entry_state(&self, _f: &IrFunction) -> NullState {
        NullState::default()
    }

    fn transfer_inst(&self, st: &mut NullState, inst: &Inst, _f: &IrFunction) {
        // Any (re)definition invalidates old facts about the register.
        let kill = |st: &mut NullState, d: u32| {
            st.derefed.remove(&d);
            st.alias.remove(&d);
            st.zeros.remove(&d);
            st.derived.remove(&d);
        };
        match inst {
            Inst::Copy { dst, src, .. } => {
                let root = st.root(src.0);
                let src_zero = st.zeros.contains(&src.0);
                kill(st, dst.0);
                st.alias.insert(dst.0, root);
                if src_zero {
                    st.zeros.insert(dst.0);
                }
            }
            Inst::Const { dst, val, .. } => {
                kill(st, dst.0);
                if matches!(val, ConstVal::I64(0) | ConstVal::I32(0)) {
                    st.zeros.insert(dst.0);
                }
            }
            // A null literal reaches pointer width through a widening
            // cast (`p == 0` lowers the 0 as I32 + sext); zero survives.
            Inst::Cast {
                dst,
                kind:
                    minc_compile::ir::CastKind::SextI32I64 | minc_compile::ir::CastKind::ZextI32I64,
                a,
            } => {
                let src_zero = st.zeros.contains(&a.0);
                kill(st, dst.0);
                if src_zero {
                    st.zeros.insert(dst.0);
                }
            }
            Inst::Load { dst, addr, .. } => {
                let chain = st.deref_chain(addr.0);
                kill(st, dst.0);
                st.derefed.extend(chain);
            }
            Inst::Store { addr, .. } => {
                let chain = st.deref_chain(addr.0);
                st.derefed.extend(chain);
            }
            // Pointer arithmetic (`p + k`, `p - k`, the lowering of
            // subscripts and pointer `++`/`--`): remember the base so a
            // later dereference of the derived value marks the base.
            Inst::Bin {
                dst,
                ty: IrType::I64,
                op: minc_compile::ir::BinKind::Add | minc_compile::ir::BinKind::Sub,
                a,
                ..
            } => {
                let base = st.root(a.0);
                kill(st, dst.0);
                if base != dst.0 {
                    st.derived.insert(dst.0, base);
                }
            }
            Inst::Call {
                dst,
                callee: Callee::Func(fid),
                args,
                ..
            } => {
                // The callee dereferences some parameters on every path;
                // the matching arguments are therefore derefed here too.
                let mut new_facts: Vec<u32> = Vec::new();
                if let Some(s) = self.summaries.get(*fid) {
                    for (i, arg) in args.iter().enumerate() {
                        if s.derefs_param.get(i).copied().unwrap_or(false) {
                            new_facts.push(st.base(arg.0));
                        }
                    }
                }
                if let Some(d) = dst {
                    kill(st, d.0);
                }
                st.derefed.extend(new_facts);
            }
            other => {
                if let Some(d) = other.dst() {
                    kill(st, d.0);
                }
            }
        }
    }

    fn join(&self, into: &mut NullState, from: &NullState) -> bool {
        let before = (
            into.derefed.len(),
            into.alias.len(),
            into.zeros.len(),
            into.derived.len(),
        );
        into.derefed.retain(|r| from.derefed.contains(r));
        into.alias.retain(|r, root| from.alias.get(r) == Some(root));
        into.zeros.retain(|r| from.zeros.contains(r));
        into.derived.retain(|r, b| from.derived.get(r) == Some(b));
        (
            into.derefed.len(),
            into.alias.len(),
            into.zeros.len(),
            into.derived.len(),
        ) != before
    }
}

// -------------------------------------------------------------- intervals

/// A closed integer interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Interval {
    /// The single-point interval `[v, v]`.
    pub fn point(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// True if `v` lies inside the interval.
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }
}

/// State for [`IntervalAnalysis`]: register -> interval. Absent = unknown.
pub type IntervalState = BTreeMap<u32, Interval>;

/// Interval analysis with widening at joins; precise enough to prove a
/// shift amount constant (or constant-derived) and out of range.
pub struct IntervalAnalysis<'a> {
    /// Callee summaries: a call to a function with a provable return
    /// interval gives the destination that interval.
    pub summaries: &'a FnSummaries,
}

impl<'a> IntervalAnalysis<'a> {
    /// Analysis over the given summaries.
    pub fn new(summaries: &'a FnSummaries) -> Self {
        IntervalAnalysis { summaries }
    }
}

impl Analysis for IntervalAnalysis<'_> {
    type State = IntervalState;

    fn entry_state(&self, _f: &IrFunction) -> IntervalState {
        IntervalState::new()
    }

    fn transfer_inst(&self, st: &mut IntervalState, inst: &Inst, _f: &IrFunction) {
        use minc_compile::ir::BinKind::*;
        let get = |st: &IntervalState, v: u32| st.get(&v).copied();
        match inst {
            Inst::Const { dst, val, .. } => {
                match val {
                    ConstVal::I32(v) => {
                        st.insert(dst.0, Interval::point(*v as i64));
                    }
                    ConstVal::I64(v) => {
                        st.insert(dst.0, Interval::point(*v));
                    }
                    _ => {
                        st.remove(&dst.0);
                    }
                };
            }
            Inst::Copy { dst, src, .. } => match get(st, src.0) {
                Some(i) => {
                    st.insert(dst.0, i);
                }
                None => {
                    st.remove(&dst.0);
                }
            },
            Inst::Bin { dst, op, a, b, .. } => {
                let out = match (op, get(st, a.0), get(st, b.0)) {
                    (Add, Some(x), Some(y)) => {
                        x.lo.checked_add(y.lo)
                            .zip(x.hi.checked_add(y.hi))
                            .map(|(lo, hi)| Interval { lo, hi })
                    }
                    (Sub, Some(x), Some(y)) => {
                        x.lo.checked_sub(y.hi)
                            .zip(x.hi.checked_sub(y.lo))
                            .map(|(lo, hi)| Interval { lo, hi })
                    }
                    (Mul, Some(x), Some(y)) => {
                        // Hull of the four corner products (any corner may
                        // be extremal once signs mix).
                        let corners = [
                            x.lo.checked_mul(y.lo),
                            x.lo.checked_mul(y.hi),
                            x.hi.checked_mul(y.lo),
                            x.hi.checked_mul(y.hi),
                        ];
                        corners
                            .iter()
                            .copied()
                            .try_fold((i64::MAX, i64::MIN), |(lo, hi), c| {
                                c.map(|c| (lo.min(c), hi.max(c)))
                            })
                            .map(|(lo, hi)| Interval { lo, hi })
                    }
                    (And, _, Some(y)) if y.lo == y.hi && y.lo >= 0 => {
                        // `x & mask` with a non-negative constant mask.
                        Some(Interval { lo: 0, hi: y.lo })
                    }
                    (op, _, _) if op.is_comparison() => Some(Interval { lo: 0, hi: 1 }),
                    _ => None,
                };
                match out {
                    Some(i) => {
                        st.insert(dst.0, i);
                    }
                    None => {
                        st.remove(&dst.0);
                    }
                }
            }
            Inst::Un { dst, op, a, .. } => {
                use minc_compile::ir::UnKind;
                let out = match (op, get(st, a.0)) {
                    (UnKind::Neg, Some(i)) => {
                        i.hi.checked_neg()
                            .zip(i.lo.checked_neg())
                            .map(|(lo, hi)| Interval { lo, hi })
                    }
                    _ => None,
                };
                match out {
                    Some(i) => {
                        st.insert(dst.0, i);
                    }
                    None => {
                        st.remove(&dst.0);
                    }
                }
            }
            Inst::Cast { dst, kind, a } => {
                use minc_compile::ir::CastKind::*;
                let out = match (kind, get(st, a.0)) {
                    (SextI32I64 | ZextI32I64 | SI32F64 | SI64F64, Some(i)) => Some(i),
                    (TruncI64I32, Some(i))
                        if i.lo >= i32::MIN as i64 && i.hi <= i32::MAX as i64 =>
                    {
                        Some(i)
                    }
                    _ => None,
                };
                match out {
                    Some(i) => {
                        st.insert(dst.0, i);
                    }
                    None => {
                        st.remove(&dst.0);
                    }
                }
            }
            Inst::Call {
                dst,
                callee: Callee::Func(fid),
                ..
            } => {
                if let Some(d) = dst {
                    match self.summaries.get(*fid).and_then(|s| s.ret_interval) {
                        Some(i) => {
                            st.insert(d.0, i);
                        }
                        None => {
                            st.remove(&d.0);
                        }
                    }
                }
            }
            other => {
                if let Some(d) = other.dst() {
                    st.remove(&d.0);
                }
            }
        }
    }

    fn join(&self, into: &mut IntervalState, from: &IntervalState) -> bool {
        let mut changed = false;
        let keys: Vec<u32> = into.keys().copied().collect();
        for k in keys {
            match from.get(&k) {
                None => {
                    into.remove(&k);
                    changed = true;
                }
                Some(f) => {
                    let i = into.get_mut(&k).expect("key just listed");
                    // Widen any growing bound straight to +-inf so loops
                    // converge in one extra iteration.
                    if f.lo < i.lo {
                        i.lo = i64::MIN;
                        changed = true;
                    }
                    if f.hi > i.hi {
                        i.hi = i64::MAX;
                        changed = true;
                    }
                }
            }
        }
        changed
    }
}

/// Bit width of an IR type for shift-range checking.
pub fn shift_width(ty: IrType) -> i64 {
    match ty {
        IrType::I32 => 32,
        IrType::I64 => 64,
        IrType::F64 => 64,
    }
}
