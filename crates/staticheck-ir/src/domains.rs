//! Abstract domains for the IR lint.
//!
//! Three domains cover the unstable-code classes the lint reports
//! directly:
//!
//! * [`JunkAnalysis`] — which registers *may* carry an indeterminate
//!   ([`ConstVal::Junk`]) value, tagged with the mem2reg junk id so a
//!   finding can be correlated with the promotion that introduced it;
//! * [`NullAnalysis`] — which registers have been dereferenced on *every*
//!   path (the null-check-after-deref precondition);
//! * [`IntervalAnalysis`] — value intervals with widening, used to prove
//!   shift amounts out of range for the operand width.

use crate::dataflow::Analysis;
use minc_compile::ir::{ConstVal, Inst, IrFunction, IrType};
use std::collections::{BTreeMap, BTreeSet};

// ------------------------------------------------------------------- junk

/// May-analysis: registers possibly holding mem2reg junk (an uninitialized
/// promoted local, or a value computed from one).
pub struct JunkAnalysis;

/// State for [`JunkAnalysis`]: register -> junk id it may carry.
pub type JunkState = BTreeMap<u32, u32>;

impl Analysis for JunkAnalysis {
    type State = JunkState;

    fn entry_state(&self, _f: &IrFunction) -> JunkState {
        JunkState::new()
    }

    fn transfer_inst(&self, st: &mut JunkState, inst: &Inst, _f: &IrFunction) {
        match inst {
            Inst::Const {
                dst,
                val: ConstVal::Junk(id),
                ..
            } => {
                st.insert(dst.0, *id);
            }
            Inst::Copy { dst, src, .. } => match st.get(&src.0).copied() {
                Some(id) => {
                    st.insert(dst.0, id);
                }
                None => {
                    st.remove(&dst.0);
                }
            },
            // Junk is poison: arithmetic on an indeterminate value yields
            // an indeterminate value (the MSan shadow-propagation rule).
            Inst::Bin { .. } | Inst::Un { .. } | Inst::Cast { .. } => {
                let tainted = inst.uses().iter().find_map(|u| st.get(&u.0).copied());
                let dst = inst.dst().expect("bin/un/cast produce a value");
                match tainted {
                    Some(id) => {
                        st.insert(dst.0, id);
                    }
                    None => {
                        st.remove(&dst.0);
                    }
                }
            }
            // Memory and call results are treated as clean: the lint only
            // chases register junk introduced by promotion.
            _ => {
                if let Some(dst) = inst.dst() {
                    st.remove(&dst.0);
                }
            }
        }
    }

    fn join(&self, into: &mut JunkState, from: &JunkState) -> bool {
        let mut changed = false;
        for (r, id) in from {
            match into.get(r) {
                // Two different junk sources meeting: keep the smaller id
                // deterministically; either attribution is valid evidence.
                Some(cur) if cur <= id => {}
                _ => {
                    into.insert(*r, *id);
                    changed = true;
                }
            }
        }
        changed
    }
}

// ------------------------------------------------------------------- null

/// Must-analysis: registers known dereferenced on every path, plus the
/// copy-alias and known-zero facts needed to recognize `p == 0` checks.
#[derive(Clone, Default, PartialEq)]
pub struct NullState {
    /// Roots dereferenced on all paths to this point.
    pub derefed: BTreeSet<u32>,
    /// Copy aliases: register -> the root register it currently mirrors.
    pub alias: BTreeMap<u32, u32>,
    /// Registers currently holding the constant 0 (a null literal).
    pub zeros: BTreeSet<u32>,
}

impl NullState {
    /// Resolves a register through the copy-alias map.
    pub fn root(&self, r: u32) -> u32 {
        self.alias.get(&r).copied().unwrap_or(r)
    }
}

/// Must-derefed analysis backing the null-check-after-deref detector.
pub struct NullAnalysis;

impl Analysis for NullAnalysis {
    type State = NullState;

    fn entry_state(&self, _f: &IrFunction) -> NullState {
        NullState::default()
    }

    fn transfer_inst(&self, st: &mut NullState, inst: &Inst, _f: &IrFunction) {
        // Any (re)definition invalidates old facts about the register.
        let kill = |st: &mut NullState, d: u32| {
            st.derefed.remove(&d);
            st.alias.remove(&d);
            st.zeros.remove(&d);
        };
        match inst {
            Inst::Copy { dst, src, .. } => {
                let root = st.root(src.0);
                let src_zero = st.zeros.contains(&src.0);
                kill(st, dst.0);
                st.alias.insert(dst.0, root);
                if src_zero {
                    st.zeros.insert(dst.0);
                }
            }
            Inst::Const { dst, val, .. } => {
                kill(st, dst.0);
                if matches!(val, ConstVal::I64(0) | ConstVal::I32(0)) {
                    st.zeros.insert(dst.0);
                }
            }
            Inst::Load { dst, addr, .. } => {
                let a = st.root(addr.0);
                kill(st, dst.0);
                st.derefed.insert(a);
            }
            Inst::Store { addr, .. } => {
                let a = st.root(addr.0);
                st.derefed.insert(a);
            }
            other => {
                if let Some(d) = other.dst() {
                    kill(st, d.0);
                }
            }
        }
    }

    fn join(&self, into: &mut NullState, from: &NullState) -> bool {
        let before = (into.derefed.len(), into.alias.len(), into.zeros.len());
        into.derefed.retain(|r| from.derefed.contains(r));
        into.alias.retain(|r, root| from.alias.get(r) == Some(root));
        into.zeros.retain(|r| from.zeros.contains(r));
        (into.derefed.len(), into.alias.len(), into.zeros.len()) != before
    }
}

// -------------------------------------------------------------- intervals

/// A closed integer interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Interval {
    /// The single-point interval `[v, v]`.
    pub fn point(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }
}

/// State for [`IntervalAnalysis`]: register -> interval. Absent = unknown.
pub type IntervalState = BTreeMap<u32, Interval>;

/// Interval analysis with widening at joins; precise enough to prove a
/// shift amount constant (or constant-derived) and out of range.
pub struct IntervalAnalysis;

impl Analysis for IntervalAnalysis {
    type State = IntervalState;

    fn entry_state(&self, _f: &IrFunction) -> IntervalState {
        IntervalState::new()
    }

    fn transfer_inst(&self, st: &mut IntervalState, inst: &Inst, _f: &IrFunction) {
        use minc_compile::ir::BinKind::*;
        let get = |st: &IntervalState, v: u32| st.get(&v).copied();
        match inst {
            Inst::Const { dst, val, .. } => {
                match val {
                    ConstVal::I32(v) => {
                        st.insert(dst.0, Interval::point(*v as i64));
                    }
                    ConstVal::I64(v) => {
                        st.insert(dst.0, Interval::point(*v));
                    }
                    _ => {
                        st.remove(&dst.0);
                    }
                };
            }
            Inst::Copy { dst, src, .. } => match get(st, src.0) {
                Some(i) => {
                    st.insert(dst.0, i);
                }
                None => {
                    st.remove(&dst.0);
                }
            },
            Inst::Bin { dst, op, a, b, .. } => {
                let out = match (op, get(st, a.0), get(st, b.0)) {
                    (Add, Some(x), Some(y)) => {
                        x.lo.checked_add(y.lo)
                            .zip(x.hi.checked_add(y.hi))
                            .map(|(lo, hi)| Interval { lo, hi })
                    }
                    (Sub, Some(x), Some(y)) => {
                        x.lo.checked_sub(y.hi)
                            .zip(x.hi.checked_sub(y.lo))
                            .map(|(lo, hi)| Interval { lo, hi })
                    }
                    (And, _, Some(y)) if y.lo == y.hi && y.lo >= 0 => {
                        // `x & mask` with a non-negative constant mask.
                        Some(Interval { lo: 0, hi: y.lo })
                    }
                    (op, _, _) if op.is_comparison() => Some(Interval { lo: 0, hi: 1 }),
                    _ => None,
                };
                match out {
                    Some(i) => {
                        st.insert(dst.0, i);
                    }
                    None => {
                        st.remove(&dst.0);
                    }
                }
            }
            Inst::Cast { dst, kind, a } => {
                use minc_compile::ir::CastKind::*;
                let out = match (kind, get(st, a.0)) {
                    (SextI32I64 | ZextI32I64 | SI32F64 | SI64F64, Some(i)) => Some(i),
                    (TruncI64I32, Some(i))
                        if i.lo >= i32::MIN as i64 && i.hi <= i32::MAX as i64 =>
                    {
                        Some(i)
                    }
                    _ => None,
                };
                match out {
                    Some(i) => {
                        st.insert(dst.0, i);
                    }
                    None => {
                        st.remove(&dst.0);
                    }
                }
            }
            other => {
                if let Some(d) = other.dst() {
                    st.remove(&d.0);
                }
            }
        }
    }

    fn join(&self, into: &mut IntervalState, from: &IntervalState) -> bool {
        let mut changed = false;
        let keys: Vec<u32> = into.keys().copied().collect();
        for k in keys {
            match from.get(&k) {
                None => {
                    into.remove(&k);
                    changed = true;
                }
                Some(f) => {
                    let i = into.get_mut(&k).expect("key just listed");
                    // Widen any growing bound straight to +-inf so loops
                    // converge in one extra iteration.
                    if f.lo < i.lo {
                        i.lo = i64::MIN;
                        changed = true;
                    }
                    if f.hi > i.hi {
                        i.hi = i64::MAX;
                        changed = true;
                    }
                }
            }
        }
        changed
    }
}

/// Bit width of an IR type for shift-range checking.
pub fn shift_width(ty: IrType) -> i64 {
    match ty {
        IrType::I32 => 32,
        IrType::I64 => 64,
        IrType::F64 => 64,
    }
}
