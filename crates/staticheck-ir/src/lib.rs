//! # staticheck-ir — the CompDiff unstable-code lint
//!
//! The paper's core observation is that optimizing compilers *know* when
//! they exploit undefined behaviour — they just don't tell anyone. This
//! crate turns that knowledge into a fourth static tool next to the
//! coverity/cppcheck/infer analogs, by merging two evidence channels:
//!
//! 1. **Direct IR dataflow** over a reference IR (`-O0` lowering plus
//!    `mem2reg`): uninitialized promoted-slot reads, provably oversized
//!    shifts, `a + b < a` overflow-check idioms, null checks after a
//!    dereference, and relational compares of pointers into different
//!    objects (see [`detectors`]).
//! 2. **Rewrite provenance**: every implementation's optimization
//!    pipeline is run with a [`minc_compile::RewriteLog`] attached; each
//!    UB-justified rewrite names the instruction, the justification, and
//!    the source line it came from. `UninitPromotion` entries are only
//!    surfaced when the dataflow channel saw the same junk value reach an
//!    observable use — a promotion alone is not evidence of a bug.
//!
//! Findings from the two channels are deduplicated by `(line, defect)`,
//! so one source bug is one finding no matter how many implementations
//! rewrote it.
//!
//! ```
//! let src = r#"
//!     int main() {
//!         int a = getchar();
//!         int b = getchar();
//!         int s = a + b;
//!         if (s < a) { printf("overflow\n"); return 1; }
//!         printf("%d\n", s);
//!         return 0;
//!     }
//! "#;
//! let findings = staticheck_ir::UnstableLint::new().run_source(src).unwrap();
//! assert!(findings
//!     .iter()
//!     .any(|f| f.finding.defect == staticheck::Defect::IntegerOverflow));
//! ```

#![warn(missing_docs)]
pub mod dataflow;
pub mod detectors;
pub mod domains;
pub mod summaries;
pub mod ubmap;

pub use detectors::IrFinding;
pub use summaries::{FnSummaries, FnSummary};
pub use ubmap::{Certainty, UbClass, UbSite, UbSiteMap};

use minc::{CheckedProgram, FrontendError, Span};
use minc_compile::personality::{CompilerImpl, Family, OptLevel, PassKind};
use minc_compile::{optimize_logged, RewriteEntry, UbReason};
use staticheck::{Defect, Finding, Tool};
use std::collections::BTreeMap;

/// Which evidence channel(s) produced a lint finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// Direct IR dataflow on the reference IR.
    Dataflow,
    /// An optimizer's rewrite-provenance log.
    Provenance,
    /// Both channels agreed on the line and defect.
    Both,
}

impl std::fmt::Display for Origin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Origin::Dataflow => "dataflow",
            Origin::Provenance => "provenance",
            Origin::Both => "dataflow+provenance",
        })
    }
}

/// One merged lint finding.
#[derive(Debug, Clone)]
pub struct LintFinding {
    /// The finding, attributed to [`Tool::CompdiffLint`].
    pub finding: Finding,
    /// Which channel(s) contributed.
    pub origin: Origin,
    /// Implementations whose rewrite logs contributed evidence (sorted,
    /// empty for dataflow-only findings).
    pub impls: Vec<String>,
}

/// The unstable-code lint: configure which implementations feed the
/// provenance channel, then [`run`](UnstableLint::run).
#[derive(Debug, Clone)]
pub struct UnstableLint {
    /// Implementations whose pipelines feed the provenance channel.
    pub impls: Vec<CompilerImpl>,
}

impl Default for UnstableLint {
    fn default() -> Self {
        Self::new()
    }
}

impl UnstableLint {
    /// A lint over the paper's default ten implementations (`-O0`
    /// pipelines are empty, so they contribute nothing but cost nothing).
    pub fn new() -> Self {
        UnstableLint {
            impls: CompilerImpl::default_set(),
        }
    }

    /// Lints a checked program, returning findings sorted by
    /// `(line, defect, message)`.
    pub fn run(&self, checked: &CheckedProgram) -> Vec<LintFinding> {
        // Channel 1: dataflow over the reference IR (`-O0` + mem2reg; no
        // copy propagation, so registers keep their source lines).
        let p0 = CompilerImpl::new(Family::Gcc, OptLevel::O0).personality();
        let mut reference = minc_compile::lower::lower(checked, &p0);
        minc_compile::passes::run_pass(&mut reference, PassKind::Mem2Reg, &p0);
        let direct = detectors::scan_program(&reference);
        let junk_seen = detectors::observed_junk_ids(&direct);

        // Channel 2: rewrite provenance from every implementation.
        let mut entries: Vec<RewriteEntry> = Vec::new();
        for id in &self.impls {
            let (_, log) = optimize_logged(checked, *id);
            entries.extend(log.entries);
        }
        entries.retain(|e| match e.reason {
            // A promotion is only a bug if the junk value is observably
            // *read*; the dataflow channel supplies that corroboration.
            UbReason::UninitPromotion => junk_seen.contains(&e.key),
            _ => true,
        });

        // Merge, deduplicating by (line, defect).
        #[derive(Default)]
        struct Slot {
            message: String,
            origin: Option<Origin>,
            impls: Vec<String>,
        }
        let mut merged: BTreeMap<(u32, String), Slot> = BTreeMap::new();
        for d in &direct {
            let slot = merged.entry((d.line, d.defect.to_string())).or_default();
            slot.message = d.message.clone();
            slot.origin = Some(Origin::Dataflow);
        }
        for e in &entries {
            let defect = provenance_defect(e.reason);
            let slot = merged.entry((e.line, defect.to_string())).or_default();
            match slot.origin {
                Some(Origin::Dataflow) | Some(Origin::Both) => slot.origin = Some(Origin::Both),
                _ => {
                    slot.origin = Some(Origin::Provenance);
                    slot.message = e.detail.clone();
                }
            }
            let name = e.impl_id.to_string();
            if !slot.impls.contains(&name) {
                slot.impls.push(name);
            }
        }

        let defect_by_name: BTreeMap<String, Defect> =
            all_defects().iter().map(|d| (d.to_string(), *d)).collect();
        merged
            .into_iter()
            .map(|((line, defect_name), mut slot)| {
                slot.impls.sort();
                LintFinding {
                    finding: Finding::new(
                        Tool::CompdiffLint,
                        defect_by_name[&defect_name],
                        Span::new(0, 0, line),
                        slot.message,
                    ),
                    origin: slot.origin.unwrap_or(Origin::Dataflow),
                    impls: slot.impls,
                }
            })
            .collect()
    }

    /// Parses, checks, and lints source.
    ///
    /// # Errors
    ///
    /// Returns the frontend error if the source does not parse or check.
    pub fn run_source(&self, src: &str) -> Result<Vec<LintFinding>, FrontendError> {
        let checked = minc::check(src)?;
        Ok(self.run(&checked))
    }
}

/// Maps a rewrite justification to the shared defect taxonomy.
pub fn provenance_defect(reason: UbReason) -> Defect {
    match reason {
        UbReason::SignedOverflowCheck => Defect::IntegerOverflow,
        UbReason::NullCheckAfterDeref => Defect::NullDeref,
        UbReason::OversizedShift => Defect::BadShift,
        UbReason::UninitPromotion => Defect::Uninitialized,
        UbReason::UnrollTripCount => Defect::MiscompiledLoop,
    }
}

fn all_defects() -> &'static [Defect] {
    &[
        Defect::OutOfBounds,
        Defect::Uninitialized,
        Defect::DivByZero,
        Defect::IntegerOverflow,
        Defect::UseAfterFree,
        Defect::DoubleFree,
        Defect::BadFree,
        Defect::NullDeref,
        Defect::BadApiUsage,
        Defect::FormatMismatch,
        Defect::PointerCompare,
        Defect::PointerSubtraction,
        Defect::BadShift,
        Defect::MissingReturn,
        Defect::MiscompiledLoop,
    ]
}

/// Renders findings one per line, deterministically — the shape both the
/// CLI and the CI determinism gate rely on.
pub fn render(findings: &[LintFinding]) -> String {
    let mut s = String::new();
    for f in findings {
        s.push_str(&format!(
            "line {:>4}: [{}] {} ({}",
            f.finding.span.line, f.finding.defect, f.finding.message, f.origin
        ));
        if !f.impls.is_empty() {
            s.push_str(&format!("; {}", f.impls.join(",")));
        }
        s.push_str(")\n");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<LintFinding> {
        UnstableLint::new().run_source(src).unwrap()
    }

    fn has(findings: &[LintFinding], defect: Defect) -> bool {
        findings.iter().any(|f| f.finding.defect == defect)
    }

    #[test]
    fn uninit_read_found_by_both_channels() {
        let f = lint("int main() { int u; printf(\"%d\\n\", u); return 0; }");
        let u = f
            .iter()
            .find(|f| f.finding.defect == Defect::Uninitialized)
            .expect("uninit finding");
        assert_eq!(u.origin, Origin::Both, "{:?}", f);
        // Nine optimizing implementations promote the slot.
        assert!(!u.impls.is_empty());
    }

    #[test]
    fn initialized_local_is_clean() {
        let f = lint("int main() { int u = 3; printf(\"%d\\n\", u); return 0; }");
        assert!(!has(&f, Defect::Uninitialized), "{f:?}");
    }

    #[test]
    fn promotion_without_read_is_not_a_finding() {
        // `w` is written before every read: mem2reg still promotes it (and
        // logs the promotion), but no junk reaches an observable use, so
        // the provenance entry must be suppressed.
        let f = lint("int main() { int w; w = 2; printf(\"%d\\n\", w); return 0; }");
        assert!(!has(&f, Defect::Uninitialized), "{f:?}");
    }

    #[test]
    fn overflow_check_idiom_found() {
        let src = r#"
            int main() {
                int a = getchar();
                int b = getchar();
                int s = a + b;
                if (s < a) { printf("overflow\n"); return 1; }
                printf("%d\n", s);
                return 0;
            }
        "#;
        let f = lint(src);
        let o = f
            .iter()
            .find(|f| f.finding.defect == Defect::IntegerOverflow)
            .expect("overflow-check finding");
        assert_eq!(o.origin, Origin::Both, "{f:?}");
        assert_eq!(o.finding.span.line, 6, "the `if (s < a)` line");
    }

    #[test]
    fn null_check_after_deref_found() {
        let src = r#"
            int f(int* p) {
                int v = *p;
                if (p == 0) { return -1; }
                return v;
            }
            int main() {
                int x = 7;
                printf("%d\n", f(&x));
                return 0;
            }
        "#;
        let f = lint(src);
        assert!(has(&f, Defect::NullDeref), "{f:?}");
    }

    #[test]
    fn oversized_shift_found() {
        let f = lint("int main() { int x = getchar(); printf(\"%d\\n\", x << 33); return 0; }");
        let s = f
            .iter()
            .find(|f| f.finding.defect == Defect::BadShift)
            .expect("bad-shift finding");
        assert!(
            matches!(s.origin, Origin::Both | Origin::Provenance),
            "{f:?}"
        );
    }

    #[test]
    fn cross_object_pointer_compare_found() {
        let src = r#"
            int G_A;
            int G_B;
            int main() {
                if ((char*)&G_A < (char*)&G_B) { printf("a\n"); }
                else { printf("b\n"); }
                return 0;
            }
        "#;
        let f = lint(src);
        assert!(has(&f, Defect::PointerCompare), "{f:?}");
    }

    #[test]
    fn clean_program_is_clean() {
        let src = r#"
            int main() {
                int i;
                int acc = 0;
                for (i = 0; i < 10; i++) { acc += i; }
                printf("%d\n", acc);
                return 0;
            }
        "#;
        let f = lint(src);
        assert!(f.is_empty(), "{}", render(&f));
    }

    #[test]
    fn output_is_deterministic() {
        let src = r#"
            int main() {
                int u;
                int a = getchar();
                int b = getchar();
                int s = a + b;
                if (s < a) { return 1; }
                printf("%d %d\n", s, u);
                return 0;
            }
        "#;
        let a = render(&lint(src));
        let b = render(&lint(src));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
