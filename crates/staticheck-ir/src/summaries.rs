//! Per-function summaries for interprocedural dataflow.
//!
//! The three abstract domains were originally intraprocedural: a `Call`
//! killed the destination register and nothing else, so junk returned
//! from a helper, a dereference inside a callee, or a constant-returning
//! helper were all invisible at the call site. This module computes a
//! bottom-up summary per function — what flows *out* through the return
//! value and what the callee *requires* of its pointer arguments — and
//! the domains consult it in their `Call` transfer functions.
//!
//! Summaries are computed callee-first over the call graph. Cycles
//! (recursion) are broken conservatively: an in-cycle callee contributes
//! the unknown summary, which degrades precision (fewer facts, therefore
//! fewer findings) but never soundness of what *is* reported.

use crate::dataflow::{fixpoint, scan_with_term, Visit};
use crate::domains::{Interval, IntervalAnalysis, JunkAnalysis, NullAnalysis};
use minc_compile::ir::{Callee, FuncId, Inst, IrProgram, Terminator};
use std::collections::BTreeMap;

/// Junk ids at or above this value are *parameter sentinels*: the summary
/// computation seeds parameter `i` of the function under analysis with
/// junk id `PARAM_JUNK_BASE + i` to discover which parameters flow to the
/// return value. Real junk ids keep bit 31 clear (mem2reg packs
/// `0x4000_0000 | func_index << 12 | slot`, the lowerer uses small ids),
/// so bit 31 marks a sentinel; sentinels never leak into findings because
/// callers re-run the analysis with real states.
pub const PARAM_JUNK_BASE: u32 = 1 << 31;

/// What one function exposes to its callers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnSummary {
    /// Number of parameters (guards index lookups at ragged call sites).
    pub params: usize,
    /// The function may return a junk value even when every argument is
    /// clean (an uninitialized local escaping through `return`); the id
    /// is the mem2reg junk id, kept for provenance corroboration.
    pub returns_junk: Option<u32>,
    /// `param_junk_to_ret[i]`: junk passed in parameter `i` may flow to
    /// the return value.
    pub param_junk_to_ret: Vec<bool>,
    /// `derefs_param[i]`: parameter `i` is dereferenced on *every* path
    /// from entry to every return — the interprocedural precondition for
    /// null-check-after-deref at the caller.
    pub derefs_param: Vec<bool>,
    /// Interval of the return value provable with unknown parameters
    /// (`None` = unknown on at least one return path).
    pub ret_interval: Option<Interval>,
}

/// Summaries for every function of a program, keyed by [`FuncId`].
#[derive(Debug, Clone, Default)]
pub struct FnSummaries {
    map: BTreeMap<u32, FnSummary>,
}

impl FnSummaries {
    /// The empty map: every lookup misses, reproducing the old
    /// intraprocedural behaviour exactly.
    pub fn empty() -> FnSummaries {
        FnSummaries::default()
    }

    /// Summary for `f`, if one has been computed.
    pub fn get(&self, f: FuncId) -> Option<&FnSummary> {
        self.map.get(&f.0)
    }

    /// Computes summaries for every function of `prog`, callees first.
    pub fn of(prog: &IrProgram) -> FnSummaries {
        let n = prog.functions.len();
        // Callee lists per function, deduplicated, deterministic order.
        let callees: Vec<Vec<u32>> = prog
            .functions
            .iter()
            .map(|f| {
                let mut cs: Vec<u32> = f
                    .blocks
                    .iter()
                    .flat_map(|b| &b.insts)
                    .filter_map(|i| match i {
                        Inst::Call {
                            callee: Callee::Func(fid),
                            ..
                        } => Some(fid.0),
                        _ => None,
                    })
                    .collect();
                cs.sort_unstable();
                cs.dedup();
                cs
            })
            .collect();

        // Iterative DFS post-order; a function is summarized only after
        // every callee outside its own cycle. Back edges (recursion) hit
        // a function that is on the stack or not yet summarized — its
        // lookup simply misses, which is the conservative unknown.
        let mut summaries = FnSummaries::empty();
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
        for root in 0..n {
            if state[root] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            state[root] = 1;
            while let Some(&mut (f, ref mut next)) = stack.last_mut() {
                if let Some(&c) = callees[f].get(*next) {
                    *next += 1;
                    if state[c as usize] == 0 {
                        state[c as usize] = 1;
                        stack.push((c as usize, 0));
                    }
                } else {
                    stack.pop();
                    state[f] = 2;
                    let summary = summarize_one(prog, f, &summaries);
                    summaries.map.insert(f as u32, summary);
                }
            }
        }
        summaries
    }
}

/// Summarizes one function given the (partial) summaries of its callees.
fn summarize_one(prog: &IrProgram, idx: usize, done: &FnSummaries) -> FnSummary {
    let f = &prog.functions[idx];
    let params = f.param_count as usize;
    let mut out = FnSummary {
        params,
        param_junk_to_ret: vec![false; params],
        derefs_param: vec![false; params],
        ..FnSummary::default()
    };

    // Junk flow: seed each parameter with its sentinel id and watch the
    // return registers. Real junk ids (below the sentinel base) mean the
    // function manufactures junk itself.
    let junk = JunkAnalysis {
        summaries: done,
        seed_params: true,
    };
    let jstates = fixpoint(f, &junk);
    scan_with_term(f, &junk, &jstates, |st, v| {
        if let Visit::Term(Terminator::Ret(Some(r))) = v {
            if let Some(&id) = st.get(&r.0) {
                if id >= PARAM_JUNK_BASE {
                    let p = (id - PARAM_JUNK_BASE) as usize;
                    if p < params {
                        out.param_junk_to_ret[p] = true;
                    }
                } else {
                    out.returns_junk = Some(out.returns_junk.map_or(id, |cur| cur.min(id)));
                }
            }
        }
    });

    // Must-deref of parameters: intersect the derefed set over every
    // return point. A function with no reachable return derefs nothing
    // (claiming a must-fact on a diverging path would be wrong for the
    // caller's remaining code only in the trivial sense, but stay safe).
    let null = NullAnalysis { summaries: done };
    let nstates = fixpoint(f, &null);
    let mut derefed_at_rets: Option<Vec<bool>> = None;
    scan_with_term(f, &null, &nstates, |st, v| {
        if let Visit::Term(Terminator::Ret(_)) = v {
            let here: Vec<bool> = (0..params as u32)
                .map(|p| st.derefed.contains(&st.root(p)))
                .collect();
            derefed_at_rets = Some(match derefed_at_rets.take() {
                None => here,
                Some(acc) => acc.iter().zip(&here).map(|(a, b)| *a && *b).collect(),
            });
        }
    });
    if let Some(d) = derefed_at_rets {
        out.derefs_param = d;
    }

    // Return interval: the hull over all return points; unknown anywhere
    // means unknown overall.
    let ivals = IntervalAnalysis { summaries: done };
    let istates = fixpoint(f, &ivals);
    let mut seen_ret = false;
    let mut acc: Option<Interval> = None;
    scan_with_term(f, &ivals, &istates, |st, v| {
        if let Visit::Term(Terminator::Ret(Some(r))) = v {
            let here = st.get(&r.0).copied();
            acc = if !seen_ret {
                here
            } else {
                match (acc, here) {
                    (Some(a), Some(h)) => Some(Interval {
                        lo: a.lo.min(h.lo),
                        hi: a.hi.max(h.hi),
                    }),
                    _ => None,
                }
            };
            seen_ret = true;
        }
    });
    out.ret_interval = acc;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minc_compile::personality::{CompilerImpl, Family, OptLevel, PassKind};

    fn reference_ir(src: &str) -> IrProgram {
        let checked = minc::check(src).unwrap();
        let p = CompilerImpl::new(Family::Gcc, OptLevel::O0).personality();
        let mut ir = minc_compile::lower::lower(&checked, &p);
        minc_compile::passes::run_pass(&mut ir, PassKind::Mem2Reg, &p);
        ir
    }

    fn summary_of<'a>(prog: &IrProgram, s: &'a FnSummaries, name: &str) -> &'a FnSummary {
        s.get(prog.func_by_name(name).unwrap()).unwrap()
    }

    #[test]
    fn uninit_escaping_through_return_is_summarized() {
        let ir = reference_ir(
            r#"
            int helper() { int u; return u; }
            int main() { printf("%d\n", helper()); return 0; }
        "#,
        );
        let s = FnSummaries::of(&ir);
        assert!(summary_of(&ir, &s, "helper").returns_junk.is_some());
        assert!(summary_of(&ir, &s, "main").returns_junk.is_none());
    }

    #[test]
    fn junk_parameter_flows_to_return() {
        let ir = reference_ir(
            r#"
            int pass(int x) { return x + 1; }
            int zero(int x) { return 0; }
            int main() { printf("%d\n", pass(1) + zero(2)); return 0; }
        "#,
        );
        let s = FnSummaries::of(&ir);
        assert_eq!(summary_of(&ir, &s, "pass").param_junk_to_ret, vec![true]);
        assert_eq!(summary_of(&ir, &s, "zero").param_junk_to_ret, vec![false]);
    }

    #[test]
    fn junk_return_propagates_through_wrappers() {
        // Two hops: wrapper() returns helper()'s junk.
        let ir = reference_ir(
            r#"
            int helper() { int u; return u; }
            int wrapper() { return helper(); }
            int main() { printf("%d\n", wrapper()); return 0; }
        "#,
        );
        let s = FnSummaries::of(&ir);
        assert!(summary_of(&ir, &s, "wrapper").returns_junk.is_some());
    }

    #[test]
    fn must_derefed_parameter_is_summarized() {
        let ir = reference_ir(
            r#"
            int always(int* p) { return *p; }
            int sometimes(int* p, int c) {
                if (c) { return *p; }
                return 0;
            }
            int main() {
                int x = 1;
                printf("%d %d\n", always(&x), sometimes(&x, 0));
                return 0;
            }
        "#,
        );
        let s = FnSummaries::of(&ir);
        assert_eq!(summary_of(&ir, &s, "always").derefs_param, vec![true]);
        // Only one path derefs: not a must-fact.
        assert_eq!(
            summary_of(&ir, &s, "sometimes").derefs_param,
            vec![false, false]
        );
    }

    #[test]
    fn constant_return_interval_is_summarized() {
        let ir = reference_ir(
            r#"
            int big() { return 40; }
            int main() { printf("%d\n", big()); return 0; }
        "#,
        );
        let s = FnSummaries::of(&ir);
        assert_eq!(
            summary_of(&ir, &s, "big").ret_interval,
            Some(Interval::point(40))
        );
    }

    #[test]
    fn recursion_degrades_to_unknown_not_divergence() {
        let ir = reference_ir(
            r#"
            int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            int main() { printf("%d\n", fib(5)); return 0; }
        "#,
        );
        let s = FnSummaries::of(&ir);
        let fib = summary_of(&ir, &s, "fib");
        // The recursive call contributes unknown; nothing blows up and no
        // junk is invented.
        assert!(fib.returns_junk.is_none());
        assert_eq!(fib.ret_interval, None);
    }
}
