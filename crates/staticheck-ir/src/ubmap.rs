//! Static UB ground-truth map: where undefined behaviour is provably
//! reachable, and with what certainty.
//!
//! The lint ([`crate::UnstableLint`]) answers "which lines are unstable?"
//! — useful for a human triaging reports. The sanitizer meta-oracle needs
//! a stronger artifact: a per-program map of *(line, UB class, certainty)*
//! sites where
//!
//! * `must` means the UB executes on every run (the site is on the
//!   unconditional path from `main`'s entry and the triggering condition
//!   is proven by exact dataflow facts), so a sanitizer in scope that
//!   stays silent has a **false negative**;
//! * `may` means the UB is possible but input- or path-dependent, so a
//!   sanitizer firing there is justified and silence proves nothing.
//!
//! The map fuses the same two evidence channels as the lint — reference-IR
//! dataflow and rewrite provenance — but keeps them honest against each
//! other: a provenance entry on a line the dataflow channel *proved clean*
//! is surfaced as a [`Contradiction`] diagnostic instead of being silently
//! merged, because one of the two channels is necessarily wrong.
//!
//! Judging a sanitizer *false positive* ("it fired where no UB exists")
//! additionally requires knowing when the static side is blind. Each UB
//! class the analysis cannot fully decide for this program is recorded in
//! [`UbSiteMap::unknown`]; the meta-oracle only calls a firing spurious
//! when the class is statically covered, not unknown, and has no site.

use crate::dataflow::{fixpoint, scan_with_blocks, Visit};
use crate::detectors;
use crate::domains::{shift_width, Interval, IntervalAnalysis, JunkAnalysis};
use crate::summaries::FnSummaries;
use crate::Origin;
use minc::{CheckedProgram, FrontendError};
use minc_compile::ir::{BinKind, BlockId, Callee, Inst, IrFunction, IrProgram, IrType, Terminator};
use minc_compile::personality::{CompilerImpl, Family, OptLevel, PassKind};
use minc_compile::{optimize_logged, RewriteEntry, UbReason};
use staticheck::Defect;
use std::collections::{BTreeMap, BTreeSet};

/// UBSan's null-page threshold: addresses below this are "null-like".
/// Mirrors `crates/sanitizers`' load/store check.
pub const NULL_PAGE: i64 = 4096;

/// The UB classes the map speaks about. A superset of what the static
/// side can prove: the dynamic-only classes (heap/stack errors) exist so
/// sanitizer verdicts can be classified, but they never get `must` sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UbClass {
    /// Use of an uninitialized (indeterminate) value.
    Uninit,
    /// Signed integer overflow (including `MIN / -1`).
    SignedOverflow,
    /// Shift amount out of range, or signed left-shift overflow.
    OversizedShift,
    /// Division or remainder by zero.
    DivByZero,
    /// Null (or null-page) pointer dereference.
    NullDeref,
    /// Relational comparison of pointers into different objects.
    PointerCompare,
    /// Out-of-bounds access (dynamic-only here).
    OutOfBounds,
    /// Use after free (dynamic-only here).
    UseAfterFree,
    /// Double free (dynamic-only here).
    DoubleFree,
    /// Free of non-heap memory (dynamic-only here).
    BadFree,
    /// Implementation-specific loop trip count (seeded miscompilation).
    LoopTripCount,
}

impl UbClass {
    /// True when the static analyses in this module actually look for the
    /// class — the precondition for ever judging a sanitizer firing of
    /// this class to be a false positive.
    pub fn statically_covered(self) -> bool {
        matches!(
            self,
            UbClass::Uninit
                | UbClass::SignedOverflow
                | UbClass::OversizedShift
                | UbClass::DivByZero
                | UbClass::NullDeref
        )
    }
}

impl std::fmt::Display for UbClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            UbClass::Uninit => "uninit",
            UbClass::SignedOverflow => "signed-overflow",
            UbClass::OversizedShift => "oversized-shift",
            UbClass::DivByZero => "div-by-zero",
            UbClass::NullDeref => "null-deref",
            UbClass::PointerCompare => "pointer-compare",
            UbClass::OutOfBounds => "out-of-bounds",
            UbClass::UseAfterFree => "use-after-free",
            UbClass::DoubleFree => "double-free",
            UbClass::BadFree => "bad-free",
            UbClass::LoopTripCount => "loop-trip-count",
        })
    }
}

/// Maps the shared defect taxonomy into UB classes (lossy: purely
/// stylistic defects like `FormatMismatch` have no UB class).
pub fn class_of_defect(d: Defect) -> Option<UbClass> {
    Some(match d {
        Defect::Uninitialized => UbClass::Uninit,
        Defect::IntegerOverflow => UbClass::SignedOverflow,
        Defect::BadShift => UbClass::OversizedShift,
        Defect::DivByZero => UbClass::DivByZero,
        Defect::NullDeref => UbClass::NullDeref,
        Defect::PointerCompare | Defect::PointerSubtraction => UbClass::PointerCompare,
        Defect::OutOfBounds => UbClass::OutOfBounds,
        Defect::UseAfterFree => UbClass::UseAfterFree,
        Defect::DoubleFree => UbClass::DoubleFree,
        Defect::BadFree => UbClass::BadFree,
        Defect::MiscompiledLoop => UbClass::LoopTripCount,
        _ => return None,
    })
}

/// The defect the meta-oracle reports a class under (total mapping).
pub fn defect_of_class(c: UbClass) -> Defect {
    match c {
        UbClass::Uninit => Defect::Uninitialized,
        UbClass::SignedOverflow => Defect::IntegerOverflow,
        UbClass::OversizedShift => Defect::BadShift,
        UbClass::DivByZero => Defect::DivByZero,
        UbClass::NullDeref => Defect::NullDeref,
        UbClass::PointerCompare => Defect::PointerCompare,
        UbClass::OutOfBounds => Defect::OutOfBounds,
        UbClass::UseAfterFree => Defect::UseAfterFree,
        UbClass::DoubleFree => Defect::DoubleFree,
        UbClass::BadFree => Defect::BadFree,
        UbClass::LoopTripCount => Defect::MiscompiledLoop,
    }
}

/// Classifies a sanitizer fault category string (the `Fault::category`
/// values the `sanitizers` crate emits).
pub fn class_of_category(cat: &str) -> Option<UbClass> {
    Some(match cat {
        "use-of-uninitialized-value" => UbClass::Uninit,
        "signed-integer-overflow" => UbClass::SignedOverflow,
        "shift-out-of-bounds" => UbClass::OversizedShift,
        "integer-divide-by-zero" => UbClass::DivByZero,
        "null-dereference" => UbClass::NullDeref,
        "heap-buffer-overflow" | "stack-buffer-overflow" => UbClass::OutOfBounds,
        "heap-use-after-free" => UbClass::UseAfterFree,
        "double-free" => UbClass::DoubleFree,
        "bad-free" => UbClass::BadFree,
        _ => return None,
    })
}

/// Maps a rewrite justification to its UB class.
pub fn class_of_reason(reason: UbReason) -> UbClass {
    match reason {
        UbReason::SignedOverflowCheck => UbClass::SignedOverflow,
        UbReason::NullCheckAfterDeref => UbClass::NullDeref,
        UbReason::OversizedShift => UbClass::OversizedShift,
        UbReason::UninitPromotion => UbClass::Uninit,
        UbReason::UnrollTripCount => UbClass::LoopTripCount,
    }
}

/// How certain the map is that the UB executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Certainty {
    /// Possible, but input- or path-dependent.
    May,
    /// Executes on every run of the program.
    Must,
}

impl std::fmt::Display for Certainty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Certainty::May => "may",
            Certainty::Must => "must",
        })
    }
}

/// One UB site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UbSite {
    /// 1-based source line.
    pub line: u32,
    /// Function the site is in.
    pub function: String,
    /// UB class.
    pub class: UbClass,
    /// Execution certainty.
    pub certainty: Certainty,
    /// Which evidence channel(s) produced the site.
    pub origin: Origin,
    /// Human-readable detail.
    pub message: String,
}

/// The two evidence channels disagreeing about one line: a rewrite log
/// claims a UB-justified rewrite where dataflow proved the UB impossible.
/// One of the channels is wrong — exactly the kind of oracle defect this
/// module exists to surface, so it is reported, never silently merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Contradiction {
    /// 1-based source line.
    pub line: u32,
    /// Contested UB class.
    pub class: UbClass,
    /// Display names of the impls whose logs contain the entry, sorted.
    pub impls: Vec<String>,
    /// Detail from the first contradicting rewrite entry.
    pub detail: String,
}

/// The fused static UB ground-truth map for one program.
#[derive(Debug, Clone, Default)]
pub struct UbSiteMap {
    /// UB sites, sorted by `(line, class)`.
    pub sites: Vec<UbSite>,
    /// Channel disagreements, sorted by `(line, class)`.
    pub contradictions: Vec<Contradiction>,
    /// Classes the static side cannot decide for this program: no
    /// sanitizer firing of these classes may be called a false positive.
    pub unknown: BTreeSet<UbClass>,
}

impl UbSiteMap {
    /// Builds the map for a checked program, fusing dataflow facts with
    /// the rewrite provenance of `impls`.
    pub fn build(checked: &CheckedProgram, impls: &[CompilerImpl]) -> UbSiteMap {
        // Reference IR: `-O0` lowering + mem2reg, same shape the lint's
        // detectors run on (junk explicit, source lines intact).
        let p0 = CompilerImpl::new(Family::Gcc, OptLevel::O0).personality();
        let mut reference = minc_compile::lower::lower(checked, &p0);
        minc_compile::passes::run_pass(&mut reference, PassKind::Mem2Reg, &p0);
        let summaries = FnSummaries::of(&reference);
        let df = dataflow_evidence(&reference, &summaries);
        let mut entries: Vec<RewriteEntry> = Vec::new();
        for id in impls {
            let (_, log) = optimize_logged(checked, *id);
            entries.extend(log.entries);
        }
        fuse(&df, &entries)
    }

    /// [`UbSiteMap::build`] from source text.
    pub fn build_source(src: &str, impls: &[CompilerImpl]) -> Result<UbSiteMap, FrontendError> {
        Ok(UbSiteMap::build(&minc::check(src)?, impls))
    }

    /// The classes with at least one `must` site.
    pub fn must_classes(&self) -> BTreeSet<UbClass> {
        self.sites
            .iter()
            .filter(|s| s.certainty == Certainty::Must)
            .map(|s| s.class)
            .collect()
    }

    /// True if any site (either certainty) has the class.
    pub fn has_site(&self, class: UbClass) -> bool {
        self.sites.iter().any(|s| s.class == class)
    }

    /// True when a sanitizer firing of `class` can be judged spurious:
    /// the class is statically covered, the analysis was not blind to it
    /// in this program, and no site of the class exists.
    pub fn refutes(&self, class: UbClass) -> bool {
        class.statically_covered() && !self.unknown.contains(&class) && !self.has_site(class)
    }

    /// Human-readable rendering, one line per site/contradiction.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "ub-site-map: {} site(s), {} contradiction(s)\n",
            self.sites.len(),
            self.contradictions.len()
        ));
        for s in &self.sites {
            out.push_str(&format!(
                "  line {:>4} [{}] {} ({}) in {}: {}\n",
                s.line, s.certainty, s.class, s.origin, s.function, s.message
            ));
        }
        for c in &self.contradictions {
            out.push_str(&format!(
                "  line {:>4} [CONTRADICTION] {}: dataflow proves the site clean \
                 but {} logged a UB-justified rewrite: {}\n",
                c.line,
                c.class,
                c.impls.join("+"),
                c.detail
            ));
        }
        if !self.unknown.is_empty() {
            let names: Vec<String> = self.unknown.iter().map(|c| c.to_string()).collect();
            out.push_str(&format!("  statically undecided: {}\n", names.join(", ")));
        }
        out
    }
}

/// One dataflow-channel site, pre-fusion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfSite {
    /// The site is on the unconditional path and its condition is exact.
    pub must: bool,
    /// Function name.
    pub function: String,
    /// Human-readable detail.
    pub message: String,
}

/// Everything the dataflow channel learned about one program.
#[derive(Debug, Clone, Default)]
pub struct DataflowEvidence {
    /// Sites keyed by `(line, class)`.
    pub sites: BTreeMap<(u32, UbClass), DfSite>,
    /// `(line, class)` pairs *proved clean* — a provenance entry here is
    /// a contradiction, not evidence.
    pub clean: BTreeSet<(u32, UbClass)>,
    /// Classes the analysis is blind to in this program.
    pub unknown: BTreeSet<UbClass>,
    /// Junk ids observed reaching a sink (corroboration set for
    /// `UninitPromotion` provenance entries).
    pub observed_junk: BTreeSet<u32>,
}

impl DataflowEvidence {
    fn add_site(&mut self, line: u32, class: UbClass, must: bool, function: &str, msg: &str) {
        if line == 0 {
            return; // no source attribution, useless to the oracle
        }
        let e = self.sites.entry((line, class)).or_insert_with(|| DfSite {
            must,
            function: function.to_string(),
            message: msg.to_string(),
        });
        if must && !e.must {
            e.must = true;
            e.message = msg.to_string();
        }
    }
}

/// The blocks of `f` that execute on *every* run reaching the function:
/// the chain from entry following unconditional jumps into join-free
/// blocks. Inside these blocks the (join-free) dataflow facts are exact,
/// so "may" facts are "must" facts. An entry block with a back edge means
/// even entry state is joined; then nothing is certain.
fn must_blocks(f: &IrFunction) -> BTreeSet<u32> {
    let mut preds = vec![0u32; f.blocks.len()];
    for b in &f.blocks {
        for s in b.term.successors() {
            preds[s.0 as usize] += 1;
        }
    }
    let mut out = BTreeSet::new();
    if f.blocks.is_empty() || preds[0] > 0 {
        return out;
    }
    let mut cur = 0usize;
    loop {
        out.insert(cur as u32);
        match &f.blocks[cur].term {
            Terminator::Jump(t) if preds[t.0 as usize] <= 1 && !out.contains(&t.0) => {
                cur = t.0 as usize;
            }
            _ => break,
        }
    }
    out
}

/// The functions that execute on every run: `main`, plus everything
/// called from a must-block of a must-function, transitively.
fn must_functions(prog: &IrProgram) -> BTreeSet<u32> {
    let mut out = BTreeSet::new();
    let mut work = vec![prog.main.0];
    while let Some(fi) = work.pop() {
        if !out.insert(fi) {
            continue;
        }
        let f = &prog.functions[fi as usize];
        for bi in must_blocks(f) {
            for inst in &f.blocks[bi as usize].insts {
                if let Inst::Call {
                    callee: Callee::Func(fid),
                    ..
                } = inst
                {
                    work.push(fid.0);
                }
            }
        }
    }
    out
}

/// Numeric range of an IR integer type, or `None` for floats.
fn ty_range(ty: IrType) -> Option<(i128, i128)> {
    match ty {
        IrType::I32 => Some((i32::MIN as i128, i32::MAX as i128)),
        IrType::I64 => Some((i64::MIN as i128, i64::MAX as i128)),
        IrType::F64 => None,
    }
}

/// Collects the dataflow channel's evidence over a reference IR.
pub fn dataflow_evidence(prog: &IrProgram, summaries: &FnSummaries) -> DataflowEvidence {
    let mut ev = DataflowEvidence::default();

    // Seed with the lint detectors' findings — all May; the exactness
    // upgrades below promote the ones on the unconditional path.
    let direct = detectors::scan_program(prog);
    ev.observed_junk = detectors::observed_junk_ids(&direct);
    for fnd in &direct {
        // Check-instability classes stay May no matter where they sit: a
        // deleted null check or overflow check only bites when the input
        // actually makes the pointer null / the addition wrap, which the
        // static side cannot decide.
        if let Some(c) = class_of_defect(fnd.defect) {
            ev.add_site(fnd.line, c, false, &fnd.function, &fnd.message);
        }
    }

    // Blindness: junk through memory is untracked (mem2reg leaves arrays
    // and address-taken slots in memory, and JunkAnalysis treats every
    // Load result as clean), so any Load makes Uninit undecidable.
    let has_load = prog
        .functions
        .iter()
        .flat_map(|f| &f.blocks)
        .flat_map(|b| &b.insts)
        .any(|i| matches!(i, Inst::Load { .. }));
    if has_load {
        ev.unknown.insert(UbClass::Uninit);
    }

    let must_fns = must_functions(prog);
    for (fi, f) in prog.functions.iter().enumerate() {
        let mblocks = if must_fns.contains(&(fi as u32)) {
            must_blocks(f)
        } else {
            BTreeSet::new()
        };
        collect_junk(f, summaries, &mblocks, &mut ev);
        collect_intervals(f, summaries, &mblocks, &mut ev);
    }
    ev
}

/// Junk sinks again (same four the lint reports), but with block
/// certainty: a junk read in a must-block is a Must site, because the
/// join-free path from entry makes the may-fact exact.
fn collect_junk(
    f: &IrFunction,
    summaries: &FnSummaries,
    mblocks: &BTreeSet<u32>,
    ev: &mut DataflowEvidence,
) {
    let a = JunkAnalysis::new(summaries);
    let states = fixpoint(f, &a);
    let mut sink: Vec<(u32, bool, &'static str)> = Vec::new();
    scan_with_blocks(f, &a, &states, |b: BlockId, st, v| {
        let must = mblocks.contains(&b.0);
        match v {
            Visit::Inst(Inst::Call { args, .. }) => {
                for arg in args {
                    if st.contains_key(&arg.0) {
                        sink.push((f.line_of(*arg), must, "call argument"));
                    }
                }
            }
            Visit::Inst(Inst::Store { src, .. }) if st.contains_key(&src.0) => {
                sink.push((f.line_of(*src), must, "stored value"));
            }
            Visit::Term(Terminator::Br { cond, .. }) if st.contains_key(&cond.0) => {
                sink.push((f.line_of(*cond), must, "branch condition"));
            }
            Visit::Term(Terminator::Ret(Some(r))) if st.contains_key(&r.0) => {
                sink.push((f.line_of(*r), must, "returned value"));
            }
            _ => {}
        }
    });
    for (line, must, what) in sink {
        ev.add_site(
            line,
            UbClass::Uninit,
            must,
            &f.name,
            &format!("{what} observes an uninitialized (indeterminate) value"),
        );
    }
}

/// Interval-driven evidence: shifts, division, signed arithmetic, and
/// null-page addresses. Also records clean proofs and blindness.
fn collect_intervals(
    f: &IrFunction,
    summaries: &FnSummaries,
    mblocks: &BTreeSet<u32>,
    ev: &mut DataflowEvidence,
) {
    let a = IntervalAnalysis::new(summaries);
    let states = fixpoint(f, &a);
    enum Rec {
        Site(u32, UbClass, bool, String),
        Clean(u32, UbClass),
        Unknown(UbClass),
    }
    let mut recs: Vec<Rec> = Vec::new();
    scan_with_blocks(f, &a, &states, |b: BlockId, st, v| {
        let must = mblocks.contains(&b.0);
        let Visit::Inst(inst) = v else { return };
        match inst {
            Inst::Bin {
                dst,
                ty,
                op: op @ (BinKind::Shl | BinKind::ShrS | BinKind::ShrU),
                a: lhs,
                b: amt,
                ub_signed,
            } => {
                let line = f.line_of(*dst);
                let width = shift_width(*ty);
                match st.get(&amt.0).copied() {
                    None => recs.push(Rec::Unknown(UbClass::OversizedShift)),
                    Some(am) if am.lo >= width || am.hi < 0 => {
                        recs.push(Rec::Site(
                            line,
                            UbClass::OversizedShift,
                            must,
                            format!(
                                "shift amount [{}, {}] provably out of range for a \
                                 {width}-bit value",
                                am.lo, am.hi
                            ),
                        ));
                    }
                    Some(am) if am.lo < 0 || am.hi >= width => {
                        recs.push(Rec::Site(
                            line,
                            UbClass::OversizedShift,
                            false,
                            format!(
                                "shift amount [{}, {}] may leave the range [0, {width})",
                                am.lo, am.hi
                            ),
                        ));
                    }
                    Some(am) => {
                        // Amount in range. A signed left shift can still
                        // overflow; the clean proof needs the operand too.
                        if *op == BinKind::Shl && *ub_signed {
                            match (st.get(&lhs.0).copied(), ty_range(*ty)) {
                                (Some(x), Some((_, max)))
                                    if x.lo >= 0
                                        && (x.hi as i128) << (am.hi.max(0) as u32) <= max =>
                                {
                                    recs.push(Rec::Clean(line, UbClass::OversizedShift));
                                }
                                (Some(x), Some((_, max))) => {
                                    let wide =
                                        (x.hi.max(x.lo.abs()) as i128) << (am.hi.max(0) as u32);
                                    let definite = x.lo >= 0 && (x.lo as i128) << am.lo > max;
                                    if x.lo < 0 || wide > max {
                                        recs.push(Rec::Site(
                                            line,
                                            UbClass::OversizedShift,
                                            must && definite,
                                            "signed left shift may overflow or shift a \
                                             negative value"
                                                .to_string(),
                                        ));
                                    } else {
                                        recs.push(Rec::Clean(line, UbClass::OversizedShift));
                                    }
                                }
                                _ => recs.push(Rec::Unknown(UbClass::OversizedShift)),
                            }
                        } else {
                            recs.push(Rec::Clean(line, UbClass::OversizedShift));
                        }
                    }
                }
            }
            Inst::Bin {
                dst,
                ty,
                op: op @ (BinKind::DivS | BinKind::DivU | BinKind::RemS | BinKind::RemU),
                a: num,
                b: den,
                ..
            } => {
                let line = f.line_of(*dst);
                let d = st.get(&den.0).copied();
                match d {
                    None => recs.push(Rec::Unknown(UbClass::DivByZero)),
                    Some(dv) if dv == Interval::point(0) => {
                        recs.push(Rec::Site(
                            line,
                            UbClass::DivByZero,
                            must,
                            "divisor is provably zero".to_string(),
                        ));
                    }
                    Some(dv) if dv.contains(0) => {
                        recs.push(Rec::Site(
                            line,
                            UbClass::DivByZero,
                            false,
                            format!("divisor interval [{}, {}] includes zero", dv.lo, dv.hi),
                        ));
                    }
                    Some(_) => recs.push(Rec::Clean(line, UbClass::DivByZero)),
                }
                // `MIN / -1` overflows in signed division.
                if matches!(op, BinKind::DivS | BinKind::RemS) {
                    if let Some((min, _)) = ty_range(*ty) {
                        let n = st.get(&num.0).copied();
                        let n_may_min = n.is_none_or(|i| i.contains(min as i64));
                        let d_may_neg1 = d.is_none_or(|i| i.contains(-1));
                        if n_may_min && d_may_neg1 {
                            let definite = n == Some(Interval::point(min as i64))
                                && d == Some(Interval::point(-1));
                            if definite {
                                recs.push(Rec::Site(
                                    line,
                                    UbClass::SignedOverflow,
                                    must,
                                    "signed division MIN / -1 provably overflows".to_string(),
                                ));
                            } else if n.is_none() || d.is_none() {
                                recs.push(Rec::Unknown(UbClass::SignedOverflow));
                            } else {
                                recs.push(Rec::Site(
                                    line,
                                    UbClass::SignedOverflow,
                                    false,
                                    "signed division may hit MIN / -1".to_string(),
                                ));
                            }
                        }
                    }
                }
            }
            Inst::Bin {
                dst,
                ty,
                op: op @ (BinKind::Add | BinKind::Sub | BinKind::Mul),
                a: lhs,
                b: rhs,
                ub_signed: true,
            } => {
                let line = f.line_of(*dst);
                let Some((min, max)) = ty_range(*ty) else {
                    return;
                };
                match (st.get(&lhs.0).copied(), st.get(&rhs.0).copied()) {
                    (Some(x), Some(y)) => {
                        let (xl, xh) = (x.lo as i128, x.hi as i128);
                        let (yl, yh) = (y.lo as i128, y.hi as i128);
                        let (lo, hi) = match op {
                            BinKind::Add => (xl + yl, xh + yh),
                            BinKind::Sub => (xl - yh, xh - yl),
                            _ => {
                                let cs = [xl * yl, xl * yh, xh * yl, xh * yh];
                                (
                                    cs.iter().copied().min().unwrap_or(0),
                                    cs.iter().copied().max().unwrap_or(0),
                                )
                            }
                        };
                        if lo > max || hi < min {
                            recs.push(Rec::Site(
                                line,
                                UbClass::SignedOverflow,
                                must,
                                format!(
                                    "signed arithmetic provably overflows: result range \
                                     [{lo}, {hi}] lies outside the type"
                                ),
                            ));
                        } else if lo < min || hi > max {
                            recs.push(Rec::Site(
                                line,
                                UbClass::SignedOverflow,
                                false,
                                format!(
                                    "signed arithmetic may overflow: result range \
                                     [{lo}, {hi}] exceeds the type"
                                ),
                            ));
                        }
                        // In-range: no site, but no clean proof either —
                        // SignedOverflowCheck provenance flags a *deleted
                        // check*, which is consistent with a non-overflow
                        // proof, not contradicted by it.
                    }
                    _ => recs.push(Rec::Unknown(UbClass::SignedOverflow)),
                }
            }
            Inst::Load { dst, addr, .. } | Inst::Store { addr, src: dst, .. } => {
                let line = f.line_of(*dst);
                match st.get(&addr.0).copied() {
                    None => recs.push(Rec::Unknown(UbClass::NullDeref)),
                    Some(av) if av.lo >= 0 && av.hi < NULL_PAGE => {
                        recs.push(Rec::Site(
                            line,
                            UbClass::NullDeref,
                            must,
                            format!(
                                "accessed address [{}, {}] is provably in the null page",
                                av.lo, av.hi
                            ),
                        ));
                    }
                    Some(av) if av.lo < NULL_PAGE && av.hi >= 0 => {
                        recs.push(Rec::Site(
                            line,
                            UbClass::NullDeref,
                            false,
                            format!(
                                "accessed address [{}, {}] may fall in the null page",
                                av.lo, av.hi
                            ),
                        ));
                    }
                    Some(_) => {}
                }
            }
            _ => {}
        }
    });
    for r in recs {
        match r {
            Rec::Site(line, c, must, msg) => ev.add_site(line, c, must, &f.name, &msg),
            Rec::Clean(line, c) => {
                ev.clean.insert((line, c));
            }
            Rec::Unknown(c) => {
                ev.unknown.insert(c);
            }
        }
    }
    // A clean proof cannot coexist with a site on the same key (distinct
    // instructions folded onto one source line): the site wins, because a
    // contradiction diagnostic needs the *proof* to be unequivocal.
    ev.clean.retain(|k| !ev.sites.contains_key(k));
}

/// Fuses the dataflow evidence with rewrite-provenance entries into the
/// final map. Pure — tests drive every fusion case through it directly.
pub fn fuse(df: &DataflowEvidence, entries: &[RewriteEntry]) -> UbSiteMap {
    let mut sites: BTreeMap<(u32, UbClass), UbSite> = df
        .sites
        .iter()
        .map(|(&(line, class), s)| {
            (
                (line, class),
                UbSite {
                    line,
                    function: s.function.clone(),
                    class,
                    certainty: if s.must {
                        Certainty::Must
                    } else {
                        Certainty::May
                    },
                    origin: Origin::Dataflow,
                    message: s.message.clone(),
                },
            )
        })
        .collect();
    let mut contra: BTreeMap<(u32, UbClass), (BTreeSet<String>, String)> = BTreeMap::new();

    for e in entries {
        if e.line == 0 {
            continue;
        }
        // A promotion is only evidence if the junk was observably read.
        if e.reason == UbReason::UninitPromotion && !df.observed_junk.contains(&e.key) {
            continue;
        }
        let class = class_of_reason(e.reason);
        let key = (e.line, class);
        if df.clean.contains(&key) {
            let slot = contra
                .entry(key)
                .or_insert_with(|| (BTreeSet::new(), e.detail.clone()));
            slot.0.insert(e.impl_id.to_string());
            continue;
        }
        match sites.get_mut(&key) {
            Some(site) => site.origin = Origin::Both,
            None => {
                sites.insert(
                    key,
                    UbSite {
                        line: e.line,
                        function: e.function.clone(),
                        class,
                        certainty: Certainty::May,
                        origin: Origin::Provenance,
                        message: e.detail.clone(),
                    },
                );
            }
        }
    }

    UbSiteMap {
        sites: sites.into_values().collect(),
        contradictions: contra
            .into_iter()
            .map(|((line, class), (impls, detail))| Contradiction {
                line,
                class,
                impls: impls.into_iter().collect(),
                detail,
            })
            .collect(),
        unknown: df.unknown.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_ir(src: &str) -> IrProgram {
        let checked = minc::check(src).unwrap();
        let p = CompilerImpl::new(Family::Gcc, OptLevel::O0).personality();
        let mut ir = minc_compile::lower::lower(&checked, &p);
        minc_compile::passes::run_pass(&mut ir, PassKind::Mem2Reg, &p);
        ir
    }

    fn evidence(src: &str) -> DataflowEvidence {
        let ir = reference_ir(src);
        let s = FnSummaries::of(&ir);
        dataflow_evidence(&ir, &s)
    }

    fn entry(reason: UbReason, line: u32, key: u32) -> RewriteEntry {
        RewriteEntry {
            impl_id: CompilerImpl::new(Family::Gcc, OptLevel::O2),
            function: "main".to_string(),
            reason,
            line,
            key,
            detail: "synthetic".to_string(),
        }
    }

    // ---------------------------------------------------- fusion cases

    #[test]
    fn fuse_dataflow_only_site_keeps_dataflow_origin() {
        let mut df = DataflowEvidence::default();
        df.sites.insert(
            (7, UbClass::DivByZero),
            DfSite {
                must: true,
                function: "main".to_string(),
                message: "divisor is provably zero".to_string(),
            },
        );
        let map = fuse(&df, &[]);
        assert_eq!(map.sites.len(), 1);
        assert_eq!(map.sites[0].origin, Origin::Dataflow);
        assert_eq!(map.sites[0].certainty, Certainty::Must);
        assert!(map.contradictions.is_empty());
    }

    #[test]
    fn fuse_provenance_only_site_is_may() {
        let df = DataflowEvidence::default();
        let map = fuse(&df, &[entry(UbReason::SignedOverflowCheck, 12, 0)]);
        assert_eq!(map.sites.len(), 1);
        assert_eq!(map.sites[0].class, UbClass::SignedOverflow);
        assert_eq!(map.sites[0].origin, Origin::Provenance);
        assert_eq!(map.sites[0].certainty, Certainty::May);
    }

    #[test]
    fn fuse_agreeing_channels_merge_to_both() {
        let mut df = DataflowEvidence::default();
        df.sites.insert(
            (9, UbClass::OversizedShift),
            DfSite {
                must: false,
                function: "main".to_string(),
                message: "shift amount out of range".to_string(),
            },
        );
        let map = fuse(&df, &[entry(UbReason::OversizedShift, 9, 0)]);
        assert_eq!(map.sites.len(), 1);
        assert_eq!(map.sites[0].origin, Origin::Both);
    }

    #[test]
    fn fuse_contradicting_channels_surface_distinctly() {
        let mut df = DataflowEvidence::default();
        df.clean.insert((5, UbClass::OversizedShift));
        let map = fuse(&df, &[entry(UbReason::OversizedShift, 5, 0)]);
        // Not silently merged into sites; reported as its own diagnostic.
        assert!(map.sites.is_empty());
        assert_eq!(map.contradictions.len(), 1);
        assert_eq!(map.contradictions[0].line, 5);
        assert_eq!(map.contradictions[0].class, UbClass::OversizedShift);
        assert_eq!(map.contradictions[0].impls, vec!["gcc-O2".to_string()]);
        assert!(map.render().contains("CONTRADICTION"));
    }

    #[test]
    fn fuse_ignores_uncorroborated_promotions() {
        let df = DataflowEvidence::default();
        let map = fuse(&df, &[entry(UbReason::UninitPromotion, 3, 42)]);
        assert!(map.sites.is_empty());
        let mut df2 = DataflowEvidence::default();
        df2.observed_junk.insert(42);
        let map2 = fuse(&df2, &[entry(UbReason::UninitPromotion, 3, 42)]);
        assert_eq!(map2.sites.len(), 1);
        assert_eq!(map2.sites[0].class, UbClass::Uninit);
    }

    // --------------------------------------------- evidence collection

    #[test]
    fn uninit_branch_on_unconditional_path_is_must() {
        let ev = evidence(
            r#"
            int main() {
                int u;
                if (u > 0) { printf("a\n"); }
                return 0;
            }
        "#,
        );
        let site = ev
            .sites
            .iter()
            .find(|((_, c), _)| *c == UbClass::Uninit)
            .map(|(_, s)| s)
            .expect("uninit site");
        assert!(site.must, "entry-block junk branch must be Must");
        assert!(!ev.unknown.contains(&UbClass::Uninit));
    }

    #[test]
    fn uninit_behind_branch_stays_may() {
        let ev = evidence(
            r#"
            int main() {
                if (input_size() > 1) {
                    int u;
                    if (u > 0) { printf("a\n"); }
                }
                return 0;
            }
        "#,
        );
        let site = ev
            .sites
            .iter()
            .find(|((_, c), _)| *c == UbClass::Uninit)
            .map(|(_, s)| s)
            .expect("uninit site");
        assert!(!site.must, "junk read behind a branch is only May");
    }

    #[test]
    fn constant_zero_divisor_is_must_site() {
        let ev = evidence(
            r#"
            int main() {
                int z = 0;
                int t = 5 / z;
                printf("%d\n", t);
                return 0;
            }
        "#,
        );
        let ((_, c), s) = ev
            .sites
            .iter()
            .find(|((_, c), _)| *c == UbClass::DivByZero)
            .expect("div-by-zero site");
        assert_eq!(*c, UbClass::DivByZero);
        assert!(s.must);
    }

    #[test]
    fn provably_oversized_shift_is_must_and_in_range_is_clean() {
        let ev = evidence(
            r#"
            int main() {
                int a = 1 << 2;
                int s = 40;
                int b = a << s;
                printf("%d %d\n", a, b);
                return 0;
            }
        "#,
        );
        let shift_sites: Vec<_> = ev
            .sites
            .iter()
            .filter(|((_, c), _)| *c == UbClass::OversizedShift)
            .collect();
        assert_eq!(shift_sites.len(), 1, "only the oversized shift is a site");
        assert!(shift_sites[0].1.must);
        // The in-range `1 << 2` produced a clean proof on its line.
        assert!(
            ev.clean.iter().any(|(_, c)| *c == UbClass::OversizedShift),
            "in-range shift proves clean: {:?}",
            ev.clean
        );
    }

    #[test]
    fn memory_traffic_makes_uninit_and_nullderef_unknown() {
        let ev = evidence(
            r#"
            int main() {
                int a[2];
                a[0] = 1;
                printf("%d\n", a[0]);
                return 0;
            }
        "#,
        );
        assert!(ev.unknown.contains(&UbClass::Uninit));
        assert!(ev.unknown.contains(&UbClass::NullDeref));
    }

    #[test]
    fn pure_arithmetic_program_is_fully_decided() {
        let ev = evidence(
            r#"
            int main() {
                int x = 3;
                int y = x * 2 + 1;
                printf("%d\n", y);
                return 0;
            }
        "#,
        );
        assert!(ev.sites.is_empty(), "{:?}", ev.sites);
        assert!(
            !ev.unknown.contains(&UbClass::Uninit)
                && !ev.unknown.contains(&UbClass::SignedOverflow)
                && !ev.unknown.contains(&UbClass::DivByZero),
            "{:?}",
            ev.unknown
        );
    }

    #[test]
    fn interprocedural_constant_feeds_must_shift() {
        // The shift amount arrives through a helper's summarized return
        // interval — intraprocedurally this would be unknown.
        let ev = evidence(
            r#"
            int amount() { return 40; }
            int main() {
                int x = 1;
                int y = x << amount();
                printf("%d\n", y);
                return 0;
            }
        "#,
        );
        let site = ev
            .sites
            .iter()
            .find(|((_, c), _)| *c == UbClass::OversizedShift)
            .map(|(_, s)| s)
            .expect("interprocedural oversized shift");
        assert!(site.must);
    }

    #[test]
    fn loop_carried_call_argument_widens_and_stays_may() {
        // The counter flows through a call on every iteration and is
        // incremented; the interval join must widen it so the fixpoint
        // converges, and the widened `[0, +inf]` increment is a May
        // overflow site — never a Must one.
        let ev = evidence(
            r#"
            int observe(int k) { return k; }
            int main() {
                int n = (int)input_size();
                int i = 0;
                int sum = 0;
                while (i < n) {
                    sum = observe(i);
                    i = i + 1;
                }
                printf("%d\n", sum);
                return 0;
            }
        "#,
        );
        let overflow_sites: Vec<_> = ev
            .sites
            .iter()
            .filter(|((_, c), _)| *c == UbClass::SignedOverflow)
            .collect();
        assert!(
            overflow_sites.iter().all(|(_, s)| !s.must),
            "widened loop counter must not yield a Must overflow: {overflow_sites:?}"
        );
        assert!(
            !overflow_sites.is_empty() || ev.unknown.contains(&UbClass::SignedOverflow),
            "the widened increment is either a May site or declared unknown"
        );
    }

    #[test]
    fn subscript_deref_marks_pointer_base_for_check_after_deref() {
        // `p[1]` lowers to a load of `p + offset`; the null analysis must
        // chase the derived value back to `p` so the later `p == 0` test
        // is recognized as a check-after-deref. Pointer `++` is another
        // Add-derivation layer on the same base.
        let ir = reference_ir(
            r#"
            int main() {
                int a[4];
                a[0] = 7;
                int *p = a;
                p++;
                int x = p[1];
                if (p == 0) { printf("null\n"); }
                printf("%d\n", x);
                return 0;
            }
        "#,
        );
        let findings = crate::detectors::scan_program(&ir);
        assert!(
            findings
                .iter()
                .any(|f| f.defect == staticheck::Defect::NullDeref),
            "derived-base deref did not feed the null-check-after-deref \
             detector: {findings:?}"
        );
    }

    #[test]
    fn build_source_end_to_end_reports_uninit_with_both_origins() {
        let map = UbSiteMap::build_source(
            r#"
            int main() {
                int u;
                if (u > 0) { printf("a\n"); }
                return 0;
            }
        "#,
            &CompilerImpl::default_set(),
        )
        .unwrap();
        let site = map
            .sites
            .iter()
            .find(|s| s.class == UbClass::Uninit)
            .expect("uninit site");
        assert_eq!(site.certainty, Certainty::Must);
        assert!(map.must_classes().contains(&UbClass::Uninit));
        assert!(map.render().contains("uninit"));
    }

    #[test]
    fn refutes_requires_coverage_and_no_blindness() {
        let map = UbSiteMap::build_source(
            "int main() { int x = 3; printf(\"%d\\n\", x); return 0; }",
            &[],
        )
        .unwrap();
        assert!(map.refutes(UbClass::SignedOverflow));
        assert!(map.refutes(UbClass::DivByZero));
        // Dynamic-only classes are never refutable statically.
        assert!(!map.refutes(UbClass::OutOfBounds));
        assert!(!map.refutes(UbClass::UseAfterFree));
    }
}
