//! The shared micro abstract interpreter behind the three analyzer
//! analogs.
//!
//! Deliberately *intraprocedural* and heuristic — that is the point: the
//! paper's Table 3 shows static tools with partial recall and
//! non-negligible false positives, and both properties come from exactly
//! the limits modeled here (no interprocedural reasoning, shallow guard
//! recognition, may-analysis noise).

use crate::findings::{Defect, Finding, Tool};
use minc::ast::*;
use minc::sema::{is_lvalue, Builtin, CallTarget};
use minc::types::Type;
use minc::CheckedProgram;
use std::collections::HashMap;

/// How a tool treats dereferences of unchecked `malloc` results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MallocDerefPolicy {
    /// Never report (cppcheck-sim).
    Never,
    /// Report only if no branch at all intervenes (coverity-sim).
    IfUnguarded,
    /// Always report unless a literal `if (p == 0)` guard is seen
    /// (infer-sim — noisy).
    UnlessLiteralCheck,
}

/// Behavioural profile of one analyzer.
#[derive(Debug, Clone)]
pub struct Profile {
    /// The tool identity stamped on findings.
    pub tool: Tool,
    /// Report variables that are only *maybe* uninitialized (merge of an
    /// initializing and a non-initializing path).
    pub report_may_uninit: bool,
    /// Only report uninitialized uses when no branch was seen before the
    /// use (very conservative).
    pub straightline_uninit_only: bool,
    /// Report unknown/tainted indices into fixed arrays when unguarded.
    pub taint_oob: bool,
    /// Report signed arithmetic on tainted values that feeds sizes/indices.
    pub taint_overflow: bool,
    /// Report division by tainted/unknown values when unguarded.
    pub taint_div: bool,
    /// Policy for unchecked malloc dereferences.
    pub malloc_deref: MallocDerefPolicy,
    /// Report use-after-free / double-free on *maybe*-freed paths.
    pub may_free_issues: bool,
    /// Check printf format-string arity.
    pub fmt_checks: bool,
    /// Check suspicious API argument patterns.
    pub api_checks: bool,
    /// Check shift amounts against the operand width.
    pub shift_checks: bool,
    /// Check that value-returning functions return on every path.
    pub return_checks: bool,
}

impl Profile {
    /// The Coverity analog profile.
    pub fn coverity() -> Profile {
        Profile {
            tool: Tool::CoveritySim,
            report_may_uninit: false,
            straightline_uninit_only: false,
            taint_oob: true,
            taint_overflow: true,
            taint_div: true,
            malloc_deref: MallocDerefPolicy::IfUnguarded,
            may_free_issues: true,
            fmt_checks: true,
            api_checks: true,
            shift_checks: true,
            return_checks: true,
        }
    }

    /// The Cppcheck analog profile.
    pub fn cppcheck() -> Profile {
        Profile {
            tool: Tool::CppcheckSim,
            report_may_uninit: false,
            straightline_uninit_only: true,
            taint_oob: false,
            taint_overflow: false,
            taint_div: false,
            malloc_deref: MallocDerefPolicy::Never,
            may_free_issues: false,
            fmt_checks: true,
            api_checks: true,
            shift_checks: false,
            return_checks: false,
        }
    }

    /// The Infer analog profile.
    pub fn infer() -> Profile {
        Profile {
            tool: Tool::InferSim,
            report_may_uninit: true,
            straightline_uninit_only: false,
            taint_oob: false,
            taint_overflow: true,
            taint_div: false,
            malloc_deref: MallocDerefPolicy::UnlessLiteralCheck,
            may_free_issues: true,
            fmt_checks: false,
            api_checks: false,
            shift_checks: false,
            return_checks: false,
        }
    }
}

/// Runs the analyzer over a checked program.
pub fn analyze(checked: &CheckedProgram, profile: &Profile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &checked.program.functions {
        if profile.return_checks && f.ret != Type::Void && !always_returns(&f.body) {
            findings.push(Finding::new(
                profile.tool,
                Defect::MissingReturn,
                f.span,
                format!(
                    "`{}` can fall off the end without returning a value",
                    f.name
                ),
            ));
        }
        let mut a = Analyzer {
            checked,
            profile,
            findings: &mut findings,
            vars: vec![HashMap::new()],
            branch_seen: false,
            guard_depth: 0,
        };
        for p in &f.params {
            a.declare(&p.name, VarState::param(&p.ty));
        }
        a.stmt(&f.body);
    }
    findings
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tri {
    No,
    Maybe,
    Yes,
}

impl Tri {
    fn merge(a: Tri, b: Tri) -> Tri {
        if a == b {
            a
        } else {
            Tri::Maybe
        }
    }
}

#[derive(Debug, Clone)]
struct VarState {
    init: Tri,
    cst: Option<i64>,
    /// Declared element count for fixed arrays.
    array_len: Option<u64>,
    /// Heap pointer lifecycle.
    freed: Tri,
    is_heap: bool,
    null_checked: bool,
    from_malloc: bool,
    /// Derived from external input (taint).
    tainted: bool,
    is_ptr: bool,
}

impl VarState {
    fn uninit(ty: &Type) -> VarState {
        VarState {
            init: if matches!(ty, Type::Array(..) | Type::Struct(_)) {
                Tri::Yes
            } else {
                Tri::No
            },
            cst: None,
            array_len: match ty {
                Type::Array(_, n) => Some(*n),
                _ => None,
            },
            freed: Tri::No,
            is_heap: false,
            null_checked: false,
            from_malloc: false,
            tainted: false,
            is_ptr: ty.is_pointer(),
        }
    }

    fn param(ty: &Type) -> VarState {
        let mut v = VarState::uninit(ty);
        v.init = Tri::Yes;
        v.tainted = true; // parameters are attacker-influenced by default
        v
    }

    fn merge(a: &VarState, b: &VarState) -> VarState {
        VarState {
            init: Tri::merge(a.init, b.init),
            cst: if a.cst == b.cst { a.cst } else { None },
            array_len: a.array_len,
            freed: Tri::merge(a.freed, b.freed),
            is_heap: a.is_heap || b.is_heap,
            null_checked: a.null_checked && b.null_checked,
            from_malloc: a.from_malloc || b.from_malloc,
            tainted: a.tainted || b.tainted,
            is_ptr: a.is_ptr,
        }
    }
}

/// Abstract value of an expression.
#[derive(Debug, Clone, Default)]
struct AVal {
    cst: Option<i64>,
    tainted: bool,
    /// Name of the variable this value flows directly from (for pointer
    /// lifecycle checks).
    var: Option<String>,
    from_malloc: bool,
}

struct Analyzer<'a> {
    checked: &'a CheckedProgram,
    profile: &'a Profile,
    findings: &'a mut Vec<Finding>,
    vars: Vec<HashMap<String, VarState>>,
    branch_seen: bool,
    guard_depth: u32,
}

impl<'a> Analyzer<'a> {
    fn declare(&mut self, name: &str, st: VarState) {
        self.vars.last_mut().unwrap().insert(name.to_string(), st);
    }

    fn var(&self, name: &str) -> Option<&VarState> {
        self.vars.iter().rev().find_map(|s| s.get(name))
    }

    fn var_mut(&mut self, name: &str) -> Option<&mut VarState> {
        self.vars.iter_mut().rev().find_map(|s| s.get_mut(name))
    }

    fn report(&mut self, defect: Defect, span: minc::Span, msg: impl Into<String>) {
        let f = Finding::new(self.profile.tool, defect, span, msg);
        // One finding per (defect, line) keeps reports readable.
        if !self
            .findings
            .iter()
            .any(|g| g.defect == f.defect && g.span.line == f.span.line && g.tool == f.tool)
        {
            self.findings.push(f);
        }
    }

    fn snapshot(&self) -> Vec<HashMap<String, VarState>> {
        self.vars.clone()
    }

    fn merge_states(
        &mut self,
        a: Vec<HashMap<String, VarState>>,
        b: Vec<HashMap<String, VarState>>,
    ) {
        let mut merged = Vec::with_capacity(a.len());
        for (sa, sb) in a.into_iter().zip(b) {
            let mut out = HashMap::new();
            for (k, va) in sa {
                let m = match sb.get(&k) {
                    Some(vb) => VarState::merge(&va, vb),
                    None => va,
                };
                out.insert(k, m);
            }
            merged.push(out);
        }
        self.vars = merged;
    }

    // ---- statements ----

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl { name, ty, init, .. } => {
                let mut st = VarState::uninit(ty);
                if let Some(e) = init {
                    let v = self.expr(e);
                    st.init = Tri::Yes;
                    st.cst = v.cst;
                    st.tainted = v.tainted;
                    st.from_malloc = v.from_malloc;
                    st.is_heap = v.from_malloc;
                }
                self.declare(name, st);
            }
            StmtKind::Expr(e) => {
                self.expr(e);
            }
            StmtKind::If { cond, then, els } => {
                self.expr(cond);
                self.branch_seen = true;
                self.apply_guard(cond);
                let base = self.snapshot();
                self.guard_depth += 1;
                self.stmt(then);
                let after_then = self.snapshot();
                self.vars = base.clone();
                if let Some(e) = els {
                    self.stmt(e);
                }
                let after_else = self.snapshot();
                self.guard_depth -= 1;
                self.merge_states(after_then, after_else);
            }
            StmtKind::While { cond, body } | StmtKind::DoWhile { cond, body } => {
                self.expr(cond);
                self.branch_seen = true;
                let base = self.snapshot();
                self.guard_depth += 1;
                self.stmt(body);
                let after = self.snapshot();
                self.guard_depth -= 1;
                self.merge_states(base, after);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.vars.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i);
                }
                if let Some(c) = cond {
                    self.expr(c);
                }
                self.branch_seen = true;
                let base = self.snapshot();
                self.guard_depth += 1;
                self.stmt(body);
                if let Some(st) = step {
                    self.expr(st);
                }
                let after = self.snapshot();
                self.guard_depth -= 1;
                self.merge_states(base, after);
                self.vars.pop();
            }
            StmtKind::Return(Some(e)) => {
                self.expr(e);
            }
            StmtKind::Block(stmts) => {
                self.vars.push(HashMap::new());
                for st in stmts {
                    self.stmt(st);
                }
                self.vars.pop();
            }
            _ => {}
        }
    }

    /// Recognizes `if (p == 0) ...` / `if (p != 0)` / `if (p)` / bound
    /// guards and records null-checked-ness (shallow, by design).
    fn apply_guard(&mut self, cond: &Expr) {
        match &cond.kind {
            ExprKind::Binary { op, lhs, rhs } if op.is_equality() => {
                for side in [lhs, rhs] {
                    if let ExprKind::Var(n) = &side.kind {
                        if let Some(v) = self.var_mut(n) {
                            v.null_checked = true;
                        }
                    }
                }
            }
            ExprKind::Var(n) => {
                if let Some(v) = self.var_mut(n) {
                    v.null_checked = true;
                }
            }
            ExprKind::Unary {
                op: UnOp::Not,
                operand,
            } => {
                if let ExprKind::Var(n) = &operand.kind {
                    if let Some(v) = self.var_mut(n) {
                        v.null_checked = true;
                    }
                }
            }
            ExprKind::Logical { lhs, rhs, .. } => {
                self.apply_guard(lhs);
                self.apply_guard(rhs);
            }
            _ => {}
        }
    }

    // ---- expressions ----

    fn expr(&mut self, e: &Expr) -> AVal {
        match &e.kind {
            ExprKind::IntLit { value, .. } => AVal {
                cst: Some(*value),
                ..Default::default()
            },
            ExprKind::CharLit(c) => AVal {
                cst: Some(*c as i64),
                ..Default::default()
            },
            ExprKind::FloatLit(_) | ExprKind::StrLit(_) | ExprKind::Line => AVal::default(),
            ExprKind::Var(name) => self.read_var(name, e),
            ExprKind::Unary { op, operand } => {
                if *op == UnOp::Deref {
                    let v = self.expr(operand);
                    self.check_pointer_use(&v, e.span, "dereference");
                    return AVal {
                        tainted: v.tainted,
                        ..Default::default()
                    };
                }
                if *op == UnOp::Addr {
                    // &x: address-taken; do not count as a read.
                    return AVal {
                        var: var_name(operand),
                        ..Default::default()
                    };
                }
                let v = self.expr(operand);
                AVal {
                    cst: v.cst.map(|c| if *op == UnOp::Neg { -c } else { c }),
                    tainted: v.tainted,
                    ..Default::default()
                }
            }
            ExprKind::Binary { op, lhs, rhs } => self.binary(e, *op, lhs, rhs),
            ExprKind::Logical { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
                AVal::default()
            }
            ExprKind::Assign { op, target, value } => {
                let v = self.expr(value);
                if op.is_some() {
                    // Compound assignment reads the target too.
                    if let ExprKind::Var(n) = &target.kind {
                        self.read_var(n, target);
                    }
                }
                if let Some(n) = var_name(target) {
                    if let Some(st) = self.var_mut(&n) {
                        st.init = Tri::Yes;
                        st.cst = v.cst;
                        st.tainted = st.tainted || v.tainted;
                        if v.from_malloc {
                            st.from_malloc = true;
                            st.is_heap = true;
                            st.freed = Tri::No;
                            st.null_checked = false;
                        }
                        if v.cst == Some(0) && st.is_ptr {
                            st.null_checked = true; // explicit NULL assignment
                            st.freed = Tri::No;
                        }
                    }
                } else {
                    // Writing through a pointer/index: check the base. The
                    // target is evaluated exactly once, matching runtime
                    // semantics — analyzing it twice double-counts side
                    // effects such as `buf[i++] = v`.
                    self.check_write_target(target);
                }
                v
            }
            ExprKind::IncDec { inc, target, .. } => {
                if let ExprKind::Var(n) = &target.kind {
                    self.read_var(n, target);
                    let delta = if *inc { 1 } else { -1 };
                    if let Some(st) = self.var_mut(n) {
                        st.init = Tri::Yes;
                        st.cst = st.cst.map(|c| c + delta);
                    }
                }
                AVal::default()
            }
            ExprKind::Cond { cond, then, els } => {
                self.expr(cond);
                self.branch_seen = true;
                let a = self.expr(then);
                let b = self.expr(els);
                AVal {
                    tainted: a.tainted || b.tainted,
                    ..Default::default()
                }
            }
            ExprKind::Call { args, .. } => self.call(e, args),
            ExprKind::Index { base, index } => {
                let b = self.expr(base);
                let i = self.expr(index);
                self.check_index(base, &b, &i, e.span);
                self.check_pointer_use(&b, e.span, "index");
                AVal {
                    tainted: b.tainted || i.tainted,
                    ..Default::default()
                }
            }
            ExprKind::Member { base, .. } => {
                if !is_lvalue(base) {
                    self.expr(base);
                }
                AVal::default()
            }
            ExprKind::Arrow { base, .. } => {
                let b = self.expr(base);
                self.check_pointer_use(&b, e.span, "field access");
                AVal {
                    tainted: b.tainted,
                    ..Default::default()
                }
            }
            ExprKind::Cast { value, .. } => self.expr(value),
            ExprKind::SizeofType(_) | ExprKind::SizeofExpr(_) => AVal {
                cst: None,
                ..Default::default()
            },
        }
    }

    fn read_var(&mut self, name: &str, e: &Expr) -> AVal {
        let Some(st) = self.var(name).cloned() else {
            // Global: treated as initialized, untainted.
            return AVal {
                var: Some(name.to_string()),
                ..Default::default()
            };
        };
        let span = e.span;
        match st.init {
            Tri::No => {
                let ok_to_report = !self.profile.straightline_uninit_only || !self.branch_seen;
                if ok_to_report {
                    self.report(
                        Defect::Uninitialized,
                        span,
                        format!("`{name}` is used uninitialized"),
                    );
                }
            }
            Tri::Maybe if self.profile.report_may_uninit => {
                self.report(
                    Defect::Uninitialized,
                    span,
                    format!("`{name}` may be used uninitialized"),
                );
            }
            _ => {}
        }
        AVal {
            cst: st.cst,
            tainted: st.tainted,
            var: Some(name.to_string()),
            from_malloc: st.from_malloc,
        }
    }

    fn check_write_target(&mut self, target: &Expr) {
        match &target.kind {
            ExprKind::Index { base, index } => {
                let b = self.expr(base);
                let i = self.expr(index);
                self.check_index(base, &b, &i, target.span);
                self.check_pointer_use(&b, target.span, "write");
            }
            ExprKind::Unary {
                op: UnOp::Deref,
                operand,
            } => {
                let v = self.expr(operand);
                self.check_pointer_use(&v, target.span, "write through pointer");
            }
            ExprKind::Arrow { base, .. } => {
                let v = self.expr(base);
                self.check_pointer_use(&v, target.span, "field write");
            }
            _ => {}
        }
    }

    fn check_index(&mut self, base: &Expr, b: &AVal, i: &AVal, span: minc::Span) {
        // Fixed-size array bounds.
        let len = b
            .var
            .as_deref()
            .and_then(|n| self.var(n))
            .and_then(|st| st.array_len)
            .or_else(|| match &self.checked.types.get(&base.id) {
                Some(Type::Array(_, n)) => Some(*n),
                _ => None,
            });
        if let Some(len) = len {
            if let Some(c) = i.cst {
                if c < 0 || c as u64 >= len {
                    self.report(
                        Defect::OutOfBounds,
                        span,
                        format!("index {c} outside array of {len} elements"),
                    );
                }
            } else if self.profile.taint_oob && i.tainted && self.guard_depth == 0 {
                self.report(
                    Defect::OutOfBounds,
                    span,
                    "possibly out-of-bounds index from untrusted value".to_string(),
                );
            }
        }
    }

    fn check_pointer_use(&mut self, v: &AVal, span: minc::Span, what: &str) {
        if v.cst == Some(0) {
            self.report(Defect::NullDeref, span, format!("{what} of null pointer"));
            return;
        }
        let Some(name) = v.var.as_deref() else { return };
        let Some(st) = self.var(name).cloned() else {
            return;
        };
        match st.freed {
            Tri::Yes => {
                self.report(
                    Defect::UseAfterFree,
                    span,
                    format!("`{name}` used after free"),
                );
            }
            Tri::Maybe if self.profile.may_free_issues => {
                self.report(
                    Defect::UseAfterFree,
                    span,
                    format!("`{name}` may be used after free"),
                );
            }
            _ => {}
        }
        if st.from_malloc && !st.null_checked {
            let fire = match self.profile.malloc_deref {
                MallocDerefPolicy::Never => false,
                MallocDerefPolicy::IfUnguarded => !self.branch_seen,
                MallocDerefPolicy::UnlessLiteralCheck => true,
            };
            if fire {
                self.report(
                    Defect::NullDeref,
                    span,
                    format!("`{name}` from malloc dereferenced without null check"),
                );
            }
        }
    }

    fn binary(&mut self, e: &Expr, op: BinOp, lhs: &Expr, rhs: &Expr) -> AVal {
        let a = self.expr(lhs);
        let b = self.expr(rhs);
        match op {
            BinOp::Div | BinOp::Rem => {
                if b.cst == Some(0) {
                    self.report(Defect::DivByZero, e.span, "division by constant zero");
                } else if self.profile.taint_div
                    && b.cst.is_none()
                    && b.tainted
                    && self.guard_depth == 0
                {
                    self.report(
                        Defect::DivByZero,
                        e.span,
                        "possible division by zero (untrusted divisor)",
                    );
                }
            }
            BinOp::Shl | BinOp::Shr if self.profile.shift_checks => {
                let width: i64 = match self.checked.types.get(&lhs.id).map(|t| t.decay()) {
                    Some(Type::Long) => 64,
                    _ => 32,
                };
                if let Some(c) = b.cst {
                    if c < 0 || c >= width {
                        self.report(
                            Defect::BadShift,
                            e.span,
                            format!("shift by {c} on {width}-bit value"),
                        );
                    }
                } else if b.tainted && self.guard_depth == 0 {
                    self.report(
                        Defect::BadShift,
                        e.span,
                        "possibly out-of-range shift amount",
                    );
                }
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul => {
                let lt = self.checked.types.get(&lhs.id).map(|t| t.decay());
                let signed = lt.as_ref().map(|t| t.is_signed_integer()).unwrap_or(false);
                if self.profile.taint_overflow
                    && signed
                    && a.tainted
                    && b.tainted
                    && self.guard_depth == 0
                {
                    self.report(
                        Defect::IntegerOverflow,
                        e.span,
                        "possible signed overflow on untrusted operands",
                    );
                }
            }
            _ => {}
        }
        let cst = match (a.cst, b.cst) {
            (Some(x), Some(y)) => match op {
                BinOp::Add => Some(x.wrapping_add(y)),
                BinOp::Sub => Some(x.wrapping_sub(y)),
                BinOp::Mul => Some(x.wrapping_mul(y)),
                BinOp::Div if y != 0 => Some(x.wrapping_div(y)),
                _ => None,
            },
            _ => None,
        };
        AVal {
            cst,
            tainted: a.tainted || b.tainted,
            ..Default::default()
        }
    }

    fn call(&mut self, e: &Expr, args: &[Expr]) -> AVal {
        let target = self.checked.calls.get(&e.id).cloned();
        let vals: Vec<AVal> = args.iter().map(|a| self.expr(a)).collect();
        let Some(CallTarget::Builtin(b)) = target else {
            // User call: arguments may initialize pointed-to memory; the
            // result is unknown and tainted if any arg was.
            for (arg, v) in args.iter().zip(&vals) {
                let _ = v;
                if let ExprKind::Unary {
                    op: UnOp::Addr,
                    operand,
                } = &arg.kind
                {
                    if let Some(n) = var_name(operand) {
                        if let Some(st) = self.var_mut(&n) {
                            st.init = Tri::Yes;
                        }
                    }
                }
            }
            return AVal {
                tainted: vals.iter().any(|v| v.tainted),
                ..Default::default()
            };
        };
        match b {
            Builtin::Malloc => AVal {
                from_malloc: true,
                ..Default::default()
            },
            Builtin::Free => {
                if let Some(arg) = args.first() {
                    match &arg.kind {
                        ExprKind::Unary { op: UnOp::Addr, .. } => {
                            self.report(Defect::BadFree, e.span, "free of address of an object");
                        }
                        ExprKind::Var(n) => {
                            let st = self.var(n).cloned();
                            if let Some(st) = st {
                                if st.array_len.is_some() {
                                    self.report(Defect::BadFree, e.span, "free of a stack array");
                                } else if st.freed == Tri::Yes {
                                    self.report(
                                        Defect::DoubleFree,
                                        e.span,
                                        format!("`{n}` freed twice"),
                                    );
                                } else if st.freed == Tri::Maybe && self.profile.may_free_issues {
                                    self.report(
                                        Defect::DoubleFree,
                                        e.span,
                                        format!("`{n}` may be freed twice"),
                                    );
                                }
                                if let Some(stm) = self.var_mut(n) {
                                    stm.freed = Tri::Yes;
                                }
                            }
                        }
                        _ => {}
                    }
                }
                AVal::default()
            }
            Builtin::Getchar
            | Builtin::ReadInput
            | Builtin::InputSize
            | Builtin::Atoi
            | Builtin::Rand => {
                // Marks destination buffers initialized + tainted.
                if b == Builtin::ReadInput {
                    if let Some(arg) = args.first() {
                        if let Some(n) = var_name(arg) {
                            if let Some(st) = self.var_mut(&n) {
                                st.init = Tri::Yes;
                                st.tainted = true;
                            }
                        }
                    }
                }
                AVal {
                    tainted: true,
                    ..Default::default()
                }
            }
            Builtin::Printf => {
                if self.profile.fmt_checks {
                    self.check_printf(e, args);
                }
                AVal::default()
            }
            Builtin::Memset => {
                if self.profile.api_checks && args.len() == 3 {
                    // memset(p, value, 0) with a non-zero value argument:
                    // almost always swapped arguments (CWE-475 shape).
                    let second_nonzero = vals[1].cst.map(|c| c != 0).unwrap_or(true);
                    if vals[2].cst == Some(0) && second_nonzero {
                        self.report(
                            Defect::BadApiUsage,
                            e.span,
                            "memset with length 0 — arguments likely swapped",
                        );
                    }
                }
                self.mark_buffer_written(args.first());
                AVal::default()
            }
            Builtin::Memcpy | Builtin::Strcpy | Builtin::Strncpy => {
                // Constant-length overflow into fixed arrays.
                if let (Some(dst), Some(n)) = (args.first(), vals.get(2).or(Some(&AVal::default())))
                {
                    if let Some(name) = var_name(dst) {
                        let len = self.var(&name).and_then(|s| s.array_len);
                        if let (Some(len), Some(c)) = (len, n.cst) {
                            if b == Builtin::Memcpy && c as u64 > len {
                                self.report(
                                    Defect::OutOfBounds,
                                    e.span,
                                    format!("memcpy of {c} bytes into {len}-byte buffer"),
                                );
                            }
                        }
                        if b == Builtin::Strcpy {
                            if let Some(ExprKind::StrLit(s)) = args.get(1).map(|a| &a.kind) {
                                if let Some(len) = self.var(&name).and_then(|st| st.array_len) {
                                    if s.len() as u64 + 1 > len {
                                        self.report(
                                            Defect::OutOfBounds,
                                            e.span,
                                            format!(
                                                "strcpy of {}-byte literal into {len}-byte buffer",
                                                s.len() + 1
                                            ),
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
                self.mark_buffer_written(args.first());
                AVal::default()
            }
            _ => AVal::default(),
        }
    }

    fn mark_buffer_written(&mut self, arg: Option<&Expr>) {
        if let Some(n) = arg.and_then(var_name) {
            if let Some(st) = self.var_mut(&n) {
                st.init = Tri::Yes;
            }
        }
    }

    fn check_printf(&mut self, e: &Expr, args: &[Expr]) {
        let Some(ExprKind::StrLit(fmt)) = args.first().map(|a| &a.kind) else {
            return;
        };
        let mut needed = 0usize;
        let mut i = 0;
        while i < fmt.len() {
            if fmt[i] == b'%' {
                if fmt.get(i + 1) == Some(&b'%') {
                    i += 2;
                    continue;
                }
                needed += 1;
            }
            i += 1;
        }
        if needed != args.len() - 1 {
            self.report(
                Defect::FormatMismatch,
                e.span,
                format!(
                    "format string expects {needed} argument(s), got {}",
                    args.len() - 1
                ),
            );
        }
    }
}

/// Conservative all-paths-return check.
fn always_returns(s: &Stmt) -> bool {
    match &s.kind {
        StmtKind::Return(_) => true,
        StmtKind::Block(stmts) => stmts.iter().any(always_returns),
        StmtKind::If {
            then, els: Some(e), ..
        } => always_returns(then) && always_returns(e),
        _ => false,
    }
}

fn var_name(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::Var(n) => Some(n.clone()),
        ExprKind::Cast { value, .. } => var_name(value),
        _ => None,
    }
}
