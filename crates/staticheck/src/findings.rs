//! Finding model shared by the three analyzer analogs.

use minc::Span;
use std::fmt;

/// Which analyzer produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tool {
    /// Coverity analog: value-range heuristics, flags "possible" issues
    /// aggressively (non-negligible false positives).
    CoveritySim,
    /// Cppcheck analog: conservative syntactic patterns, few false
    /// positives, low recall.
    CppcheckSim,
    /// Infer analog: memory-shape tracking, strong on pointers, noisy on
    /// may-issues.
    InferSim,
    /// CompDiff's own IR-level unstable-code lint (dataflow over optimized
    /// IR plus optimizer rewrite provenance). Implemented in the
    /// `staticheck-ir` crate; this variant exists so all four tool columns
    /// share one `Finding` surface.
    CompdiffLint,
}

impl fmt::Display for Tool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tool::CoveritySim => "coverity-sim",
            Tool::CppcheckSim => "cppcheck-sim",
            Tool::InferSim => "infer-sim",
            Tool::CompdiffLint => "compdiff-lint",
        };
        f.write_str(s)
    }
}

/// Defect categories the analyzers report. The Juliet harness maps these
/// onto CWE groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Defect {
    /// Out-of-bounds read/write (stack or heap).
    OutOfBounds,
    /// Use of an uninitialized variable.
    Uninitialized,
    /// Division by zero.
    DivByZero,
    /// Integer overflow/underflow.
    IntegerOverflow,
    /// Use after free.
    UseAfterFree,
    /// Double free.
    DoubleFree,
    /// Free of non-heap memory.
    BadFree,
    /// Null pointer dereference.
    NullDeref,
    /// Suspicious API usage (e.g. swapped `memset` arguments).
    BadApiUsage,
    /// Format string / variadic argument mismatch.
    FormatMismatch,
    /// Relational comparison of unrelated pointers.
    PointerCompare,
    /// Pointer subtraction across objects.
    PointerSubtraction,
    /// Shift amount out of range for the operand width.
    BadShift,
    /// A value-returning function can fall off its end.
    MissingReturn,
    /// A loop whose optimized trip count disagrees with the source trip
    /// count (the seeded RQ2 miscompilation; only the IR lint's rewrite
    /// provenance channel can report this).
    MiscompiledLoop,
}

impl fmt::Display for Defect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Defect::OutOfBounds => "out-of-bounds",
            Defect::Uninitialized => "uninitialized-use",
            Defect::DivByZero => "division-by-zero",
            Defect::IntegerOverflow => "integer-overflow",
            Defect::UseAfterFree => "use-after-free",
            Defect::DoubleFree => "double-free",
            Defect::BadFree => "bad-free",
            Defect::NullDeref => "null-dereference",
            Defect::BadApiUsage => "bad-api-usage",
            Defect::FormatMismatch => "format-mismatch",
            Defect::PointerCompare => "pointer-compare",
            Defect::PointerSubtraction => "pointer-subtraction",
            Defect::BadShift => "bad-shift",
            Defect::MissingReturn => "missing-return",
            Defect::MiscompiledLoop => "miscompiled-loop",
        };
        f.write_str(s)
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Reporting tool.
    pub tool: Tool,
    /// Defect class.
    pub defect: Defect,
    /// Location.
    pub span: Span,
    /// Human-readable detail.
    pub message: String,
}

impl Finding {
    /// Creates a finding.
    pub fn new(tool: Tool, defect: Defect, span: Span, message: impl Into<String>) -> Self {
        Finding {
            tool,
            defect,
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} at {}: {}",
            self.tool, self.defect, self.span, self.message
        )
    }
}
