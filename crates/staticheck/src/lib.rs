//! # staticheck — static analyzer analogs for the Juliet comparison
//!
//! The CompDiff paper (Table 3) compares against three widely used static
//! C/C++ analyzers: Coverity, Cppcheck, and Infer. Those tools are
//! proprietary or impractical to run against MinC, so this crate provides
//! behavioural analogs with the characteristics the paper measures:
//!
//! * **coverity-sim** — value-range/taint heuristics; decent recall on
//!   arithmetic classes, non-negligible false positives;
//! * **cppcheck-sim** — conservative syntactic checks; few false
//!   positives, low recall, strong on API-usage patterns;
//! * **infer-sim** — memory-shape (malloc/free/null) may-analysis; high
//!   recall on pointer classes, the noisiest of the three.
//!
//! All three are deliberately intraprocedural — the single most important
//! reason real static tools miss bugs that dynamic tools catch.
//!
//! ```
//! let checked = minc::check(
//!     "int main() { int a[4]; a[9] = 1; return 0; }",
//! ).unwrap();
//! let findings = staticheck::run_tool(&checked, staticheck::Tool::CppcheckSim);
//! assert!(findings.iter().any(|f| f.defect == staticheck::Defect::OutOfBounds));
//! ```

#![warn(missing_docs)]
pub mod analysis;
pub mod findings;

pub use analysis::{analyze, MallocDerefPolicy, Profile};
pub use findings::{Defect, Finding, Tool};

use minc::CheckedProgram;

/// Runs one analyzer analog over a checked program.
pub fn run_tool(checked: &CheckedProgram, tool: Tool) -> Vec<Finding> {
    let profile = match tool {
        Tool::CoveritySim => Profile::coverity(),
        Tool::CppcheckSim => Profile::cppcheck(),
        Tool::InferSim => Profile::infer(),
        // The IR-level lint works on optimized IR, not the AST; it lives in
        // the `staticheck-ir` crate (see `staticheck_ir::UnstableLint`).
        Tool::CompdiffLint => return Vec::new(),
    };
    analyze(checked, &profile)
}

/// Runs all three analyzers.
pub fn run_all(checked: &CheckedProgram) -> Vec<Finding> {
    let mut out = Vec::new();
    for tool in [Tool::CoveritySim, Tool::CppcheckSim, Tool::InferSim] {
        out.extend(run_tool(checked, tool));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_for(src: &str, tool: Tool) -> Vec<Finding> {
        let checked = minc::check(src).unwrap();
        run_tool(&checked, tool)
    }

    fn has(findings: &[Finding], defect: Defect) -> bool {
        findings.iter().any(|f| f.defect == defect)
    }

    #[test]
    fn constant_oob_found_by_all() {
        let src = "int main() { int a[4]; a[7] = 1; return a[7]; }";
        for tool in [Tool::CoveritySim, Tool::CppcheckSim, Tool::InferSim] {
            assert!(has(&findings_for(src, tool), Defect::OutOfBounds), "{tool}");
        }
    }

    #[test]
    fn straightline_uninit_found_by_all() {
        let src = "int main() { int u; return u + 1; }";
        for tool in [Tool::CoveritySim, Tool::CppcheckSim, Tool::InferSim] {
            assert!(
                has(&findings_for(src, tool), Defect::Uninitialized),
                "{tool}"
            );
        }
    }

    #[test]
    fn branchy_uninit_lost_by_cppcheck() {
        let src = r#"
            int main() {
                int u;
                if (input_size() > 3) { u = 1; }
                return u;
            }
        "#;
        assert!(!has(
            &findings_for(src, Tool::CppcheckSim),
            Defect::Uninitialized
        ));
        // Infer reports may-uninit.
        assert!(has(
            &findings_for(src, Tool::InferSim),
            Defect::Uninitialized
        ));
    }

    #[test]
    fn infer_may_uninit_is_a_false_positive_on_full_init() {
        // Both branches initialize; the merge is Yes, not Maybe — no FP here.
        let both = r#"
            int main() {
                int u;
                if (input_size() > 3) { u = 1; } else { u = 2; }
                return u;
            }
        "#;
        assert!(!has(
            &findings_for(both, Tool::InferSim),
            Defect::Uninitialized
        ));
        // Initialization through a helper is invisible intraprocedurally:
        // a classic static-analysis false positive (on a *good* variant).
        let helper = r#"
            void init(int* p) { *p = 5; }
            int main() {
                int u;
                init(&u);
                if (input_size() > 100) { u = 1; }
                return u;
            }
        "#;
        // &u passed to a call marks it initialized in our model — so no FP
        // here; the FP case is Maybe-merges, covered above.
        assert!(!has(
            &findings_for(helper, Tool::InferSim),
            Defect::Uninitialized
        ));
    }

    #[test]
    fn division_by_zero_paths() {
        let direct = "int main() { int z = 0; return 5 / z; }";
        assert!(has(
            &findings_for(direct, Tool::CppcheckSim),
            Defect::DivByZero
        ));
        // Tainted divisor: only coverity-sim speculates.
        let tainted = "int main() { int z = getchar(); return 5 / z; }";
        assert!(has(
            &findings_for(tainted, Tool::CoveritySim),
            Defect::DivByZero
        ));
        assert!(!has(
            &findings_for(tainted, Tool::CppcheckSim),
            Defect::DivByZero
        ));
        // Guarded: coverity-sim stays quiet (guard_depth heuristic).
        let guarded = "int main() { int z = getchar(); if (z != 0) { return 5 / z; } return 0; }";
        assert!(!has(
            &findings_for(guarded, Tool::CoveritySim),
            Defect::DivByZero
        ));
    }

    #[test]
    fn use_after_free_and_double_free() {
        let uaf = r#"
            int main() {
                int* p = (int*)malloc(8L);
                p[0] = 1;
                free(p);
                return p[0];
            }
        "#;
        assert!(has(
            &findings_for(uaf, Tool::InferSim),
            Defect::UseAfterFree
        ));
        assert!(has(
            &findings_for(uaf, Tool::CoveritySim),
            Defect::UseAfterFree
        ));

        let df = r#"
            int main() {
                int* p = (int*)malloc(8L);
                free(p);
                free(p);
                return 0;
            }
        "#;
        assert!(has(&findings_for(df, Tool::InferSim), Defect::DoubleFree));
    }

    #[test]
    fn bad_free_of_stack() {
        let src = "int main() { int x; int a[2]; free(&x); free(a); return 0; }";
        let f = findings_for(src, Tool::CppcheckSim);
        assert!(has(&f, Defect::BadFree));
    }

    #[test]
    fn infer_null_deref_is_aggressive() {
        let src = r#"
            int main() {
                int* p = (int*)malloc(8L);
                p[0] = 1;
                free(p);
                return 0;
            }
        "#;
        // No null check after malloc: infer reports, cppcheck never does.
        assert!(has(&findings_for(src, Tool::InferSim), Defect::NullDeref));
        assert!(!has(
            &findings_for(src, Tool::CppcheckSim),
            Defect::NullDeref
        ));
        // With a check, infer is satisfied.
        let checked_src = r#"
            int main() {
                int* p = (int*)malloc(8L);
                if (p == 0) { return 1; }
                p[0] = 1;
                free(p);
                return 0;
            }
        "#;
        assert!(!has(
            &findings_for(checked_src, Tool::InferSim),
            Defect::NullDeref
        ));
    }

    #[test]
    fn printf_arity_check() {
        let src = r#"int main() { printf("%d %d\n", 1); return 0; }"#;
        assert!(has(
            &findings_for(src, Tool::CppcheckSim),
            Defect::FormatMismatch
        ));
        assert!(!has(
            &findings_for(src, Tool::InferSim),
            Defect::FormatMismatch
        ));
    }

    #[test]
    fn memset_swapped_args() {
        let src = "int main() { char b[8]; memset(b, 8, 0); return 0; }";
        assert!(has(
            &findings_for(src, Tool::CppcheckSim),
            Defect::BadApiUsage
        ));
    }

    #[test]
    fn strcpy_literal_overflow() {
        let src = r#"int main() { char b[4]; strcpy(b, "too long for four"); return 0; }"#;
        assert!(has(
            &findings_for(src, Tool::CppcheckSim),
            Defect::OutOfBounds
        ));
    }

    #[test]
    fn coverity_tainted_index_speculation() {
        // Unguarded tainted index: coverity-sim flags (FP-prone heuristic).
        let src = r#"
            int main() {
                int a[8];
                int i = getchar();
                a[0] = 0;
                return a[i];
            }
        "#;
        assert!(has(
            &findings_for(src, Tool::CoveritySim),
            Defect::OutOfBounds
        ));
        assert!(!has(
            &findings_for(src, Tool::CppcheckSim),
            Defect::OutOfBounds
        ));
        // Guarded version quiets it (and is the FP test for weaker guards).
        let guarded = r#"
            int main() {
                int a[8];
                int i = getchar();
                if (i >= 0) { if (i < 8) { return a[i]; } }
                return 0;
            }
        "#;
        assert!(!has(
            &findings_for(guarded, Tool::CoveritySim),
            Defect::OutOfBounds
        ));
    }

    #[test]
    fn decrement_updates_tracked_constant() {
        // Regression: `i--` was modeled as `i++`, so the in-bounds access
        // below was flagged as index 11 of a 10-element array.
        let ok = "int main() { int a[10]; int i = 10; i--; a[i] = 1; return a[i]; }";
        for tool in [Tool::CoveritySim, Tool::CppcheckSim, Tool::InferSim] {
            assert!(!has(&findings_for(ok, tool), Defect::OutOfBounds), "{tool}");
        }
        // Positive control: incrementing really does walk out of bounds.
        let bad = "int main() { int a[10]; int i = 9; i++; a[i] = 1; return 0; }";
        assert!(has(
            &findings_for(bad, Tool::CppcheckSim),
            Defect::OutOfBounds
        ));
    }

    #[test]
    fn write_target_side_effects_counted_once() {
        // Regression: a non-variable assignment target was analyzed twice,
        // so `a[i++] = v` advanced the tracked constant for `i` twice and
        // the follow-up in-bounds access was reported as `a[4]`.
        let src = "int main() { int a[4]; int i = 2; a[i++] = 1; a[i] = 2; return 0; }";
        for tool in [Tool::CoveritySim, Tool::CppcheckSim, Tool::InferSim] {
            assert!(
                !has(&findings_for(src, tool), Defect::OutOfBounds),
                "{tool}"
            );
        }
    }

    #[test]
    fn pointer_write_checked_exactly_once() {
        // `*p = v` goes through the single non-variable-target path; the
        // use-after-free must surface exactly once.
        let src = r#"
            int main() {
                int* p = (int*)malloc(8L);
                free(p);
                *p = 1;
                return 0;
            }
        "#;
        let f = findings_for(src, Tool::InferSim);
        let uaf = f
            .iter()
            .filter(|f| f.defect == Defect::UseAfterFree)
            .count();
        assert_eq!(uaf, 1, "{f:?}");
    }

    #[test]
    fn compdiff_lint_tool_is_ast_silent() {
        // The fourth tool column analyzes optimized IR (staticheck-ir); the
        // AST entry point reports nothing for it.
        let checked = minc::check("int main() { int u; return u; }").unwrap();
        assert!(run_tool(&checked, Tool::CompdiffLint).is_empty());
    }

    #[test]
    fn clean_program_has_no_findings() {
        let src = r#"
            int sum(int* v, int n) {
                int i;
                int acc = 0;
                for (i = 0; i < n; i++) { acc += v[i]; }
                return acc;
            }
            int main() {
                int a[4];
                int i;
                for (i = 0; i < 4; i++) { a[i] = i; }
                printf("%d\n", sum(a, 4));
                return 0;
            }
        "#;
        let checked = minc::check(src).unwrap();
        let all = run_all(&checked);
        assert!(all.is_empty(), "{all:?}");
    }
}
