//! Golden tests pinning *how the three analyzer analogs disagree* on a set
//! of hand-written MinC snippets. Table 3's story depends on these
//! divergences (coverity-sim speculates on taint, cppcheck-sim is
//! syntactic/conservative, infer-sim chases memory shapes), so each test
//! pins the exact per-tool defect multiset rather than a single boolean.

use staticheck::{run_tool, Tool};

/// Sorted `defect` names one tool reports for `src`.
fn defects(src: &str, tool: Tool) -> Vec<String> {
    let checked = minc::check(src).unwrap();
    let mut v: Vec<String> = run_tool(&checked, tool)
        .iter()
        .map(|f| f.defect.to_string())
        .collect();
    v.sort();
    v
}

/// Asserts the full coverity/cppcheck/infer defect multisets for `src`.
fn golden(src: &str, coverity: &[&str], cppcheck: &[&str], infer: &[&str]) {
    assert_eq!(defects(src, Tool::CoveritySim), coverity, "coverity-sim");
    assert_eq!(defects(src, Tool::CppcheckSim), cppcheck, "cppcheck-sim");
    assert_eq!(defects(src, Tool::InferSim), infer, "infer-sim");
}

/// May-uninit: one path initializes, the merge is *maybe*. Only infer-sim
/// reports may-issues; coverity-sim and cppcheck-sim both stay quiet.
#[test]
fn golden_may_uninit() {
    golden(
        r#"
        int main() {
            int u;
            if (input_size() > 3) { u = 1; }
            return u;
        }
        "#,
        &[],
        &[],
        &["uninitialized-use"],
    );
}

/// Unchecked malloc dereference on a straight line: coverity-sim
/// (IfUnguarded) and infer-sim (UnlessLiteralCheck) both flag it;
/// cppcheck-sim never models allocation failure.
#[test]
fn golden_unchecked_malloc_deref() {
    golden(
        r#"
        int main() {
            int* p = (int*)malloc(8L);
            p[0] = 1;
            free(p);
            return 0;
        }
        "#,
        &["null-dereference"],
        &[],
        &["null-dereference"],
    );
}

/// The same dereference behind a branch: coverity-sim's unguarded
/// heuristic is satisfied by *any* earlier branch, infer-sim still wants a
/// literal null check — the classic precision/recall split.
#[test]
fn golden_malloc_deref_after_unrelated_branch() {
    golden(
        r#"
        int main() {
            int* p = (int*)malloc(8L);
            if (input_size() > 4) { printf("big\n"); }
            p[0] = 1;
            free(p);
            return 0;
        }
        "#,
        &[],
        &[],
        &["null-dereference"],
    );
}

/// Unguarded tainted index into a fixed array: only coverity-sim
/// speculates (its characteristic false-positive source).
#[test]
fn golden_tainted_index() {
    golden(
        r#"
        int main() {
            int a[8];
            int i = getchar();
            a[0] = 0;
            return a[i];
        }
        "#,
        &["out-of-bounds"],
        &[],
        &[],
    );
}

/// Unguarded tainted divisor: coverity-sim alone reports possible
/// division by zero.
#[test]
fn golden_tainted_divisor() {
    golden(
        "int main() { int z = getchar(); return 5 / z; }",
        &["division-by-zero"],
        &[],
        &[],
    );
}

/// Definite use-after-free: all three report the read-after-free, and the
/// unchecked-malloc policies layer their null-deref reports on top
/// (coverity-sim and infer-sim only).
#[test]
fn golden_use_after_free() {
    golden(
        r#"
        int main() {
            int* p = (int*)malloc(8L);
            p[0] = 1;
            free(p);
            return p[0];
        }
        "#,
        &["null-dereference", "null-dereference", "use-after-free"],
        &["use-after-free"],
        &["null-dereference", "null-dereference", "use-after-free"],
    );
}
