//! Generates each target's MinC source from its [`TargetSpec`].
//!
//! Every target is an input-parsing program in the style of the paper's
//! fuzzing subjects: a magic header, a command byte, an argument byte,
//! and baseline functionality (a payload checksum), plus one dispatch arm
//! per injected bug. Each arm is gated on the command byte, so bugs are
//! reachable but require the fuzzer to discover the magic and command.

use crate::catalog::{BugKind, InjectedBug, TargetSpec};
use std::fmt::Write;

/// A fully built target: source, ground-truth triggers, fuzzing seeds.
#[derive(Debug, Clone)]
pub struct Target {
    /// The specification.
    pub spec: TargetSpec,
    /// Generated MinC source.
    pub src: String,
    /// Fuzzing seed inputs (valid header, benign command).
    pub seeds: Vec<Vec<u8>>,
}

impl Target {
    /// The ground-truth input that triggers `bug`.
    pub fn trigger(&self, bug: &InjectedBug) -> Vec<u8> {
        vec![self.spec.magic[0], self.spec.magic[1], bug.cmd, b'A']
    }

    /// Source lines (the Table 4 LoC column).
    pub fn loc(&self) -> usize {
        self.src.lines().count()
    }
}

/// Builds the MinC program for a spec.
pub fn build(spec: &TargetSpec) -> Target {
    let mut top = String::new();
    let mut main = String::new();

    top.push_str("int SINK;\n");

    // Shared helpers, emitted at most once.
    let needs = |k: BugKind| spec.bugs.iter().any(|b| b.kind == k);
    if needs(BugKind::EvalOrder) {
        top.push_str(
            "char* fmt_num(int v) {\n\
             \x20   static char sbuf[16];\n\
             \x20   int i = 0;\n\
             \x20   if (v < 0) { v = -v; }\n\
             \x20   if (v == 0) { sbuf[i] = '0'; i++; }\n\
             \x20   while (v > 0) { sbuf[i] = (char)('0' + v % 10); v /= 10; i++; }\n\
             \x20   sbuf[i] = '\\0';\n\
             \x20   return sbuf;\n\
             }\n",
        );
    }
    if needs(BugKind::PtrCmpGlobals) {
        top.push_str("int G_A;\nlong G_B;\n");
    }
    if needs(BugKind::MiscPad) {
        top.push_str("struct padrec { char c; int v; };\n");
    }

    let _ = writeln!(main, "int main() {{");
    let _ = writeln!(main, "    char buf[96];");
    let _ = writeln!(main, "    long n = read_input(buf, 96L);");
    let _ = writeln!(
        main,
        "    if (n < 4) {{ printf(\"usage: {} <input>\\n\"); return 1; }}",
        spec.name
    );
    let _ = writeln!(
        main,
        "    if (buf[0] != '{}') {{ printf(\"bad magic\\n\"); return 1; }}",
        spec.magic[0] as char
    );
    let _ = writeln!(
        main,
        "    if (buf[1] != '{}') {{ printf(\"bad magic2\\n\"); return 1; }}",
        spec.magic[1] as char
    );
    let _ = writeln!(main, "    int cmd = (int)buf[2];");
    let _ = writeln!(main, "    int arg = (int)buf[3];");
    // Baseline functionality: a rolling checksum over the payload, plus a
    // tag counter — enough structure for coverage-guided exploration.
    let _ = writeln!(main, "    int cs = 0;");
    let _ = writeln!(main, "    int tags = 0;");
    let _ = writeln!(main, "    int i;");
    let _ = writeln!(main, "    for (i = 4; i < (int)n; i++) {{");
    let _ = writeln!(main, "        cs = cs * 31 + (int)buf[i];");
    let _ = writeln!(main, "        if (buf[i] == ':') {{ tags++; }}");
    let _ = writeln!(main, "    }}");

    let mut first = true;
    for bug in &spec.bugs {
        let kw = if first { "if" } else { "else if" };
        first = false;
        let _ = writeln!(main, "    {kw} (cmd == {}) {{", bug.cmd);
        main.push_str(&snippet(bug.kind));
        let _ = writeln!(main, "    }}");
    }
    let _ = writeln!(
        main,
        "    else {{ printf(\"ok cmd=%d cs=%d tags=%d\\n\", cmd, cs, tags); }}"
    );
    let _ = writeln!(main, "    return 0;");
    let _ = writeln!(main, "}}");

    let src = format!("{top}{main}");
    let mut seeds = vec![
        vec![spec.magic[0], spec.magic[1], b'z', b'0'],
        vec![
            spec.magic[0],
            spec.magic[1],
            b'z',
            b'0',
            b':',
            b'1',
            b':',
            b'2',
        ],
    ];
    seeds.push(b"????".to_vec());
    Target {
        spec: spec.clone(),
        src,
        seeds,
    }
}

/// The dispatch-arm body for one bug kind. Eight-space indented.
fn snippet(kind: BugKind) -> String {
    use BugKind::*;
    match kind {
        EvalOrder => "        printf(\"who-is %s tell %s\\n\", fmt_num(arg + 11), fmt_num(arg + 22));\n"
            .to_string(),
        UninitPrint => "        int u;\n        printf(\"meta %d\\n\", u);\n".to_string(),
        UninitBranch => "        int u;\n        if ((u & 1) == 1) { printf(\"odd\\n\"); } else { printf(\"even\\n\"); }\n        printf(\"bits %d\\n\", u & 255);\n"
            .to_string(),
        IntWiden => "        int a = (arg + 200) * 1000000;\n        int b = 37;\n        long x = (long)(a * b);\n        printf(\"x=%ld\\n\", x);\n"
            .to_string(),
        IntOverflowCheck => "        int off = (cs & 268435455) | 1073741824;\n        int len = 1073741824;\n        if (off + len < off) { printf(\"overflow-guard\\n\"); return 1; }\n        printf(\"sum %d\\n\", off + len);\n"
            .to_string(),
        MemOobStack => "        int tail = 9;\n        char lb[16];\n        int k;\n        for (k = 0; k < 16; k++) { lb[k] = 'L'; }\n        lb[24 + (arg & 3)] = 'X';\n        printf(\"t=%d\\n\", tail);\n"
            .to_string(),
        MemOobHeap => "        char* hp = (char*)malloc(24L);\n        int k;\n        for (k = 0; k < 24; k++) { hp[k] = 'H'; }\n        printf(\"h=%d\\n\", (int)hp[25 + (arg & 3)]);\n        free(hp);\n"
            .to_string(),
        MemUaf => "        char* up = (char*)malloc(16L);\n        int k;\n        for (k = 0; k < 16; k++) { up[k] = 'U'; }\n        free(up);\n        printf(\"u=%d\\n\", (int)up[9]);\n"
            .to_string(),
        PtrCmpGlobals => "        G_A = arg;\n        G_B = (long)arg;\n        if ((char*)&G_A < (char*)&G_B) { printf(\"a-first\\n\"); } else { printf(\"b-first\\n\"); }\n"
            .to_string(),
        LineMacro => "        printf(\"parse error near byte %d at line %d\\n\", arg,\n            __LINE__);\n"
            .to_string(),
        MiscPad => "        struct padrec pr;\n        pr.c = 'x';\n        pr.v = arg;\n        char pb[8];\n        memcpy(pb, &pr, 8L);\n        printf(\"pad %d\\n\", (int)pb[2]);\n"
            .to_string(),
        MiscRand => "        printf(\"r=%d\\n\", rand() % 100);\n".to_string(),
        MiscPtrPrint => "        char* mp = (char*)malloc(8L);\n        printf(\"at %p\\n\", mp);\n        free(mp);\n"
            .to_string(),
        MiscAddrTrunc => "        int lv = 5;\n        printf(\"addr %d\\n\", (int)(long)&lv + lv);\n"
            .to_string(),
        MiscFloatPow => "        double fb = pow(1.5, (double)(arg & 7) + 9.5);\n        printf(\"f=%f\\n\", fb);\n"
            .to_string(),
        MiscCompilerGcc => "        int acc = 0;\n        int t;\n        for (t = 0; t < 7; t++) { acc += (t + arg) * 3; }\n        printf(\"acc=%d\\n\", acc);\n"
            .to_string(),
        MiscCompilerClang => "        int acc = 0;\n        int t;\n        for (t = 0; t < 5; t++) { acc += (arg + 40) / (t + 1); }\n        printf(\"acc=%d\\n\", acc);\n"
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::catalog;

    #[test]
    fn all_targets_compile() {
        for spec in catalog() {
            let t = build(&spec);
            minc::check(&t.src)
                .unwrap_or_else(|e| panic!("{} does not compile: {e}\n{}", spec.name, t.src));
        }
    }

    #[test]
    fn loc_is_plausible() {
        for spec in catalog() {
            let t = build(&spec);
            assert!(t.loc() >= 20, "{} too small: {}", spec.name, t.loc());
        }
    }

    #[test]
    fn triggers_reach_their_bug_arm() {
        // The trigger's first three bytes select magic + cmd.
        let spec = &catalog()[0];
        let t = build(spec);
        let b = &spec.bugs[0];
        let trig = t.trigger(b);
        assert_eq!(&trig[..2], &spec.magic);
        assert_eq!(trig[2], b.cmd);
    }
}
