//! The 23 target programs and their 78 injected bugs.
//!
//! Mirrors the paper's Table 4 (projects, input types, versions) and
//! Table 5 (bug inventory by root cause: EvalOrder 2, UninitMem 27,
//! IntError 8, MemError 13, PointerCmp 1, LINE 6, Misc 21 = 78 reported;
//! 65 confirmed; 52 fixed). Each bug carries ground truth: the input that
//! triggers it and which sanitizer (if any) can catch it in principle —
//! the basis of Table 6's overlap measurement.

use minc_vm::SanitizerKind;
use std::fmt;

/// Root-cause categories (the columns of Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Conflicting side effects across call arguments.
    EvalOrder,
    /// Use of uninitialized memory.
    UninitMem,
    /// Integer overflow/underflow instability.
    IntError,
    /// Buffer overflow / use-after-free style corruption.
    MemError,
    /// Relational comparison of pointers to different objects.
    PointerCmp,
    /// Implementation-defined `__LINE__` attribution.
    Line,
    /// Everything else: seeded compiler miscompilations, float
    /// imprecision, implementation-defined `rand()`, printed addresses,
    /// struct padding bytes.
    Misc,
}

impl Category {
    /// Table 5 column order.
    pub const ALL: [Category; 7] = [
        Category::EvalOrder,
        Category::UninitMem,
        Category::IntError,
        Category::MemError,
        Category::PointerCmp,
        Category::Line,
        Category::Misc,
    ];

    /// Table 5 header label.
    pub fn label(self) -> &'static str {
        match self {
            Category::EvalOrder => "EvalOrder",
            Category::UninitMem => "UninitMem",
            Category::IntError => "IntError",
            Category::MemError => "MemError",
            Category::PointerCmp => "PointerCmp",
            Category::Line => "LINE",
            Category::Misc => "Misc.",
        }
    }

    /// Paper Table 5 reported counts.
    pub fn paper_reported(self) -> usize {
        match self {
            Category::EvalOrder => 2,
            Category::UninitMem => 27,
            Category::IntError => 8,
            Category::MemError => 13,
            Category::PointerCmp => 1,
            Category::Line => 6,
            Category::Misc => 21,
        }
    }

    /// Paper Table 5 confirmed counts.
    pub fn paper_confirmed(self) -> usize {
        match self {
            Category::EvalOrder => 2,
            Category::UninitMem => 19,
            Category::IntError => 8,
            Category::MemError => 13,
            Category::PointerCmp => 1,
            Category::Line => 5,
            Category::Misc => 17,
        }
    }

    /// Paper Table 5 fixed counts.
    pub fn paper_fixed(self) -> usize {
        match self {
            Category::EvalOrder => 2,
            Category::UninitMem => 15,
            Category::IntError => 6,
            Category::MemError => 12,
            Category::PointerCmp => 1,
            Category::Line => 5,
            Category::Misc => 9,
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The concrete code shape injected for a bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BugKind {
    /// Two calls returning the same static buffer as printf arguments.
    EvalOrder,
    /// Print an uninitialized local (MSan's blind spot).
    UninitPrint,
    /// Branch on an uninitialized value and print the branch taken (also
    /// prints low bits, so CompDiff always sees it; MSan catches it too).
    UninitBranch,
    /// `(long)(a * b)` with 32-bit overflow — the widening divergence.
    IntWiden,
    /// `if (off + len < off)` overflow check that `-O2` deletes.
    IntOverflowCheck,
    /// Near out-of-bounds stack write with an observable victim.
    MemOobStack,
    /// Near out-of-bounds heap read of implementation-specific junk.
    MemOobHeap,
    /// Read of freed memory (allocator metadata).
    MemUaf,
    /// Relational comparison of two globals whose order differs across
    /// implementations.
    PtrCmpGlobals,
    /// `__LINE__` in a multi-line statement.
    LineMacro,
    /// Print struct padding bytes (unspecified values).
    MiscPad,
    /// Print `rand()` (implementation-defined sequence).
    MiscRand,
    /// Print a pointer with `%p`.
    MiscPtrPrint,
    /// Print a pointer truncated to `int`.
    MiscAddrTrunc,
    /// Print `pow()` results (clang-sim -O3 uses the fast path).
    MiscFloatPow,
    /// Trip-count-7 multiply loop (seeded gcc-sim -O3 unroll bug).
    MiscCompilerGcc,
    /// Trip-count-5 divide loop (seeded clang-sim -O3 unroll bug).
    MiscCompilerClang,
}

impl BugKind {
    /// The Table 5 category this kind belongs to.
    pub fn category(self) -> Category {
        use BugKind::*;
        match self {
            EvalOrder => Category::EvalOrder,
            UninitPrint | UninitBranch => Category::UninitMem,
            IntWiden | IntOverflowCheck => Category::IntError,
            MemOobStack | MemOobHeap | MemUaf => Category::MemError,
            PtrCmpGlobals => Category::PointerCmp,
            LineMacro => Category::Line,
            MiscPad | MiscRand | MiscPtrPrint | MiscAddrTrunc | MiscFloatPow | MiscCompilerGcc
            | MiscCompilerClang => Category::Misc,
        }
    }

    /// Which sanitizer can catch this bug in principle (Table 6 ground
    /// truth): ASan for memory errors, UBSan for integer errors, MSan for
    /// branch-visible uninitialized uses; nothing for the rest.
    pub fn sanitizer(self) -> Option<SanitizerKind> {
        use BugKind::*;
        match self {
            MemOobStack | MemOobHeap | MemUaf => Some(SanitizerKind::Asan),
            IntWiden | IntOverflowCheck => Some(SanitizerKind::Ubsan),
            UninitBranch => Some(SanitizerKind::Msan),
            _ => None,
        }
    }
}

/// One injected bug.
#[derive(Debug, Clone)]
pub struct InjectedBug {
    /// Stable id, e.g. `tcpdump-evalorder-0`.
    pub id: String,
    /// Code shape.
    pub kind: BugKind,
    /// Command byte that reaches the bug (input byte 2).
    pub cmd: u8,
    /// Paper-status: confirmed by upstream.
    pub confirmed: bool,
    /// Paper-status: fixed by upstream.
    pub fixed: bool,
}

/// One target program specification.
///
/// `name` is owned so specs can describe dynamically produced programs
/// (the `progen` pipeline) as well as the static Table 4 inventory.
#[derive(Debug, Clone)]
pub struct TargetSpec {
    /// Project name (Table 4), or a generated-program label.
    pub name: String,
    /// Input type (Table 4).
    pub input_type: &'static str,
    /// Version (Table 4).
    pub version: &'static str,
    /// Two magic bytes the input must start with.
    pub magic: [u8; 2],
    /// The injected bugs.
    pub bugs: Vec<InjectedBug>,
}

fn bug(name: &str, idx: usize, kind: BugKind, cmd: u8) -> InjectedBug {
    InjectedBug {
        id: format!(
            "{name}-{}-{idx}",
            kind.category().label().to_lowercase().replace('.', "")
        ),
        kind,
        cmd,
        confirmed: false,
        fixed: false,
    }
}

/// Builds the full catalog: 23 targets, 78 bugs matching Table 5's
/// category inventory, with confirmed/fixed labels assigned to match the
/// paper's totals.
pub fn catalog() -> Vec<TargetSpec> {
    use BugKind::*;
    // (name, input type, version, magic, [(kind, cmd)...])
    type Def = (
        &'static str,
        &'static str,
        &'static str,
        [u8; 2],
        Vec<BugKind>,
    );
    let defs: Vec<Def> = vec![
        (
            "tcpdump",
            "Network packet",
            "4.99.1",
            *b"TC",
            vec![EvalOrder, EvalOrder, UninitPrint],
        ),
        (
            "wireshark",
            "Network packet",
            "3.4.5",
            *b"WS",
            vec![UninitBranch, UninitBranch, LineMacro, MiscPad, MiscPad],
        ),
        (
            "objdump",
            "Binary file",
            "2.36.1",
            *b"OB",
            vec![MiscPtrPrint, MemOobHeap, UninitBranch],
        ),
        (
            "readelf",
            "Binary file",
            "2.36.1",
            *b"RE",
            vec![PtrCmpGlobals, LineMacro, UninitBranch],
        ),
        (
            "nm-new",
            "Binary file",
            "2.36.1",
            *b"NM",
            vec![MemOobStack, UninitBranch, MiscAddrTrunc],
        ),
        (
            "sysdump",
            "Binary file",
            "2.36.1",
            *b"SY",
            vec![UninitBranch, MiscPad, MiscRand],
        ),
        (
            "openssl",
            "Binary file",
            "3.0.0",
            *b"OS",
            vec![MemUaf, IntWiden, MiscRand],
        ),
        (
            "ClamAV",
            "Binary file",
            "0.103.3",
            *b"CA",
            vec![MemOobHeap, IntOverflowCheck, UninitBranch],
        ),
        (
            "libsndfile",
            "Audio",
            "1.0.31",
            *b"SN",
            vec![MiscFloatPow, MemOobStack],
        ),
        (
            "libzip",
            "Compress tool",
            "v1.8.0",
            *b"ZI",
            vec![IntWiden, MemUaf, UninitBranch],
        ),
        (
            "brotli",
            "Compress tool",
            "v1.0.9",
            *b"BR",
            vec![MiscFloatPow, IntOverflowCheck],
        ),
        (
            "php",
            "PHP",
            "7.4.26",
            *b"PH",
            vec![LineMacro, LineMacro, UninitPrint, UninitBranch, MiscPad],
        ),
        (
            "MuJS",
            "JavaScript",
            "1.1.3",
            *b"MU",
            vec![
                MiscCompilerGcc,
                MiscCompilerGcc,
                MiscCompilerClang,
                UninitPrint,
            ],
        ),
        (
            "pdftotext",
            "PDF",
            "4.03",
            *b"PT",
            vec![UninitBranch, UninitBranch, MemOobHeap],
        ),
        (
            "pdftoppm",
            "PDF",
            "21.11.0",
            *b"PP",
            vec![MemOobStack, UninitBranch, MiscRand],
        ),
        ("jq", "json", "1.6", *b"JQ", vec![UninitBranch, IntWiden]),
        (
            "exiv2",
            "Exiv2 image",
            "0.27.5",
            *b"EX",
            vec![UninitPrint, UninitPrint, UninitPrint, MemUaf],
        ),
        (
            "libtiff",
            "Tiff image",
            "4.3.0",
            *b"TI",
            vec![MiscRand, LineMacro, UninitBranch, MemOobHeap],
        ),
        (
            "ImageMagick",
            "Image",
            "7.1.0-23",
            *b"IM",
            vec![
                LineMacro,
                MiscFloatPow,
                UninitBranch,
                UninitBranch,
                MemOobStack,
            ],
        ),
        (
            "grok",
            "JPEG 2000",
            "9.7.0",
            *b"GR",
            vec![MiscFloatPow, UninitBranch, IntOverflowCheck],
        ),
        (
            "libxml2",
            "XML",
            "2.9.12",
            *b"XM",
            vec![UninitBranch, UninitBranch, MemOobHeap, MiscPad],
        ),
        (
            "curl",
            "URL",
            "7.80.0",
            *b"CU",
            vec![IntWiden, MiscAddrTrunc],
        ),
        (
            "gpac",
            "Video",
            "2.0.0",
            *b"GP",
            vec![
                MemUaf,
                UninitBranch,
                UninitBranch,
                IntOverflowCheck,
                MiscPad,
                MiscPtrPrint,
            ],
        ),
    ];

    let mut targets: Vec<TargetSpec> = defs
        .into_iter()
        .map(|(name, input_type, version, magic, kinds)| {
            let bugs = kinds
                .into_iter()
                .enumerate()
                .map(|(i, k)| bug(name, i, k, b'a' + i as u8))
                .collect();
            TargetSpec {
                name: name.to_string(),
                input_type,
                version,
                magic,
                bugs,
            }
        })
        .collect();

    // Assign confirmed/fixed labels per category to match the paper's
    // Table 5 totals, deterministically (first-N within each category in
    // catalog order).
    for cat in Category::ALL {
        let mut confirmed_left = cat.paper_confirmed();
        let mut fixed_left = cat.paper_fixed();
        for t in &mut targets {
            for b in &mut t.bugs {
                if b.kind.category() != cat {
                    continue;
                }
                if confirmed_left > 0 {
                    b.confirmed = true;
                    confirmed_left -= 1;
                }
                if fixed_left > 0 && b.confirmed {
                    b.fixed = true;
                    fixed_left -= 1;
                }
            }
        }
    }
    targets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_three_targets_seventy_eight_bugs() {
        let cat = catalog();
        assert_eq!(cat.len(), 23);
        let total: usize = cat.iter().map(|t| t.bugs.len()).sum();
        assert_eq!(total, 78);
    }

    #[test]
    fn category_inventory_matches_table5() {
        let cat = catalog();
        for c in Category::ALL {
            let n: usize = cat
                .iter()
                .flat_map(|t| &t.bugs)
                .filter(|b| b.kind.category() == c)
                .count();
            assert_eq!(n, c.paper_reported(), "{c}");
        }
    }

    #[test]
    fn confirmed_fixed_match_table5() {
        let cat = catalog();
        for c in Category::ALL {
            let bugs: Vec<_> = cat
                .iter()
                .flat_map(|t| &t.bugs)
                .filter(|b| b.kind.category() == c)
                .collect();
            let confirmed = bugs.iter().filter(|b| b.confirmed).count();
            let fixed = bugs.iter().filter(|b| b.fixed).count();
            assert_eq!(confirmed, c.paper_confirmed(), "{c} confirmed");
            assert_eq!(fixed, c.paper_fixed(), "{c} fixed");
        }
        // Fixed bugs are a subset of confirmed ones.
        assert!(cat
            .iter()
            .flat_map(|t| &t.bugs)
            .all(|b| !b.fixed || b.confirmed));
    }

    #[test]
    fn sanitizer_ground_truth_matches_table6() {
        // Table 6: MemError 13/13 ASan, IntError 8/8 UBSan, UninitMem 21/27
        // MSan, everything else 0 -> 42 of 78.
        let cat = catalog();
        let bugs: Vec<_> = cat.iter().flat_map(|t| &t.bugs).collect();
        let by = |k: SanitizerKind| {
            bugs.iter()
                .filter(|b| b.kind.sanitizer() == Some(k))
                .count()
        };
        assert_eq!(by(SanitizerKind::Asan), 13);
        assert_eq!(by(SanitizerKind::Ubsan), 8);
        assert_eq!(by(SanitizerKind::Msan), 21);
        let none = bugs.iter().filter(|b| b.kind.sanitizer().is_none()).count();
        assert_eq!(none, 78 - 42);
    }

    #[test]
    fn bug_ids_unique_and_cmds_unique_per_target() {
        let cat = catalog();
        let mut ids = std::collections::HashSet::new();
        for t in &cat {
            let mut cmds = std::collections::HashSet::new();
            for b in &t.bugs {
                assert!(ids.insert(b.id.clone()), "duplicate id {}", b.id);
                assert!(cmds.insert(b.cmd), "duplicate cmd in {}", t.name);
            }
        }
    }

    #[test]
    fn magic_bytes_unique() {
        let cat = catalog();
        let magics: std::collections::HashSet<[u8; 2]> = cat.iter().map(|t| t.magic).collect();
        assert_eq!(magics.len(), 23);
    }
}
