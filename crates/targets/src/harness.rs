//! Verification and fuzzing harnesses behind Tables 4, 5, 6 and Figure 2.

use crate::builder::{build, Target};
use crate::catalog::{catalog, Category};
use compdiff::{CompDiff, CompDiffAfl, DiffConfig, HashVector};
use fuzzing::FuzzConfig;
use minc_vm::{ExitStatus, SanitizerKind, VmConfig};

/// Builds all 23 targets.
pub fn build_all() -> Vec<Target> {
    catalog().iter().map(build).collect()
}

/// Ground-truth verification of one bug: does CompDiff diverge on the
/// trigger input, and does each sanitizer report on it?
#[derive(Debug, Clone)]
pub struct BugVerdict {
    /// Bug id.
    pub id: String,
    /// Category.
    pub category: Category,
    /// CompDiff finds a divergence on the trigger input.
    pub compdiff: bool,
    /// Sanitizers that reported on the trigger input (asan, ubsan, msan).
    pub sanitizers: [bool; 3],
    /// Per-implementation output hashes (Figure 2 input).
    pub hashes: HashVector,
    /// Paper-status labels.
    pub confirmed: bool,
    /// Paper-status labels.
    pub fixed: bool,
}

/// Verifies every bug of one target.
pub fn verify_target(target: &Target, vm: &VmConfig) -> Vec<BugVerdict> {
    let cfg = DiffConfig {
        vm: vm.clone(),
        ..Default::default()
    };
    let diff = CompDiff::from_source_default(&target.src, cfg)
        .unwrap_or_else(|e| panic!("{} does not compile: {e}", target.spec.name));
    let san_bin = sanitizers::compile_sanitized(&target.src).expect("sanitized build");
    target
        .spec
        .bugs
        .iter()
        .map(|bug| {
            let trigger = target.trigger(bug);
            let outcome = diff.run_input(&trigger);
            let kinds = [
                SanitizerKind::Asan,
                SanitizerKind::Ubsan,
                SanitizerKind::Msan,
            ];
            let mut sans = [false; 3];
            for (k, out) in kinds.iter().zip(sans.iter_mut()) {
                let r = sanitizers::run_sanitized(&san_bin, &trigger, vm, *k);
                *out = matches!(r.status, ExitStatus::Sanitizer(_));
            }
            BugVerdict {
                id: bug.id.clone(),
                category: bug.kind.category(),
                compdiff: outcome.divergent,
                sanitizers: sans,
                hashes: outcome.hashes,
                confirmed: bug.confirmed,
                fixed: bug.fixed,
            }
        })
        .collect()
}

/// Verifies all bugs across all targets.
pub fn verify_all(vm: &VmConfig) -> Vec<BugVerdict> {
    build_all()
        .iter()
        .flat_map(|t| verify_target(t, vm))
        .collect()
}

/// Table 5 in the paper's layout: bug counts per root-cause category.
#[derive(Debug, Clone)]
pub struct Table5 {
    /// `(category, reported, confirmed, fixed, compdiff_verified)` rows.
    pub rows: Vec<(Category, usize, usize, usize, usize)>,
}

/// Aggregates verdicts into Table 5.
pub fn table5(verdicts: &[BugVerdict]) -> Table5 {
    let rows = Category::ALL
        .iter()
        .map(|&c| {
            let in_cat: Vec<&BugVerdict> = verdicts.iter().filter(|v| v.category == c).collect();
            let reported = in_cat.len();
            let confirmed = in_cat.iter().filter(|v| v.confirmed).count();
            let fixed = in_cat.iter().filter(|v| v.fixed).count();
            let verified = in_cat.iter().filter(|v| v.compdiff).count();
            (c, reported, confirmed, fixed, verified)
        })
        .collect();
    Table5 { rows }
}

impl Table5 {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("{:<12}", ""));
        for (c, ..) in &self.rows {
            s.push_str(&format!("{:>11}", c.label()));
        }
        s.push_str(&format!("{:>8}\n", "Total"));
        for (label, pick) in [
            ("Reported", 1usize),
            ("Confirmed", 2),
            ("Fixed", 3),
            ("Verified", 4),
        ] {
            s.push_str(&format!("{label:<12}"));
            let mut total = 0;
            for row in &self.rows {
                let v = [row.1, row.2, row.3, row.4][pick - 1];
                total += v;
                s.push_str(&format!("{v:>11}"));
            }
            s.push_str(&format!("{total:>8}\n"));
        }
        s
    }
}

/// Table 6: of the CompDiff-detected bugs, how many each sanitizer also
/// detects (measured on the trigger inputs, like the paper's manual
/// cross-check of sanitizer fuzzing reports).
#[derive(Debug, Clone)]
pub struct Table6 {
    /// `(row label, asan, ubsan, msan, sanitizer total, compdiff total)`.
    pub rows: Vec<(String, usize, usize, usize, usize, usize)>,
}

/// Builds Table 6 from verdicts.
pub fn table6(verdicts: &[BugVerdict]) -> Table6 {
    let detected: Vec<&BugVerdict> = verdicts.iter().filter(|v| v.compdiff).collect();
    let mut rows = Vec::new();
    for (label, cat) in [
        ("MemError", Category::MemError),
        ("IntError", Category::IntError),
        ("UninitMem", Category::UninitMem),
    ] {
        let in_cat: Vec<&&BugVerdict> = detected.iter().filter(|v| v.category == cat).collect();
        let a = in_cat.iter().filter(|v| v.sanitizers[0]).count();
        let u = in_cat.iter().filter(|v| v.sanitizers[1]).count();
        let m = in_cat.iter().filter(|v| v.sanitizers[2]).count();
        let any = in_cat
            .iter()
            .filter(|v| v.sanitizers.iter().any(|&s| s))
            .count();
        rows.push((label.to_string(), a, u, m, any, in_cat.len()));
    }
    let rest: Vec<&&BugVerdict> = detected
        .iter()
        .filter(|v| {
            !matches!(
                v.category,
                Category::MemError | Category::IntError | Category::UninitMem
            )
        })
        .collect();
    let rest_any = rest
        .iter()
        .filter(|v| v.sanitizers.iter().any(|&s| s))
        .count();
    rows.push(("Remaining bugs".to_string(), 0, 0, 0, rest_any, rest.len()));
    let tot_any: usize = rows.iter().map(|r| r.4).sum();
    let tot_cd: usize = rows.iter().map(|r| r.5).sum();
    rows.push(("Total".to_string(), 0, 0, 0, tot_any, tot_cd));
    Table6 { rows }
}

impl Table6 {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{:<16} {:>6} {:>6} {:>6} {:>10} {:>9}\n",
            "CompDiff", "ASan", "UBSan", "MSan", "San Total", "CompDiff"
        );
        for (label, a, u, m, any, cd) in &self.rows {
            s.push_str(&format!(
                "{label:<16} {a:>6} {u:>6} {m:>6} {any:>10} {cd:>9}\n"
            ));
        }
        s
    }
}

/// Result of a fuzzing campaign on one target.
#[derive(Debug, Clone)]
pub struct FuzzFinding {
    /// Target name.
    pub target: String,
    /// Bug ids found (matched by magic+cmd of saved discrepancy inputs).
    pub found: Vec<String>,
    /// Fuzzer executions used.
    pub execs: u64,
    /// Discrepancy inputs saved.
    pub diffs_saved: usize,
}

/// Runs CompDiff-AFL++ on one target and matches discrepancy inputs back
/// to the injected bugs.
pub fn fuzz_target(target: &Target, max_execs: u64, seed: u64) -> FuzzFinding {
    let afl = CompDiffAfl::from_source_default(
        &target.src,
        FuzzConfig {
            max_execs,
            seed,
            max_input_len: 16,
            // The format's magic token, as an AFL user would supply via -x.
            dictionary: vec![target.spec.magic.to_vec()],
            ..Default::default()
        },
        DiffConfig::default(),
    )
    .expect("target compiles");
    let stats = afl.run(&target.seeds);
    let mut found: Vec<String> = Vec::new();
    for input in &stats.campaign.oracle_finds {
        if input.len() < 3 || input[..2] != target.spec.magic {
            continue;
        }
        for bug in &target.spec.bugs {
            if input[2] == bug.cmd && !found.contains(&bug.id) {
                found.push(bug.id.clone());
            }
        }
    }
    FuzzFinding {
        target: target.spec.name.to_string(),
        found,
        execs: stats.campaign.execs,
        diffs_saved: stats.store.reports().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_injected_bug_is_compdiff_verifiable() {
        // The repository's headline end-to-end property: all 78 injected
        // bugs produce a divergence on their trigger input.
        let verdicts = verify_all(&VmConfig::default());
        assert_eq!(verdicts.len(), 78);
        let missed: Vec<&str> = verdicts
            .iter()
            .filter(|v| !v.compdiff)
            .map(|v| v.id.as_str())
            .collect();
        assert!(
            missed.is_empty(),
            "bugs CompDiff misses on triggers: {missed:?}"
        );
    }

    #[test]
    fn sanitizer_overlap_matches_ground_truth() {
        let verdicts = verify_all(&VmConfig::default());
        let t6 = table6(&verdicts);
        // MemError 13/13 ASan, IntError 8/8 UBSan, UninitMem 21/27 MSan.
        assert_eq!(t6.rows[0].1, 13, "{}", t6.render());
        assert_eq!(t6.rows[1].2, 8, "{}", t6.render());
        assert_eq!(t6.rows[2].3, 21, "{}", t6.render());
        // Remaining 30 bugs: no sanitizer.
        assert_eq!(t6.rows[3].4, 0, "{}", t6.render());
        assert_eq!(t6.rows[3].5, 30, "{}", t6.render());
    }

    #[test]
    fn table5_totals() {
        let verdicts = verify_all(&VmConfig::default());
        let t5 = table5(&verdicts);
        let reported: usize = t5.rows.iter().map(|r| r.1).sum();
        let confirmed: usize = t5.rows.iter().map(|r| r.2).sum();
        let fixed: usize = t5.rows.iter().map(|r| r.3).sum();
        // Note: the paper's Table 5 prints a "Fixed" total of 52, but its
        // own per-category row (2+15+6+12+1+5+9) sums to 50; we reproduce
        // the per-category values (see EXPERIMENTS.md).
        assert_eq!((reported, confirmed, fixed), (78, 65, 50));
    }

    #[test]
    fn fuzzing_finds_bugs_in_a_small_target() {
        // tcpdump: two EvalOrder bugs plus an uninit print, behind a
        // 2-byte magic and a command byte; give the fuzzer a fair budget.
        let t = build(&catalog()[0]);
        let f = fuzz_target(&t, 30_000, 7);
        assert!(
            !f.found.is_empty(),
            "fuzzer found nothing in {} execs ({} diffs saved)",
            f.execs,
            f.diffs_saved
        );
    }
}
