//! # targets — 23 synthetic fuzzing subjects with 78 injected bugs
//!
//! The paper evaluates CompDiff-AFL++ on 23 open-source C/C++ projects
//! (tcpdump, wireshark, binutils, openssl, php, MuJS, …) and reports 78
//! real bugs across seven root-cause categories (Table 5). Those projects
//! cannot run on the MinC substrate, so this crate builds 23 synthetic
//! stand-ins mirroring the paper's Table 4 inventory — same names, input
//! domains, and version labels — each an input-parsing program with
//! injected bugs whose category inventory matches Table 5 *exactly*
//! (EvalOrder 2, UninitMem 27, IntError 8, MemError 13, PointerCmp 1,
//! LINE 6, Misc 21) and whose sanitizer detectability matches Table 6
//! (42 of 78 catchable by a sanitizer, 36 CompDiff-unique).
//!
//! Every bug ships ground truth: a trigger input and the sanitizer (if
//! any) that can catch it, so the experiment harness can both *verify*
//! (fast, deterministic) and *fuzz* (the paper's workflow).
//!
//! ```
//! let targets = targets::build_all();
//! assert_eq!(targets.len(), 23);
//! let bugs: usize = targets.iter().map(|t| t.spec.bugs.len()).sum();
//! assert_eq!(bugs, 78);
//! ```

#![warn(missing_docs)]
pub mod builder;
pub mod catalog;
pub mod harness;
pub mod source;

pub use builder::{build, Target};
pub use catalog::{catalog, BugKind, Category, InjectedBug, TargetSpec};
pub use harness::{
    build_all, fuzz_target, table5, table6, verify_all, verify_target, BugVerdict, FuzzFinding,
    Table5, Table6,
};
pub use source::{
    dir_source, target_from_source, CatalogSource, SharedSource, StaticSource, TargetSource,
};
