//! The `TargetSource` seam: where campaigns get their programs from.
//!
//! The paper fuzzes a *fixed* catalog of 23 targets; the evolutionary
//! program generator (`crates/progen`) produces an unbounded stream of
//! fresh ones. Both are just suppliers of built [`Target`]s, so the
//! campaign and lint paths consume this trait instead of calling
//! [`catalog()`](crate::catalog::catalog) directly:
//!
//! - [`CatalogSource`] — the static 23-target Table 4 inventory.
//! - [`StaticSource`] — any pre-built list (generated programs, test
//!   fixtures, catalog + extras).
//! - [`dir_source`] — loads `*.mc` files from a directory (the handoff
//!   format `compdiff progen` writes), validating each through the MinC
//!   frontend up front.
//!
//! [`SharedSource`] is the `Arc`-shared handle configs hold; it keeps
//! `CampaignConfig` cloneable and `Debug` while the trait object stays
//! behind it.

use crate::builder::{build, Target};
use crate::catalog::{catalog, TargetSpec};
use std::path::Path;
use std::sync::Arc;

/// A supplier of built targets. Implementations must be cheap to query
/// repeatedly or must cache internally; `targets()` returns owned values
/// because campaign workers outlive the borrow.
pub trait TargetSource: Send + Sync {
    /// Short human label ("catalog", "progen:out/", ...).
    fn label(&self) -> String;

    /// The built targets, in a deterministic order.
    fn targets(&self) -> Vec<Target>;
}

/// The static catalog as a `TargetSource`: 23 targets, 78 injected bugs.
#[derive(Debug, Clone, Copy, Default)]
pub struct CatalogSource;

impl TargetSource for CatalogSource {
    fn label(&self) -> String {
        "catalog".to_string()
    }

    fn targets(&self) -> Vec<Target> {
        catalog().iter().map(build).collect()
    }
}

/// A fixed, pre-built target list (generated programs, fixtures, or a
/// catalog-plus-extras composition).
#[derive(Debug, Clone)]
pub struct StaticSource {
    label: String,
    targets: Vec<Target>,
}

impl StaticSource {
    /// Wraps an explicit target list.
    pub fn new(label: impl Into<String>, targets: Vec<Target>) -> Self {
        StaticSource {
            label: label.into(),
            targets,
        }
    }
}

impl TargetSource for StaticSource {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn targets(&self) -> Vec<Target> {
        self.targets.clone()
    }
}

/// Builds a target from raw MinC source (no injected-bug ground truth):
/// the adapter generated programs use to enter the campaign pipeline.
///
/// The spec carries no bugs and a fixed `"PG"` magic (the fuzzer treats
/// the magic as a dictionary token; generated programs read raw input, so
/// any token works). Seeds are a deterministic minimal set.
///
/// # Errors
///
/// Returns the frontend diagnostic when `src` does not check.
pub fn target_from_source(name: &str, src: &str) -> Result<Target, String> {
    minc::check(src).map_err(|e| format!("{name}: {e}"))?;
    Ok(Target {
        spec: TargetSpec {
            name: name.to_string(),
            input_type: "Generated",
            version: "progen",
            magic: *b"PG",
            bugs: Vec::new(),
        },
        src: src.to_string(),
        seeds: vec![Vec::new(), b"PG\x00\x00".to_vec(), b"????".to_vec()],
    })
}

/// Loads every `*.mc` file under `dir` (sorted by file name, so the
/// order — and everything derived from it — is deterministic) as a
/// [`StaticSource`]. Each file is validated through the frontend; an
/// unparsable file fails the whole load rather than being skipped
/// silently.
///
/// # Errors
///
/// Returns a message naming the directory or file on I/O and frontend
/// failures.
pub fn dir_source(dir: &Path) -> Result<StaticSource, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut files: Vec<std::path::PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "mc"))
        .collect();
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "generated".to_string());
        out.push(target_from_source(&format!("gen-{stem}"), &src)?);
    }
    Ok(StaticSource::new(format!("dir:{}", dir.display()), out))
}

/// The `Arc`-shared handle configs hold. Cloneable and `Debug` (prints
/// the source label), defaulting to the static catalog.
#[derive(Clone)]
pub struct SharedSource(Arc<dyn TargetSource>);

impl SharedSource {
    /// Wraps any source.
    pub fn new(source: impl TargetSource + 'static) -> Self {
        SharedSource(Arc::new(source))
    }

    /// The underlying source.
    pub fn get(&self) -> &dyn TargetSource {
        self.0.as_ref()
    }
}

impl Default for SharedSource {
    fn default() -> Self {
        SharedSource::new(CatalogSource)
    }
}

impl std::fmt::Debug for SharedSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedSource({})", self.0.label())
    }
}

#[cfg(test)]
mod tests {
    // test-only: unwraps in this module assert test invariants.
    use super::*;

    #[test]
    fn catalog_source_matches_catalog() {
        let ts = CatalogSource.targets();
        assert_eq!(ts.len(), 23);
        assert_eq!(CatalogSource.label(), "catalog");
    }

    #[test]
    fn target_from_source_validates() {
        let t = target_from_source("gen-ok", "int main() { return 0; }").unwrap();
        assert_eq!(t.spec.name, "gen-ok");
        assert!(t.spec.bugs.is_empty());
        assert!(target_from_source("gen-bad", "int main( {").is_err());
    }

    #[test]
    fn dir_source_loads_sorted_mc_files() {
        let dir = std::env::temp_dir().join(format!("compdiff-src-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("b.mc"), "int main() { return 2; }").unwrap();
        std::fs::write(dir.join("a.mc"), "int main() { return 1; }").unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let src = dir_source(&dir).unwrap();
        let names: Vec<String> = src.targets().iter().map(|t| t.spec.name.clone()).collect();
        assert_eq!(names, vec!["gen-a", "gen-b"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shared_source_default_is_catalog() {
        let s = SharedSource::default();
        assert_eq!(s.get().targets().len(), 23);
        assert!(format!("{s:?}").contains("catalog"));
    }
}
