//! Injectable time sources.
//!
//! Every timestamp and latency the telemetry layer records flows through
//! the [`Clock`] trait, so tests (and the campaign determinism check) can
//! substitute a [`TestClock`] and obtain byte-identical event streams
//! across runs, while production uses the monotonic wall clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond time source.
///
/// Implementations must be cheap (`now_micros` sits on per-exec paths)
/// and thread-safe; values are relative to an arbitrary epoch, so only
/// differences and ordering are meaningful.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Microseconds since this clock's epoch.
    fn now_micros(&self) -> u64;
}

/// The production clock: microseconds since construction, via
/// [`Instant`] (monotonic, immune to wall-clock steps).
#[derive(Debug)]
pub struct MonotonicClock {
    start: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        MonotonicClock {
            start: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_micros(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

/// A deterministic clock for tests: returns a programmed value,
/// optionally advancing by a fixed step per reading.
///
/// With `step == 0` (see [`TestClock::fixed`]) every reading is the same
/// value, which makes event streams independent of how many readings any
/// code path takes — the strongest reproducibility mode, used by the
/// campaign determinism test.
#[derive(Debug)]
pub struct TestClock {
    now: AtomicU64,
    step: u64,
}

impl TestClock {
    /// A clock frozen at `at` microseconds.
    pub fn fixed(at: u64) -> Self {
        TestClock {
            now: AtomicU64::new(at),
            step: 0,
        }
    }

    /// A clock that starts at `start` and advances `step` microseconds on
    /// every reading.
    pub fn stepping(start: u64, step: u64) -> Self {
        TestClock {
            now: AtomicU64::new(start),
            step,
        }
    }

    /// Manually advances the clock by `micros`.
    pub fn advance(&self, micros: u64) {
        self.now.fetch_add(micros, Ordering::Relaxed);
    }
}

impl Clock for TestClock {
    fn now_micros(&self) -> u64 {
        self.now.fetch_add(self.step, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_never_goes_backward() {
        let c = MonotonicClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn fixed_clock_is_constant() {
        let c = TestClock::fixed(42);
        assert_eq!(c.now_micros(), 42);
        assert_eq!(c.now_micros(), 42);
        c.advance(8);
        assert_eq!(c.now_micros(), 50);
    }

    #[test]
    fn stepping_clock_advances_per_reading() {
        let c = TestClock::stepping(100, 10);
        assert_eq!(c.now_micros(), 100);
        assert_eq!(c.now_micros(), 110);
        assert_eq!(c.now_micros(), 120);
    }
}
