//! Observability for the CompDiff stack: a metric registry plus an event
//! tracer, both std-only and deterministic under test clocks.
//!
//! The paper's evaluation (§4) is built from aggregate run telemetry —
//! execs/sec, per-implementation cost, dedup counts. This crate provides
//! the layer that produces those numbers from live runs:
//!
//! - [`MetricRegistry`]: named atomic [`Counter`]s, [`Gauge`]s, and
//!   log2-bucketed [`Histogram`]s. Handles are resolved once by name;
//!   updating is lock-free relaxed atomics, cheap enough for
//!   per-execution paths.
//! - [`Recorder`]: a span/event sink. The production implementation
//!   streams JSONL rendered with `compdiff::json`; the no-op
//!   implementation makes disabled telemetry near-zero cost behind the
//!   same trait.
//! - [`Clock`]: the injectable time source. Tests use [`TestClock`]
//!   (fixed or stepping) so recorded streams are byte-identical across
//!   runs; production uses [`MonotonicClock`].
//!
//! The [`Telemetry`] facade ties the three together and is what
//! instrumented code holds (via `Arc`):
//!
//! ```
//! use telemetry::{Telemetry, TestClock};
//! use compdiff::Json;
//!
//! let tel = Telemetry::with_buffer(TestClock::fixed(7));
//! tel.registry().counter("execs").add(3);
//! let span = tel.span("compile");
//! span.end(vec![("target", Json::Str("mujs".into()))]);
//! let stream = tel.take_buffer().unwrap();
//! assert_eq!(
//!     stream,
//!     "{\"ev\":\"compile\",\"t_us\":7,\"dur_us\":0,\"target\":\"mujs\"}\n"
//! );
//! ```
//!
//! Dependency direction: this crate depends only on `compdiff` (for
//! JSON). The instrumented crates (`fuzzing`, `minc-vm`, `compdiff`
//! itself) do **not** depend on telemetry — they expose observer traits
//! and intrinsic counters instead, and the `campaign` crate adapts those
//! seams onto this registry.

mod clock;
mod metrics;
mod recorder;

pub use clock::{Clock, MonotonicClock, TestClock};
pub use metrics::{Counter, Gauge, Histogram, MetricRegistry, HISTOGRAM_BUCKETS};
pub use recorder::{JsonlRecorder, NoopRecorder, Recorder};

use compdiff::Json;
use std::sync::{Arc, Mutex};

/// The facade instrumented code holds: registry + clock + recorder.
pub struct Telemetry {
    registry: MetricRegistry,
    clock: Box<dyn Clock>,
    recorder: Box<dyn Recorder>,
    /// Set only by [`with_buffer`](Telemetry::with_buffer): the shared
    /// sink behind the recorder, so tests can read the stream back.
    buffer: Option<Arc<Mutex<Vec<u8>>>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("clock", &self.clock)
            .field("events_enabled", &self.recorder.enabled())
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// Telemetry with an explicit clock and event sink.
    pub fn new(clock: impl Clock + 'static, recorder: impl Recorder + 'static) -> Arc<Self> {
        Arc::new(Telemetry {
            registry: MetricRegistry::new(),
            clock: Box::new(clock),
            recorder: Box::new(recorder),
            buffer: None,
        })
    }

    /// Disabled telemetry: a no-op recorder and a monotonic clock. The
    /// registry still works (aggregation is always available); only the
    /// event stream is off.
    pub fn disabled() -> Arc<Self> {
        Telemetry::new(MonotonicClock::new(), NoopRecorder)
    }

    /// Telemetry recording events into an in-memory buffer (tests).
    /// Retrieve the stream with [`take_buffer`](Telemetry::take_buffer).
    pub fn with_buffer(clock: impl Clock + 'static) -> Arc<Self> {
        let buf = SharedBuf::default();
        let handle = Arc::clone(&buf.data);
        Arc::new(Telemetry {
            registry: MetricRegistry::new(),
            clock: Box::new(clock),
            recorder: Box::new(JsonlRecorder::new(buf)),
            buffer: Some(handle),
        })
    }

    /// The metric registry.
    pub fn registry(&self) -> &MetricRegistry {
        &self.registry
    }

    /// Current time in microseconds (injected clock).
    pub fn now_micros(&self) -> u64 {
        self.clock.now_micros()
    }

    /// Whether events are being consumed. Call sites that build field
    /// vectors should skip the work when this is `false`.
    pub fn events_enabled(&self) -> bool {
        self.recorder.enabled()
    }

    /// Emits one event stamped with the current clock reading.
    pub fn event(&self, name: &str, fields: Vec<(&str, Json)>) {
        if self.recorder.enabled() {
            self.recorder.record(name, self.clock.now_micros(), fields);
        }
    }

    /// Starts a span; [`Span::end`] emits an event named after the span
    /// carrying its start time and duration.
    pub fn span<'a>(&'a self, name: &'static str) -> Span<'a> {
        Span {
            tel: self,
            name,
            start_us: self.clock.now_micros(),
        }
    }

    /// Flushes the recorder.
    pub fn flush(&self) {
        self.recorder.flush();
    }

    /// Drains the in-memory event buffer of a
    /// [`with_buffer`](Telemetry::with_buffer) instance; `None` for
    /// other recorders.
    pub fn take_buffer(&self) -> Option<String> {
        self.recorder.flush();
        self.buffer
            .as_ref()
            .map(|b| String::from_utf8_lossy(&std::mem::take(&mut *b.lock().unwrap())).into_owned())
    }
}

/// A started span (see [`Telemetry::span`]).
pub struct Span<'a> {
    tel: &'a Telemetry,
    name: &'static str,
    start_us: u64,
}

impl Span<'_> {
    /// The span's start timestamp.
    pub fn start_us(&self) -> u64 {
        self.start_us
    }

    /// Ends the span, emitting `{"ev":<name>,"t_us":<start>,
    /// "dur_us":<elapsed>, ...fields}`.
    pub fn end(self, fields: Vec<(&str, Json)>) {
        if !self.tel.recorder.enabled() {
            return;
        }
        let dur = self.tel.clock.now_micros().saturating_sub(self.start_us);
        let mut all: Vec<(&str, Json)> = vec![("dur_us", Json::Int(dur as i64))];
        all.extend(fields);
        self.tel.recorder.record(self.name, self.start_us, all);
    }
}

/// An in-memory, shareable byte sink for tests.
#[derive(Debug, Clone, Default)]
struct SharedBuf {
    data: Arc<Mutex<Vec<u8>>>,
}

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.data.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_event_is_a_noop() {
        let tel = Telemetry::disabled();
        assert!(!tel.events_enabled());
        tel.event("x", vec![("k", Json::Int(1))]);
        tel.registry().counter("still_works").inc();
        assert_eq!(tel.registry().counter("still_works").get(), 1);
        assert_eq!(tel.take_buffer(), None);
    }

    #[test]
    fn span_measures_with_test_clock() {
        let tel = Telemetry::with_buffer(TestClock::stepping(100, 10));
        let span = tel.span("work"); // reads 100
        span.end(vec![("n", Json::Int(2))]); // reads 110
        let text = tel.take_buffer().unwrap();
        let v = Json::parse(text.trim()).unwrap();
        assert_eq!(v.get("ev").and_then(Json::as_str), Some("work"));
        assert_eq!(v.get("t_us").and_then(Json::as_u64), Some(100));
        assert_eq!(v.get("dur_us").and_then(Json::as_u64), Some(10));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn buffered_stream_is_deterministic() {
        let run = || {
            let tel = Telemetry::with_buffer(TestClock::fixed(5));
            tel.registry().counter("execs").add(7);
            tel.event("a", vec![("i", Json::Int(1))]);
            tel.event("b", vec![]);
            tel.event("metrics", vec![("m", tel.registry().snapshot())]);
            tel.take_buffer().unwrap()
        };
        let first = run();
        assert_eq!(first, run(), "byte-identical under a fixed clock");
        for line in first.lines() {
            Json::parse(line).unwrap();
        }
    }
}
