//! The metric registry: named atomic counters, gauges, and log2-bucketed
//! histograms.
//!
//! Handles are `Arc`s resolved once by name and then touched with plain
//! relaxed atomic operations, so instrumented hot loops never take a lock
//! or hash a string. Snapshots iterate a `BTreeMap`, so rendering order
//! is the sorted name order — a precondition for the campaign's
//! byte-identical metrics streams.

use compdiff::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins instantaneous measurement.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if larger (high-water mark).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per possible bit length of a `u64`
/// (bucket `b` holds values whose bit length is `b`, i.e. the log2
/// bucket `[2^(b-1), 2^b)`; bucket 0 holds exactly the value 0).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples (latencies in
/// microseconds, page counts, queue depths).
///
/// Recording is two relaxed atomic adds — no floating point, no locks —
/// which keeps it viable on per-execution paths.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); HISTOGRAM_BUCKETS].map(|()| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// The log2 bucket index of a value: its bit length.
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The smallest value that lands in bucket `b` (its printable label).
fn bucket_floor(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The bucket floor below which at least `q` (0.0..=1.0) of the
    /// samples fall — a coarse quantile (log2 resolution), `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_floor(b));
            }
        }
        Some(bucket_floor(HISTOGRAM_BUCKETS - 1))
    }

    /// JSON form: count, sum, coarse p50/p99, and the non-empty buckets
    /// as `[bucket_floor, count]` pairs in ascending order.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(b, c)| {
                let c = c.load(Ordering::Relaxed);
                (c > 0).then(|| {
                    Json::Array(vec![Json::Int(bucket_floor(b) as i64), Json::Int(c as i64)])
                })
            })
            .collect();
        Json::obj(vec![
            ("count", Json::Int(self.count() as i64)),
            ("sum", Json::Int(self.sum() as i64)),
            (
                "p50",
                self.quantile(0.5)
                    .map_or(Json::Null, |v| Json::Int(v as i64)),
            ),
            (
                "p99",
                self.quantile(0.99)
                    .map_or(Json::Null, |v| Json::Int(v as i64)),
            ),
            ("buckets", Json::Array(buckets)),
        ])
    }

    /// Merges another histogram's JSON form (the output of
    /// [`to_json`](Histogram::to_json)) into this one: bucket counts add
    /// bucket-for-bucket (each `[floor, count]` pair maps back to the
    /// bucket whose floor it is) and the sums add, so folding
    /// per-process snapshots together is exact at log2 resolution.
    /// Malformed entries are ignored — a merge never fails.
    pub fn merge_json(&self, v: &Json) {
        if let Some(s) = v.get("sum").and_then(Json::as_u64) {
            self.sum.fetch_add(s, Ordering::Relaxed);
        }
        let Some(pairs) = v.get("buckets").and_then(Json::as_array) else {
            return;
        };
        for pair in pairs {
            let Some(p) = pair.as_array() else { continue };
            let floor = p.first().and_then(Json::as_u64);
            let count = p.get(1).and_then(Json::as_u64);
            if let (Some(floor), Some(count)) = (floor, count) {
                self.buckets[bucket_of(floor)].fetch_add(count, Ordering::Relaxed);
            }
        }
    }
}

/// The named-metric registry.
///
/// Lookup creates on first use; the maps are `BTreeMap`s so snapshots
/// enumerate metrics in sorted name order regardless of registration
/// order (which can vary with thread scheduling).
#[derive(Debug, Default)]
pub struct MetricRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        MetricRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.counters.lock().unwrap();
        Arc::clone(m.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.gauges.lock().unwrap();
        Arc::clone(m.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.histograms.lock().unwrap();
        Arc::clone(m.entry(name.to_string()).or_default())
    }

    /// A point-in-time JSON snapshot of every metric, keys sorted.
    pub fn snapshot(&self) -> Json {
        let counters = Json::Object(
            self.counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), Json::Int(v.get() as i64)))
                .collect(),
        );
        let gauges = Json::Object(
            self.gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), Json::Int(v.get() as i64)))
                .collect(),
        );
        let histograms = Json::Object(
            self.histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        Json::obj(vec![
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
    }

    /// Merges a [`snapshot`](MetricRegistry::snapshot) taken from another
    /// registry (typically another *process*) into this one: counters
    /// add, gauges take the maximum (high-water semantics — the only
    /// cross-process reading that is order-independent), and histograms
    /// merge bucket-for-bucket. Every operation is commutative and
    /// associative, so merging N worker snapshots produces the same
    /// registry regardless of arrival order. Unrecognized or malformed
    /// entries are ignored.
    pub fn merge_snapshot(&self, snap: &Json) {
        if let Some(Json::Object(pairs)) = snap.get("counters") {
            for (k, v) in pairs {
                if let Some(n) = v.as_u64() {
                    self.counter(k).add(n);
                }
            }
        }
        if let Some(Json::Object(pairs)) = snap.get("gauges") {
            for (k, v) in pairs {
                if let Some(n) = v.as_u64() {
                    self.gauge(k).set_max(n);
                }
            }
        }
        if let Some(Json::Object(pairs)) = snap.get("histograms") {
            for (k, v) in pairs {
                self.histogram(k).merge_json(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = MetricRegistry::new();
        let c = r.counter("execs");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(r.counter("execs").get(), 5, "same handle by name");
        let g = r.gauge("queue_depth");
        g.set(7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
        g.set_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(1), 1);
        assert_eq!(bucket_floor(11), 1024);
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        // 3 of 5 samples are <= 3, so p50 falls in bucket_of(2..=3) = 2.
        assert_eq!(h.quantile(0.5), Some(2));
        assert_eq!(h.quantile(1.0), Some(512), "bucket floor of 1000");
    }

    #[test]
    fn snapshot_is_sorted_and_parseable() {
        let r = MetricRegistry::new();
        r.counter("zebra").inc();
        r.counter("alpha").add(2);
        r.gauge("mid").set(9);
        r.histogram("lat_us").record(300);
        let snap = r.snapshot();
        let rendered = snap.render();
        let alpha = rendered.find("alpha").unwrap();
        let zebra = rendered.find("zebra").unwrap();
        assert!(alpha < zebra, "sorted key order: {rendered}");
        let back = compdiff::Json::parse(&rendered).unwrap();
        assert_eq!(
            back.get("counters")
                .and_then(|c| c.get("alpha"))
                .and_then(Json::as_u64),
            Some(2)
        );
        let hist = back
            .get("histograms")
            .and_then(|h| h.get("lat_us"))
            .unwrap();
        assert_eq!(hist.get("count").and_then(Json::as_u64), Some(1));
        assert_eq!(hist.get("sum").and_then(Json::as_u64), Some(300));
    }

    /// Merging per-process snapshots reproduces the registry a single
    /// process would have built: counters add, gauges take the max,
    /// histograms merge exactly at bucket resolution — and the merge is
    /// order-independent.
    #[test]
    fn merge_snapshot_folds_remote_registries() {
        let make = |execs: u64, depth: u64, lats: &[u64]| {
            let r = MetricRegistry::new();
            r.counter("fuzz.execs").add(execs);
            r.gauge("queue_depth_max").set(depth);
            for &v in lats {
                r.histogram("job_us").record(v);
            }
            r
        };
        let a = make(10, 3, &[1, 100]);
        let b = make(32, 9, &[2, 100, 4000]);

        let combined = MetricRegistry::new();
        combined.merge_snapshot(&a.snapshot());
        combined.merge_snapshot(&b.snapshot());
        assert_eq!(combined.counter("fuzz.execs").get(), 42);
        assert_eq!(combined.gauge("queue_depth_max").get(), 9);
        let h = combined.histogram("job_us");
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 4203);

        // Order independence: the rendered snapshots are byte-identical.
        let flipped = MetricRegistry::new();
        flipped.merge_snapshot(&b.snapshot());
        flipped.merge_snapshot(&a.snapshot());
        assert_eq!(combined.snapshot().render(), flipped.snapshot().render());
    }
}
