//! Event recording: timestamped JSONL streams and spans.
//!
//! A [`Recorder`] receives named events with structured fields and an
//! explicit timestamp (taken from the injected clock by the
//! [`Telemetry`](crate::Telemetry) facade). The production sink is
//! [`JsonlRecorder`] — one compact `compdiff::json` object per line — and
//! the disabled path is [`NoopRecorder`], whose `enabled()` lets call
//! sites skip building field vectors entirely.

use compdiff::Json;
use std::io::Write;
use std::sync::Mutex;

/// An event sink.
pub trait Recorder: Send + Sync {
    /// Whether events are consumed at all. Call sites with non-trivial
    /// field construction should check this first; when it returns
    /// `false`, [`record`](Recorder::record) must be a no-op.
    fn enabled(&self) -> bool;

    /// Consumes one event. `fields` are appended after the standard
    /// `ev` / `t_us` keys.
    fn record(&self, name: &str, t_us: u64, fields: Vec<(&str, Json)>);

    /// Flushes any buffering to the underlying sink.
    fn flush(&self) {}
}

/// The disabled recorder: drops everything.
#[derive(Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _name: &str, _t_us: u64, _fields: Vec<(&str, Json)>) {}
}

/// Streams events as compact JSON objects, one per line:
/// `{"ev":"<name>","t_us":<t>,...fields}`.
pub struct JsonlRecorder<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> JsonlRecorder<W> {
    /// Wraps a writer (a `File`, a `Vec<u8>` in tests, ...).
    pub fn new(out: W) -> Self {
        JsonlRecorder {
            out: Mutex::new(out),
        }
    }

    /// Consumes the recorder and returns the writer (for tests that
    /// inspect an in-memory buffer).
    pub fn into_inner(self) -> W {
        self.out.into_inner().unwrap()
    }
}

impl<W: Write + Send> Recorder for JsonlRecorder<W> {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, name: &str, t_us: u64, fields: Vec<(&str, Json)>) {
        let mut obj = vec![
            ("ev".to_string(), Json::Str(name.to_string())),
            ("t_us".to_string(), Json::Int(t_us as i64)),
        ];
        obj.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
        let line = Json::Object(obj).render();
        let mut out = self.out.lock().unwrap();
        // Telemetry must never take down the instrumented program; a full
        // disk simply stops the stream.
        let _ = writeln!(out, "{line}");
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_lines_parse_back() {
        let rec = JsonlRecorder::new(Vec::new());
        rec.record(
            "job",
            42,
            vec![
                ("target", Json::Str("mujs".into())),
                ("execs", Json::Int(10)),
            ],
        );
        rec.record("done", 43, vec![]);
        let buf = rec.into_inner();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("ev").and_then(Json::as_str), Some("job"));
        assert_eq!(first.get("t_us").and_then(Json::as_u64), Some(42));
        assert_eq!(first.get("execs").and_then(Json::as_u64), Some(10));
        let second = Json::parse(lines[1]).unwrap();
        assert_eq!(second.get("ev").and_then(Json::as_str), Some("done"));
    }

    #[test]
    fn noop_is_disabled() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        rec.record("x", 0, vec![]); // must not panic
    }
}
