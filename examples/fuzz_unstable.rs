//! CompDiff-AFL++ end to end: fuzz a packet-parser-style target whose
//! unstable code hides behind input conditions (paper Algorithm 1).
//!
//! ```sh
//! cargo run --release --example fuzz_unstable
//! ```

use compdiff::{CompDiffAfl, DiffConfig};
use fuzzing::FuzzConfig;

/// A tcpdump-flavoured target: the EvalOrder bug from the paper's
/// Listing 3 (two calls returning the same static buffer, both arguments
/// of one printf) is only reached for ARP-ish packets.
const TARGET: &str = r#"
    char* linkaddr_string(int v) {
        static char buffer[16];
        int i = 0;
        if (v == 0) { buffer[i] = '0'; i++; }
        while (v > 0) { buffer[i] = (char)('0' + v % 10); v /= 10; i++; }
        buffer[i] = '\0';
        return buffer;
    }
    int main() {
        char pkt[32];
        long n = read_input(pkt, 32L);
        if (n < 4) { printf("truncated\n"); return 1; }
        if (pkt[0] != 'A' || pkt[1] != 'R') { printf("not arp\n"); return 1; }
        int who = (int)pkt[2];
        int tell = (int)pkt[3];
        if (who == tell) { printf("self-arp\n"); return 0; }
        /* The unstable line: argument evaluation order is unspecified and
           both calls share one static buffer. */
        printf("who-is %s tell %s\n", linkaddr_string(who + 100), linkaddr_string(tell + 100));
        return 0;
    }
"#;

fn main() -> Result<(), minc::FrontendError> {
    let afl = CompDiffAfl::from_source_default(
        TARGET,
        FuzzConfig {
            max_execs: 20_000,
            seed: 42,
            max_input_len: 16,
            ..Default::default()
        },
        DiffConfig::default(),
    )?;
    println!("fuzzing with CompDiff-AFL++ (20k execs)...");
    let stats = afl.run(&[b"XXXX".to_vec()]);

    println!(
        "execs: {} (+{} differential), corpus: {}, edges: {}, crashes: {}",
        stats.campaign.execs,
        stats.oracle_execs,
        stats.campaign.corpus_len,
        stats.campaign.edges,
        stats.campaign.crashes.len()
    );
    println!(
        "discrepancy-triggering inputs saved to diffs/: {} ({} unique signatures)\n",
        stats.store.reports().len(),
        stats.store.unique_signatures()
    );
    for rep in stats.store.representatives() {
        println!("{}", rep.render());
    }
    assert!(
        !stats.store.reports().is_empty(),
        "the EvalOrder bug should be found within the budget"
    );
    Ok(())
}
