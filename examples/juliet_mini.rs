//! A miniature Table 3: evaluate a small slice of the Juliet-style suite
//! with all seven tools (three static analyzers, three sanitizers,
//! CompDiff).
//!
//! ```sh
//! cargo run --release --example juliet_mini
//! ```

use juliet::{evaluate, suite, table3};
use minc_vm::VmConfig;

fn main() {
    let tests = suite(0.01);
    println!(
        "evaluating {} Juliet-style tests (scale 0.01)...",
        tests.len()
    );
    let vm = VmConfig::default();
    let evals: Vec<_> = tests.iter().map(|t| evaluate(t, &vm)).collect();
    let table = table3(&evals);
    println!("\n{}", table.render());
    println!("CompDiff-unique bugs: {}", table.total_unique());
    let fp: usize = table.rows.iter().map(|r| r.compdiff_fp).sum();
    println!("CompDiff false positives: {fp} (must be 0 — paper Finding 5)");
    assert_eq!(fp, 0);
}
