//! Quickstart: detect the paper's Listing 1 with CompDiff.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use compdiff::{CompDiff, DiffConfig, Discrepancy};

/// The paper's Listing 1, ported to MinC: the `offset + len < offset`
/// overflow check only holds when signed overflow (UB) occurs, so an
/// optimizing compiler deletes it.
const LISTING_1: &str = r#"
    int dump_data(int offset, int len) {
        int size = 100;
        if (offset + len > size || offset < 0 || len < 0) { return -1; }
        if (offset + len < offset) { return -1; }
        /* dump from data+offset to data+offset+len */
        return 0;
    }
    int main() {
        int r = dump_data(2147483647 - 100, 101);
        printf("dump_data returned %d\n", r);
        return 0;
    }
"#;

fn main() -> Result<(), minc::FrontendError> {
    // 1. Compile with the ten compiler implementations
    //    ({gcc-sim, clang-sim} x {O0, O1, O2, O3, Os}).
    let diff = CompDiff::from_source_default(LISTING_1, DiffConfig::default())?;
    println!(
        "compiled with: {:?}\n",
        diff.impls()
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
    );

    // 2. Run every binary on the same input and cross-check outputs.
    let outcome = diff.run_input(b"");

    // 3. Any discrepancy signals unstable code.
    println!("divergent: {}", outcome.divergent);
    assert!(outcome.divergent, "Listing 1 contains unstable code");

    let report = Discrepancy::from_outcome(&diff.impls(), &outcome, b"");
    println!("\n{}", report.render());
    println!("The -O0 binaries keep the overflow check (return -1); the");
    println!("optimizing ones legally delete it (return 0) — unstable code.");
    Ok(())
}
