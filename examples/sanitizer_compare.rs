//! The complementarity story (paper §2): three real-world bug shapes —
//! one only sanitizers catch cheaply, one only CompDiff catches, one both.
//!
//! ```sh
//! cargo run --release --example sanitizer_compare
//! ```

use compdiff::{CompDiff, DiffConfig};
use minc_vm::{ExitStatus, SanitizerKind, VmConfig};

fn check(name: &str, src: &str) -> Result<(), minc::FrontendError> {
    let vm = VmConfig::default();
    let diff = CompDiff::from_source_default(src, DiffConfig::default())?;
    let compdiff = diff.run_input(b"").divergent;
    let bin = sanitizers::compile_sanitized(src)?;
    let mut caught = Vec::new();
    for k in [
        SanitizerKind::Asan,
        SanitizerKind::Ubsan,
        SanitizerKind::Msan,
    ] {
        if matches!(
            sanitizers::run_sanitized(&bin, b"", &vm, k).status,
            ExitStatus::Sanitizer(_)
        ) {
            caught.push(k.to_string());
        }
    }
    println!(
        "{name:<28} CompDiff: {:<3}  sanitizers: {}",
        if compdiff { "YES" } else { "no" },
        if caught.is_empty() {
            "none".to_string()
        } else {
            caught.join("+")
        }
    );
    Ok(())
}

fn main() -> Result<(), minc::FrontendError> {
    println!(
        "bug shape                    detected by\n{}",
        "-".repeat(60)
    );

    // The paper's Listing 4 shape (exiv2): an uninitialized value that is
    // only printed — MSan deliberately stays silent, CompDiff diverges.
    check(
        "uninit printed (exiv2)",
        "int main() { int l; printf(\"0x%x\\n\", (l & 65535) >> 8); return 0; }",
    )?;

    // The paper's Listing 2 shape (binutils): pointers to different
    // objects compared relationally — no sanitizer has a check for it.
    check(
        "pointer compare (binutils)",
        r#"
        int a; long b;
        int main() {
            if ((char*)&a < (char*)&b) { printf("a first\n"); }
            else { printf("b first\n"); }
            return 0;
        }
        "#,
    )?;

    // A silent near overflow: ASan's home turf, invisible to CompDiff
    // because the corruption never reaches the output.
    check(
        "silent stack overflow",
        r#"
        int main() {
            char buf[8];
            buf[9] = 'X';
            printf("done\n");
            return 0;
        }
        "#,
    )?;

    // Integer overflow both can see: UBSan checks the add; the optimizer
    // deletes the wraparound guard, so CompDiff diverges too.
    check(
        "overflow check deleted",
        r#"
        int main() {
            int off = (int)input_size() + 2147483000;
            int len = 1000;
            if (off + len < off) { printf("guarded\n"); return 1; }
            printf("passed %d\n", off + len > 0 ? 1 : 0);
            return 0;
        }
        "#,
    )?;

    println!("\nCompDiff is not a replacement for sanitizers — it complements");
    println!("them (the paper's central claim).");
    Ok(())
}
