//! Subset analysis on the 23-target bug corpus: which compiler
//! implementations are worth the run-time cost? (paper §4.2 / RQ4)
//!
//! ```sh
//! cargo run --release --example subset_explorer
//! ```

use compdiff::SubsetAnalysis;
use minc_compile::CompilerImpl;
use minc_vm::VmConfig;

fn main() {
    println!("collecting output-hash vectors for all 78 injected bugs...");
    let verdicts = targets::verify_all(&VmConfig::default());
    let vectors: Vec<Vec<u64>> = verdicts.iter().map(|v| v.hashes.clone()).collect();
    let impls = CompilerImpl::default_set();
    let analysis = SubsetAnalysis::analyze(&vectors, &impls);
    let full = analysis.full_set_detection();
    println!("full set detects {full}/78 bugs at ~10x run-time cost\n");

    // Every pair, ranked.
    let mut pairs: Vec<(usize, Vec<String>)> = analysis
        .results
        .iter()
        .filter(|(_, size, _)| *size == 2)
        .map(|&(mask, _, d)| {
            let names: Vec<String> = (0..impls.len())
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| impls[i].to_string())
                .collect();
            (d, names)
        })
        .collect();
    pairs.sort_by_key(|p| std::cmp::Reverse(p.0));

    println!("all 45 pairs, ranked (cost ~2x):");
    for (d, names) in &pairs {
        let pct = 100.0 * *d as f64 / full.max(1) as f64;
        println!("  {:<22} {:>3} bugs ({pct:>3.0}%)", names.join(" + "), d);
    }

    let (best_d, best) = &pairs[0];
    let (worst_d, worst) = pairs.last().unwrap();
    println!("\nbest pair  {} -> {best_d} bugs", best.join(" + "));
    println!("worst pair {} -> {worst_d} bugs", worst.join(" + "));
    println!("\nThe paper's guidance holds: pick different *compilers* with");
    println!("unoptimizing + aggressively-optimizing levels; same-family,");
    println!("similar-level pairs perform worst.");
}
