#!/usr/bin/env bash
# The repository's CI gate, runnable locally: formatting, an offline
# release build (the workspace is std-only; no registry access needed),
# and the full offline test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy --offline -D warnings =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo build --release --offline =="
cargo build --release --offline --workspace

echo "== cargo test -q --offline =="
cargo test -q --offline --workspace

echo "== telemetry determinism =="
cargo test -q --offline -p campaign metrics_stream_is_deterministic

echo "== fault-injection suite =="
cargo test -q --offline -p campaign --test faults

lint_a="$(mktemp)"
lint_b="$(mktemp)"
smoke="$(mktemp)"
trap 'rm -f "$lint_a" "$lint_b" "$smoke"' EXIT

echo "== smoke campaign with injected panic (must exit 0 with partial results) =="
./target/release/compdiff campaign --workers 2 --execs-per-target 120 --shards 2 \
    --targets tcpdump,jq --seed 7 --max-retries 1 --quarantine-after 2 \
    --fault-plan 'panic@tcpdump#any*inf' --quiet > "$smoke"
grep -q "PARTIAL RESULTS" "$smoke"
grep -q "quarantined: tcpdump" "$smoke"
grep -q "fault tolerance:" "$smoke"

echo "== lint determinism (compdiff lint --all, twice) =="
./target/release/compdiff lint --all --workers 4 > "$lint_a"
./target/release/compdiff lint --all --workers 2 > "$lint_b"
cmp "$lint_a" "$lint_b"

echo "== cargo build --benches --offline =="
cargo build --benches --offline --workspace

echo "== vm_session bench (fast smoke) =="
COMPDIFF_BENCH_FAST=1 cargo bench -q --offline -p compdiff-bench --bench vm_session

echo "CI green."
