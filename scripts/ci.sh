#!/usr/bin/env bash
# The repository's CI gate, runnable locally: formatting, an offline
# release build (the workspace is std-only; no registry access needed),
# and the full offline test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy --offline -D warnings =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo build --release --offline =="
cargo build --release --offline --workspace

echo "== cargo test -q --offline =="
cargo test -q --offline --workspace

echo "== telemetry determinism =="
cargo test -q --offline -p campaign metrics_stream_is_deterministic

echo "== fault-injection suite =="
cargo test -q --offline -p campaign --test faults

echo "== block-dispatch equivalence suite =="
cargo test -q --offline --test block_equivalence

lint_a="$(mktemp)"
lint_b="$(mktemp)"
smoke="$(mktemp)"
camp_a="$(mktemp)"
camp_b="$(mktemp)"
batch_a="$(mktemp)"
batch_b="$(mktemp)"
pcamp_a="$(mktemp)"
pcamp_b="$(mktemp)"
pcamp_ra="$(mktemp)"
pcamp_rb="$(mktemp)"
drop_smoke="$(mktemp)"
progen_a="$(mktemp -d)"
progen_b="$(mktemp -d)"
san_a="$(mktemp)"
san_b="$(mktemp)"
san_dir="$(mktemp -d)"
trap 'rm -rf "$lint_a" "$lint_b" "$smoke" "$camp_a" "$camp_b" "$batch_a" "$batch_b" "$pcamp_a" "$pcamp_b" "$pcamp_ra" "$pcamp_rb" "$drop_smoke" "$progen_a" "$progen_b" "$san_a" "$san_b" "$san_dir"' EXIT

echo "== smoke campaign with injected panic (must exit 0 with partial results) =="
./target/release/compdiff campaign --workers 2 --execs-per-target 120 --shards 2 \
    --targets tcpdump,jq --seed 7 --max-retries 1 --quarantine-after 2 \
    --fault-plan 'panic@tcpdump#any*inf' --quiet > "$smoke"
grep -q "PARTIAL RESULTS" "$smoke"
grep -q "quarantined: tcpdump" "$smoke"
grep -q "fault tolerance:" "$smoke"

echo "== campaign block-mode byte-determinism (two runs, fixed clock) =="
# One worker: the telemetry stream is emitted in completion order, which
# is only deterministic single-threaded. The cmp proves block-compiled
# execution is byte-reproducible end to end; the grep proves the runs
# actually took the block path rather than falling back to the interpreter.
./target/release/compdiff campaign --workers 1 --execs-per-target 150 --shards 2 \
    --targets readelf,brotli --seed 11 --vm-mode block \
    --metrics-out "$camp_a" --fixed-clock 0 --quiet > /dev/null
./target/release/compdiff campaign --workers 1 --execs-per-target 150 --shards 2 \
    --targets readelf,brotli --seed 11 --vm-mode block \
    --metrics-out "$camp_b" --fixed-clock 0 --quiet > /dev/null
cmp "$camp_a" "$camp_b"
grep -q '"block_exec": *[1-9]' "$camp_a"

echo "== batched-campaign byte-determinism (two runs, --batch-size 16) =="
# Same single-worker fixed-clock setup as above, but with the batched
# oracle sweep enabled. The cmp proves batching (including divergence
# bisection order) is byte-reproducible; the grep proves batches were
# actually formed rather than degenerating to per-input sweeps.
./target/release/compdiff campaign --workers 1 --execs-per-target 150 --shards 2 \
    --targets readelf,brotli --seed 11 --batch-size 16 \
    --metrics-out "$batch_a" --fixed-clock 0 --quiet > /dev/null
./target/release/compdiff campaign --workers 1 --execs-per-target 150 --shards 2 \
    --targets readelf,brotli --seed 11 --batch-size 16 \
    --metrics-out "$batch_b" --fixed-clock 0 --quiet > /dev/null
cmp "$batch_a" "$batch_b"
grep -q '"diff.batch_size"' "$batch_a"

echo "== multi-process campaign byte-determinism (two runs, 2 worker processes) =="
# A real coordinator + 2 worker *processes* over the socket protocol,
# twice under a fixed clock: report and metrics stream must match byte
# for byte (canonical-order event buffering + commutative registry
# merges), and leases must actually have flowed over the wire.
./target/release/compdiff campaign --workers-proc 2 --execs-per-target 150 --shards 2 \
    --targets readelf,brotli --seed 11 \
    --metrics-out "$pcamp_a" --fixed-clock 0 --quiet > "$pcamp_ra"
./target/release/compdiff campaign --workers-proc 2 --execs-per-target 150 --shards 2 \
    --targets readelf,brotli --seed 11 \
    --metrics-out "$pcamp_b" --fixed-clock 0 --quiet > "$pcamp_rb"
cmp "$pcamp_ra" "$pcamp_rb"
cmp "$pcamp_a" "$pcamp_b"
grep -q '"campaign.leases_granted":[1-9]' "$pcamp_a"

echo "== multi-process campaign dropped-connection smoke (must exit 0 with partial results) =="
# Every lease grant's connection is severed (drop@conn:any*inf) with
# retries off: the coordinator must reclaim each lost lease, quarantine
# the target, and still deliver a partial report with exit 0.
./target/release/compdiff campaign --workers-proc 1 --execs-per-target 80 --shards 2 \
    --targets tcpdump --seed 7 --max-retries 0 --quarantine-after 2 \
    --fault-plan 'drop@conn:any*inf' --quiet > "$drop_smoke" 2> /dev/null
grep -q "PARTIAL RESULTS" "$drop_smoke"
grep -q "quarantined: tcpdump" "$drop_smoke"

echo "== lint determinism (compdiff lint --all, twice) =="
./target/release/compdiff lint --all --workers 4 > "$lint_a"
./target/release/compdiff lint --all --workers 2 > "$lint_b"
cmp "$lint_a" "$lint_b"

echo "== sancheck determinism (compdiff sancheck --all, two worker counts) =="
./target/release/compdiff sancheck --all --workers 1 > "$san_a"
./target/release/compdiff sancheck --all --workers 8 > "$san_b"
cmp "$san_a" "$san_b"

echo "== sancheck planted-FN smoke (suppressed MSan must be flagged) =="
# A must-execute uninitialized branch with MSan's poison callbacks
# deterministically suppressed: the meta-oracle must charge every impl
# with a false negative, proven by the static must-site it went silent on.
cat > "$san_dir/uninit.mc" <<'EOF'
int main() {
    int u;
    if (u > 0) { printf("y\n"); }
    return 0;
}
EOF
./target/release/compdiff sancheck "$san_dir/uninit.mc" --fault-plan suppress@msan > "$san_a"
grep -Eq 'san_fn=[1-9]' "$san_a"
grep -q "FALSE NEGATIVE: MSan stayed silent" "$san_a"

echo "== sancheck planted-FP smoke (spurious UBSan firing must be refuted) =="
# A statically clean program with a spurious shift-out-of-bounds report
# injected into UBSan's first check callback: the map refutes the class,
# so the meta-oracle must flag the firing as a false alarm.
cat > "$san_dir/clean.mc" <<'EOF'
int main() {
    int x = 1 + 2;
    printf("%d\n", x);
    return 0;
}
EOF
./target/release/compdiff sancheck "$san_dir/clean.mc" \
    --fault-plan 'fire@ubsan:shift-out-of-bounds#1' > "$san_b"
grep -Eq 'san_fp=[1-9]' "$san_b"
grep -q "FALSE ALARM: UBSan" "$san_b"

echo "== progen evolve smoke + byte-determinism (seeded, twice) =="
./target/release/compdiff progen evolve --seed 7 --generations 2 --population 6 \
    --out-dir "$progen_a" --fixed-clock 0 > /dev/null 2>&1
./target/release/compdiff progen evolve --seed 7 --generations 2 --population 6 \
    --out-dir "$progen_b" --fixed-clock 0 > /dev/null 2>&1
cmp "$progen_a/generations.jsonl" "$progen_b/generations.jsonl"
cmp "$progen_a/state.json" "$progen_b/state.json"
# At least one diverging program must be found, auto-reduced, and the
# reduced witnesses must match byte for byte across the two runs.
ls "$progen_a"/witness_*.mc > /dev/null
for w in "$progen_a"/witness_*.mc; do
    cmp "$w" "$progen_b/$(basename "$w")"
done

echo "== cargo build --benches --offline =="
cargo build --benches --offline --workspace

echo "== vm_session bench (fast smoke, interp + block rows) =="
COMPDIFF_BENCH_FAST=1 cargo bench -q --offline -p compdiff-bench --bench vm_session

echo "== vm_modes bench (fast smoke, per-target interp/block/block_san) =="
COMPDIFF_BENCH_FAST=1 cargo bench -q --offline -p compdiff-bench --bench vm_modes

echo "== batch bench (fast smoke, per-target batch=1/16/64) =="
COMPDIFF_BENCH_FAST=1 cargo bench -q --offline -p compdiff-bench --bench batch

echo "CI green."
