//! Umbrella crate for the CompDiff reproduction workspace.
//!
//! This crate re-exports the public APIs of every workspace member so the
//! top-level `examples/` and `tests/` can exercise the whole system through
//! one import. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured results.

#![warn(missing_docs)]
pub use campaign;
pub use compdiff;
pub use fuzzing;
pub use juliet;
pub use minc;
pub use minc_compile;
pub use minc_vm;
pub use sanitizers;
pub use staticheck;
pub use targets;
