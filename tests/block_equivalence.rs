//! Block-mode equivalence regression suite.
//!
//! Pins the central guarantee of the block-compiled execution backend
//! (`minc_vm::block`): running a binary in [`VmMode::Block`] is
//! **bit-for-bit** equivalent to the per-instruction reference
//! interpreter — same status, same stdout, same step count, same hook
//! callbacks, same coverage map, same differ verdicts — on every program
//! in the target catalog, for every compiler implementation, across
//! batches that include trap-, fault-, and timeout-producing inputs
//! mid-batch. If block dispatch ever diverged from the interpreter,
//! CompDiff would report phantom discrepancies (or miss real ones), so
//! this suite is the safety net under the whole optimization.

use fuzzing::{CoverageMap, CoveredHooks};
use minc_compile::{compile_source, Binary, CompilerImpl};
use minc_vm::{
    execute, execute_with_hooks, ExecResult, ExecSession, ExitStatus, NoHooks, SanitizerKind,
    VmConfig, VmMode,
};
use targets::{build, catalog};

/// Explicit interpreter config (never inherits `COMPDIFF_VM_MODE`).
fn interp_cfg() -> VmConfig {
    VmConfig {
        mode: VmMode::Interp,
        ..VmConfig::default()
    }
}

/// Explicit block config (never inherits `COMPDIFF_VM_MODE`).
fn block_cfg() -> VmConfig {
    VmConfig {
        mode: VmMode::Block,
        ..VmConfig::default()
    }
}

/// Inputs exercised against every binary: empty, short, the magic header
/// with assorted commands, malformed headers, long and binary-ish data.
fn input_batch(magic: [u8; 2]) -> Vec<Vec<u8>> {
    let mut inputs: Vec<Vec<u8>> = vec![
        Vec::new(),
        vec![0x00],
        b"A".to_vec(),
        vec![magic[0]],
        vec![magic[0], magic[1]],
        vec![magic[0], magic[1], 0x00, b'A'],
        vec![magic[0], magic[1], 0xFF, 0xFF],
        vec![magic[1], magic[0], 0x01, b'A'], // swapped magic
        b"not the magic at all".to_vec(),
        vec![magic[0], magic[1], 0x07, b'Z', b'Z', b'Z', b'Z', b'Z'],
    ];
    // A longer payload to push checksum loops through more bytes.
    let mut long = vec![magic[0], magic[1], 0x02];
    long.extend((0u8..64).map(|i| i.wrapping_mul(37)));
    inputs.push(long);
    inputs
}

/// Asserts block output == interpreter output for every input, both
/// one-shot and through a persistent session (interleaved, so any state
/// leakage from input N corrupts input N+1).
fn assert_equivalent(label: &str, bin: &Binary, inputs: &[Vec<u8>], base: &VmConfig) {
    let icfg = VmConfig {
        mode: VmMode::Interp,
        ..base.clone()
    };
    let bcfg = VmConfig {
        mode: VmMode::Block,
        ..base.clone()
    };
    let mut session = ExecSession::new(bin);
    for (i, input) in inputs.iter().enumerate() {
        let reference = execute(bin, input, &icfg);
        let block = execute(bin, input, &bcfg);
        assert_eq!(
            block, reference,
            "{label}: input #{i} ({input:?}) diverged between block mode \
             and the interpreter (fresh VMs)"
        );
        let persistent = session.run(bin, input, &bcfg);
        assert_eq!(
            persistent, reference,
            "{label}: input #{i} ({input:?}) diverged between a block-mode \
             session and a fresh interpreter"
        );
    }
    // The session actually took the block path and reused its translation.
    let stats = session.stats();
    assert_eq!(stats.block_exec, inputs.len() as u64, "{label}");
    assert_eq!(stats.interp_fallback, 0, "{label}");
    assert!(stats.blocks_translated > 0, "{label}");
    assert_eq!(stats.block_cache_hits, inputs.len() as u64 - 1, "{label}");
}

#[test]
fn all_catalog_targets_all_impls_match_interpreter() {
    let impls = CompilerImpl::default_set();
    for spec in catalog() {
        let target = build(&spec);
        let checked = minc::check(&target.src)
            .unwrap_or_else(|e| panic!("{} does not check: {e:?}", spec.name));
        let mut inputs = input_batch(spec.magic);
        // Ground-truth bug triggers reach the unstable/crashing arms, so
        // the batch contains the exact inputs whose junk-dependent
        // behaviour is most sensitive to dispatch differences.
        for bug in &spec.bugs {
            inputs.push(target.trigger(bug));
            inputs.push(vec![spec.magic[0], spec.magic[1], 0x00, b'A']);
        }
        for &ci in &impls {
            let bin = minc_compile::compile(&checked, ci);
            assert_equivalent(
                &format!("{}/{}", spec.name, ci),
                &bin,
                &inputs,
                &VmConfig::default(),
            );
        }
    }
}

#[test]
fn block_equivalence_survives_traps_and_faults_mid_batch() {
    // One program with segv, abort, sigfpe, heap, and junk paths, driven
    // through a batch that alternates crashing and clean inputs.
    let src = r#"
        int main() {
            char b[8];
            long n = read_input(b, 8L);
            if (n < 1) { printf("empty\n"); return 0; }
            if (b[0] == 's') { int* p = 0; *p = 1; }
            if (b[0] == 'a') { abort(); }
            if (b[0] == 'd') { int z = (int)n - (int)n; return 5 / z; }
            if (b[0] == 'h') {
                char* m = (char*)malloc(10000L);
                memset(m, (int)b[1], 10000L);
                printf("%d\n", (int)m[9999]);
                free(m);
                return 0;
            }
            if (b[0] == 'u') { int u; printf("junk %d\n", u); }
            printf("clean %ld\n", n);
            return 0;
        }
    "#;
    let batch: Vec<Vec<u8>> = [
        &b""[..],
        b"s!",
        b"ok",
        b"a",
        b"hX",
        b"d0",
        b"u?",
        b"clean",
        b"s",
        b"hY",
        b"again",
    ]
    .iter()
    .map(|s| s.to_vec())
    .collect();
    for ci in CompilerImpl::default_set() {
        let bin = compile_source(src, ci).unwrap();
        assert_equivalent(
            &format!("crashmix/{ci}"),
            &bin,
            &batch,
            &VmConfig::default(),
        );
    }
}

#[test]
fn block_equivalence_after_timeout_mid_batch() {
    // A timeout truncates the run with frames still live; the next run
    // must be unaffected, and the step at which the timeout fires must be
    // identical between the two dispatchers.
    let src = r#"
        int main() {
            char b[4];
            long n = read_input(b, 4L);
            if (n > 0 && b[0] == 'L') {
                long i; long acc = 0;
                for (i = 0; i < 100000000; i++) { acc += i; }
                printf("%ld\n", acc);
            }
            printf("done\n");
            return 0;
        }
    "#;
    let cfg = VmConfig {
        step_limit: 50_000,
        ..Default::default()
    };
    let batch: Vec<Vec<u8>> = [&b"L!"[..], b"ok", b"L", b"x"]
        .iter()
        .map(|s| s.to_vec())
        .collect();
    for ci in ["gcc-O0", "clang-O3"] {
        let bin = compile_source(src, CompilerImpl::parse(ci).unwrap()).unwrap();
        assert_equivalent(&format!("timeout/{ci}"), &bin, &batch, &cfg);
    }
}

#[test]
fn spin_loop_times_out_on_the_same_step_in_both_modes() {
    // Step-accounting drift regression: a pure spin loop must charge
    // exactly the same number of steps in both modes, and both must
    // report limit + 1 at the timeout (the interpreter's pre-fetch check
    // counts the step that crossed the limit).
    let src = "int main() { long i; for (i = 0; ; i++) {} return 0; }";
    for limit in [100u64, 101, 1_000, 49_999] {
        for ci in ["gcc-O0", "gcc-O2", "clang-O3"] {
            let bin = compile_source(src, CompilerImpl::parse(ci).unwrap()).unwrap();
            let base = VmConfig {
                step_limit: limit,
                ..Default::default()
            };
            let reference = execute(
                &bin,
                b"",
                &VmConfig {
                    mode: VmMode::Interp,
                    ..base.clone()
                },
            );
            let block = execute(
                &bin,
                b"",
                &VmConfig {
                    mode: VmMode::Block,
                    ..base
                },
            );
            assert_eq!(reference.status, ExitStatus::TimedOut, "{ci} limit {limit}");
            assert_eq!(
                reference.steps,
                limit + 1,
                "{ci} limit {limit}: interpreter steps-at-timeout moved"
            );
            assert_eq!(block, reference, "{ci} limit {limit}");
        }
    }
}

#[test]
fn builtin_bulk_and_fallback_paths_charge_identical_steps() {
    // memcpy/memset take a bulk fast path without hooks and a
    // per-byte fallback under hooks; neither the path nor the dispatcher
    // may change the step charge (one step per builtin call).
    let src = r#"
        int main() {
            char a[4096]; char b[4096];
            memset(a, 7, 4096L);
            memcpy(b, a, 4096L);
            printf("%d %d\n", (int)a[4095], (int)b[0]);
            return 0;
        }
    "#;
    for ci in ["gcc-O0", "clang-O2"] {
        let bin = compile_source(src, CompilerImpl::parse(ci).unwrap()).unwrap();
        let reference = execute(&bin, b"", &interp_cfg());
        let block = execute(&bin, b"", &block_cfg());
        assert_eq!(block, reference, "{ci}: bulk path (no hooks)");
        // Hooked runs force the per-byte fallback in both modes.
        let mut imap = CoverageMap::new();
        let hooked_interp = execute_with_hooks(
            &bin,
            b"",
            &interp_cfg(),
            &mut CoveredHooks::new(&mut imap, NoHooks),
        );
        let mut bmap = CoverageMap::new();
        let hooked_block = execute_with_hooks(
            &bin,
            b"",
            &block_cfg(),
            &mut CoveredHooks::new(&mut bmap, NoHooks),
        );
        assert_eq!(hooked_block, hooked_interp, "{ci}: fallback path (hooks)");
        assert_eq!(
            reference.steps, hooked_interp.steps,
            "{ci}: hooks changed the step charge"
        );
    }
}

#[test]
fn coverage_maps_are_identical_across_modes() {
    // The fuzz loop's edge coverage comes from on_edge callbacks; block
    // mode must fire them with the same (from, to) pairs — including on
    // edges fused away into superblocks.
    let src = r#"
        int main() {
            char b[8];
            long n = read_input(b, 8L);
            long i; int acc = 0;
            for (i = 0; i < n; i++) {
                if (b[i] > 'm') { acc += 2; } else { acc -= 1; }
            }
            printf("%d\n", acc);
            return acc < 0 ? 1 : 0;
        }
    "#;
    for ci in CompilerImpl::default_set() {
        let bin = compile_source(src, ci).unwrap();
        for input in [&b""[..], b"abcxyz", b"zzzzzzz", b"m", b"nmnmnmn"] {
            let mut interp_map = CoverageMap::new();
            let reference = execute_with_hooks(
                &bin,
                input,
                &interp_cfg(),
                &mut CoveredHooks::new(&mut interp_map, NoHooks),
            );
            let mut block_map = CoverageMap::new();
            let block = execute_with_hooks(
                &bin,
                input,
                &block_cfg(),
                &mut CoveredHooks::new(&mut block_map, NoHooks),
            );
            assert_eq!(block, reference, "{ci} {input:?}");
            let interp_edges: Vec<(usize, u8)> = interp_map.buckets().collect();
            let block_edges: Vec<(usize, u8)> = block_map.buckets().collect();
            assert_eq!(
                block_edges, interp_edges,
                "{ci}: coverage differs on {input:?}"
            );
        }
    }
}

#[test]
fn sanitizer_reports_are_identical_across_modes() {
    // Sanitizer escalation re-runs use full per-instruction hooks; block
    // mode must produce the same faults at the same locations (the fault
    // carries the Loc, so ExecResult equality pins callback fidelity).
    let programs: &[&str] = &[
        // heap overflow (ASan)
        r#"int main() { char* p = (char*)malloc(8L);
            p[8] = 1; free(p); return 0; }"#,
        // use after free (ASan)
        r#"int main() { char* p = (char*)malloc(8L);
            free(p); return (int)p[0]; }"#,
        // signed overflow (UBSan)
        r#"int main() { int x = 2147483647; x = x + 1;
            printf("%d\n", x); return 0; }"#,
        // oversized shift (UBSan)
        r#"int main() { char b[4]; long n = read_input(b, 4L);
            int s = (int)n + 30; printf("%d\n", 1 << s); return 0; }"#,
        // uninitialized read (MSan)
        r#"int main() { int u; if (u > 0) { printf("pos\n"); }
            printf("done\n"); return 0; }"#,
        // clean control program
        r#"int main() { int i; int acc = 0;
            for (i = 0; i < 100; i++) { acc += i; }
            printf("%d\n", acc); return 0; }"#,
    ];
    for (pi, src) in programs.iter().enumerate() {
        let bin = sanitizers::compile_sanitized(src).unwrap();
        for kind in [
            SanitizerKind::Asan,
            SanitizerKind::Ubsan,
            SanitizerKind::Msan,
        ] {
            for input in [&b""[..], b"abc"] {
                let reference = sanitizers::run_sanitized(&bin, input, &interp_cfg(), kind);
                let block = sanitizers::run_sanitized(&bin, input, &block_cfg(), kind);
                assert_eq!(
                    block, reference,
                    "program #{pi} under {kind} on {input:?} diverged across modes"
                );
            }
        }
    }
}

#[test]
fn differ_verdicts_are_identical_across_modes() {
    // The differ-level API: divergence verdicts, hashes, and escalation
    // outcomes must not depend on the dispatcher, including on
    // partial-timeout workloads that trigger step-budget escalation.
    let src = r#"
        int main() {
            char b[4];
            long n = read_input(b, 4L);
            if (n > 0 && b[0] == '!') { int u; printf("%d\n", u); }
            long i; long acc = 0;
            for (i = 0; i < 20000; i++) { acc += i; }
            printf("%ld\n", acc);
            return 0;
        }
    "#;
    let mk = |mode: VmMode| compdiff::DiffConfig {
        vm: VmConfig {
            step_limit: 150_000,
            mode,
            ..Default::default()
        },
        ..Default::default()
    };
    let interp_diff = compdiff::CompDiff::from_source_default(src, mk(VmMode::Interp)).unwrap();
    let block_diff = compdiff::CompDiff::from_source_default(src, mk(VmMode::Block)).unwrap();
    let mut sessions = block_diff.make_sessions();
    for input in [&b""[..], b"!a", b"ok", b"!b", b""] {
        let reference = interp_diff.run_input(input);
        let block = block_diff.run_input(input);
        let block_sessions = block_diff.run_input_sessions(&mut sessions, input);
        for out in [&block, &block_sessions] {
            assert_eq!(out.hashes, reference.hashes, "{input:?}");
            assert_eq!(out.divergent, reference.divergent, "{input:?}");
            assert_eq!(
                out.unresolved_timeout, reference.unresolved_timeout,
                "{input:?}"
            );
        }
    }
}

#[test]
fn golden_progen_witnesses_diverge_identically_in_both_modes() {
    // The reduced witnesses under tests/golden/progen are the repo's
    // pinned real-divergence corpus; both dispatchers must reproduce the
    // same per-implementation results on each witness's probe.
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/progen");
    let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
    let manifest = compdiff::Json::parse(&manifest).unwrap();
    let entries = manifest
        .get("witnesses")
        .and_then(compdiff::Json::as_array)
        .unwrap();
    assert!(!entries.is_empty());
    for entry in entries {
        let file = entry.get("file").and_then(compdiff::Json::as_str).unwrap();
        let hex = entry.get("probe").and_then(compdiff::Json::as_str).unwrap();
        let probe: Vec<u8> = (0..hex.len() / 2)
            .map(|i| u8::from_str_radix(&hex[2 * i..2 * i + 2], 16).unwrap())
            .collect();
        let src = std::fs::read_to_string(dir.join(file)).unwrap();
        let checked = minc::check(&src).unwrap();
        let mut seen = std::collections::HashSet::new();
        for ci in CompilerImpl::default_set() {
            let bin = minc_compile::compile(&checked, ci);
            let reference = execute(&bin, &probe, &interp_cfg());
            let block = execute(&bin, &probe, &block_cfg());
            assert_eq!(
                block, reference,
                "{file}/{ci}: witness behaviour shifted under block mode"
            );
            seen.insert(block.observable());
        }
        assert!(
            seen.len() > 1,
            "{file} no longer diverges across implementations in block mode"
        );
    }
}

#[test]
fn interp_mode_is_still_reachable_and_counted() {
    // --vm-mode interp must really bypass block dispatch; the session
    // counters are how the campaign telemetry proves which path ran.
    let src = "int main() { printf(\"hi\\n\"); return 0; }";
    let bin = compile_source(src, CompilerImpl::parse("gcc-O1").unwrap()).unwrap();
    let mut session = ExecSession::new(&bin);
    let icfg = interp_cfg();
    let bcfg = block_cfg();
    let a: ExecResult = session.run(&bin, b"", &icfg);
    let b = session.run(&bin, b"", &bcfg);
    let c = session.run(&bin, b"", &icfg);
    assert_eq!(a, b);
    assert_eq!(a, c);
    let stats = session.stats();
    assert_eq!(stats.interp_fallback, 2);
    assert_eq!(stats.block_exec, 1);
}
