//! Determinism guarantees: CompDiff's zero-false-positive argument rests
//! on programs having deterministic output per binary; the whole
//! reproduction additionally guarantees determinism *across runs* so every
//! experiment is replayable.

use compdiff::{CompDiff, CompDiffAfl, DiffConfig};
use fuzzing::FuzzConfig;
use minc_compile::{compile_source, CompilerImpl};
use minc_vm::{execute, VmConfig};

const SRC: &str = r#"
    int main() {
        char b[24];
        long n = read_input(b, 24L);
        int u;
        long i;
        int cs = 0;
        for (i = 0; i < n; i++) { cs = cs * 131 + (int)b[i]; }
        printf("%d %d %d\n", cs, u & 255, rand() % 1000);
        return 0;
    }
"#;

#[test]
fn execution_is_deterministic_per_binary() {
    // Junk, rand(), layout: all deterministic functions of the
    // implementation, so repeated runs agree byte-for-byte.
    for ci in CompilerImpl::default_set() {
        let bin = compile_source(SRC, ci).unwrap();
        let a = execute(&bin, b"input", &VmConfig::default());
        let b = execute(&bin, b"input", &VmConfig::default());
        assert_eq!(a.stdout, b.stdout, "{ci}");
        assert_eq!(a.status, b.status, "{ci}");
        assert_eq!(a.steps, b.steps, "{ci}");
    }
}

#[test]
fn compilation_is_deterministic() {
    let ci = CompilerImpl::parse("clang-O2").unwrap();
    let a = compile_source(SRC, ci).unwrap();
    let b = compile_source(SRC, ci).unwrap();
    assert_eq!(format!("{:?}", a.program), format!("{:?}", b.program));
    assert_eq!(a.global_addrs, b.global_addrs);
    assert_eq!(a.string_addrs, b.string_addrs);
}

#[test]
fn differential_outcomes_are_deterministic() {
    let diff = CompDiff::from_source_default(SRC, DiffConfig::default()).unwrap();
    let a = diff.run_input(b"xyz");
    let b = diff.run_input(b"xyz");
    assert_eq!(a.hashes, b.hashes);
    assert_eq!(a.divergent, b.divergent);
}

#[test]
fn campaigns_replay_exactly() {
    let run = || {
        let afl = CompDiffAfl::from_source_default(
            SRC,
            FuzzConfig {
                max_execs: 2_000,
                seed: 99,
                ..Default::default()
            },
            DiffConfig::default(),
        )
        .unwrap();
        let stats = afl.run(&[b"seed".to_vec()]);
        (
            stats.campaign.execs,
            stats.campaign.edges,
            stats.campaign.corpus_len,
            stats.store.reports().len(),
            stats.store.unique_signatures(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn juliet_suite_generation_is_deterministic() {
    let a = juliet::suite(0.002);
    let b = juliet::suite(0.002);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.bad, y.bad);
        assert_eq!(x.good, y.good);
    }
}

#[test]
fn target_builds_are_deterministic() {
    let a = targets::build_all();
    let b = targets::build_all();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.src, y.src, "{}", x.spec.name);
    }
}
