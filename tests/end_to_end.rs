//! Cross-crate integration: the paper's §2 illustrative examples, ported
//! to MinC, through the full pipeline (frontend → ten compilers → VM →
//! differential comparison → sanitizers).

use compdiff::{CompDiff, DiffConfig};
use minc_vm::{ExitStatus, SanitizerKind, VmConfig};

fn divergent(src: &str) -> bool {
    CompDiff::from_source_default(src, DiffConfig::default())
        .expect("compiles")
        .is_divergent(b"")
}

fn sanitizer_catches(src: &str, kind: SanitizerKind) -> bool {
    let bin = sanitizers::compile_sanitized(src).expect("compiles");
    matches!(
        sanitizers::run_sanitized(&bin, b"", &VmConfig::default(), kind).status,
        ExitStatus::Sanitizer(_)
    )
}

/// Paper Listing 1: overflow guard deleted by optimizing compilers.
#[test]
fn listing1_integer_overflow_guard() {
    let src = r#"
        int dump_data(int offset, int len) {
            int size = 100;
            if (offset + len > size || offset < 0 || len < 0) { return -1; }
            if (offset + len < offset) { return -1; }
            return 0;
        }
        int main() {
            printf("%d\n", dump_data(2147483647 - 100, 101));
            return 0;
        }
    "#;
    assert!(divergent(src));
    // UBSan sees the overflowing addition.
    assert!(sanitizer_catches(src, SanitizerKind::Ubsan));
}

/// Paper Listing 2 (binutils dwarf.c): relational comparison of pointers
/// to different objects. No sanitizer has a check; CompDiff catches it
/// because layouts differ.
#[test]
fn listing2_pointer_comparison() {
    let src = r#"
        int object_a;
        long object_b;
        int main() {
            char* saved_start = (char*)&object_a;
            char* look_for = (char*)&object_b;
            if (look_for <= saved_start) { printf("before\n"); }
            else { printf("after\n"); }
            return 0;
        }
    "#;
    assert!(divergent(src));
    for kind in [
        SanitizerKind::Asan,
        SanitizerKind::Ubsan,
        SanitizerKind::Msan,
    ] {
        assert!(
            !sanitizer_catches(src, kind),
            "{kind} should miss pointer comparison"
        );
    }
}

/// Paper Listing 3 (tcpdump print-arp.c): two calls returning one static
/// buffer, both arguments of a single print call.
#[test]
fn listing3_evaluation_order() {
    let src = r#"
        char* get_linkaddr_string(int v) {
            static char buffer[8];
            buffer[0] = (char)('0' + v % 10);
            buffer[1] = '\0';
            return buffer;
        }
        int main() {
            printf("who-is %s tell %s\n", get_linkaddr_string(1), get_linkaddr_string(2));
            return 0;
        }
    "#;
    let diff = CompDiff::from_source_default(src, DiffConfig::default()).unwrap();
    let outcome = diff.run_input(b"");
    assert!(outcome.divergent);
    // The partition must split gcc-family from clang-family (argument
    // evaluation order is a *family* property here).
    let impls = diff.impls();
    for class in &outcome.classes {
        let families: std::collections::HashSet<_> =
            class.iter().map(|&i| impls[i].family).collect();
        assert_eq!(
            families.len(),
            1,
            "classes must not mix families: {outcome:?}"
        );
    }
    for kind in [
        SanitizerKind::Asan,
        SanitizerKind::Ubsan,
        SanitizerKind::Msan,
    ] {
        assert!(
            !sanitizer_catches(src, kind),
            "{kind} should miss EvalOrder"
        );
    }
}

/// Paper Listing 4 (exiv2): variable stays uninitialized on the
/// empty-input path, then is printed. MSan deliberately does not report
/// print-only uses; CompDiff diverges.
#[test]
fn listing4_uninitialized_print() {
    let src = r#"
        int main() {
            char text[8];
            long n = read_input(text, 7L);
            text[n] = '\0';
            int l;
            if (text[0] >= '0' && text[0] <= '9') { l = (int)text[0] - '0'; }
            printf("0x%x\n", (l & 65535) >> 8);
            return 0;
        }
    "#;
    // Empty input: the "is >> l" analog fails, l stays uninitialized.
    let diff = CompDiff::from_source_default(src, DiffConfig::default()).unwrap();
    assert!(diff.is_divergent(b""));
    // A digit input initializes l: stable.
    assert!(!diff.is_divergent(b"7"));
    assert!(!sanitizer_catches(src, SanitizerKind::Msan));
}

/// The paper's php `__LINE__` finding: implementation-defined line
/// attribution for multi-line constructs.
#[test]
fn line_macro_attribution() {
    let src =
        "int main() {\n    printf(\"error at line %d\\n\",\n        __LINE__);\n    return 0;\n}\n";
    assert!(divergent(src));
}

/// Stable programs stay stable across every implementation — the
/// precondition for CompDiff's zero-false-positive property.
#[test]
fn defined_program_is_stable() {
    let src = r#"
        struct item { int id; long weight; };
        int total(struct item* v, int n) {
            int i;
            int acc = 0;
            for (i = 0; i < n; i++) { acc += v[i].id * 2 + (int)v[i].weight; }
            return acc;
        }
        int main() {
            struct item items[3];
            int i;
            for (i = 0; i < 3; i++) { items[i].id = i; items[i].weight = (long)(i * 10); }
            unsigned u = 4000000000u;
            printf("%d %u %ld\n", total(items, 3), u + 300000000u, (long)sizeof(struct item));
            char buf[32];
            strcpy(buf, "stable");
            printf("%s %d\n", buf, strcmp(buf, "stable"));
            return 0;
        }
    "#;
    let diff = CompDiff::from_source_default(src, DiffConfig::default()).unwrap();
    let outcome = diff.run_input(b"");
    assert!(!outcome.divergent, "classes: {:?}", outcome.classes);
    assert_eq!(outcome.classes.len(), 1);
}

/// Crash-vs-no-crash divergence: a division whose result is dead traps at
/// -O0 and is deleted at -O2 (paper Finding 4's flip side).
#[test]
fn dead_trap_divergence() {
    let src = r#"
        int main() {
            int z = (int)input_size();
            int dead = 100 / z;
            printf("survived\n");
            return 0;
        }
    "#;
    let diff = CompDiff::from_source_default(src, DiffConfig::default()).unwrap();
    let outcome = diff.run_input(b"");
    assert!(outcome.divergent);
    let statuses: std::collections::HashSet<u8> =
        outcome.results.iter().map(|r| r.status.as_code()).collect();
    assert!(statuses.len() >= 2, "must mix trap and clean exits");
}
