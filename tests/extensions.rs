//! Tests for the implemented future-work extension (paper §5):
//! NEZHA-style divergence feedback in CompDiff-AFL++.

use compdiff::{CompDiffAfl, DiffConfig};
use fuzzing::FuzzConfig;

/// A target with *staged* unstable code: a shallow divergence (printing an
/// uninitialized byte when the first payload byte is 'D') and a deeper one
/// gated on bytes that only matter inside the already-divergent path —
/// i.e. no new *code* coverage separates the stages, only new divergence
/// classes.
const STAGED: &str = r#"
    int main() {
        char b[12];
        long n = read_input(b, 12L);
        if (n < 4) { printf("short\n"); return 1; }
        if (b[0] != 'D') { printf("skip\n"); return 0; }
        int u;
        int sel = (int)b[1];
        /* The divergence class depends on sel: different selections print
           different junk slices; a crash hides at one particular value. */
        if (sel == 77) {
            int* p = 0;
            printf("%d\n", *p + u);
        }
        printf("junk %d\n", (u >> (sel & 7)) & 15);
        return 0;
    }
"#;

fn run(feedback: bool, execs: u64) -> (usize, usize, bool) {
    let afl = CompDiffAfl::from_source_default(
        STAGED,
        FuzzConfig {
            max_execs: execs,
            seed: 11,
            max_input_len: 12,
            ..Default::default()
        },
        DiffConfig::default(),
    )
    .unwrap()
    .with_divergence_feedback(feedback);
    let stats = afl.run(&[b"XXXX".to_vec()]);
    let crashed = !stats.campaign.crashes.is_empty();
    (
        stats.store.unique_signatures(),
        stats.campaign.corpus_len,
        crashed,
    )
}

#[test]
fn divergence_feedback_enqueues_novel_diff_inputs() {
    let (sigs_off, corpus_off, _) = run(false, 6_000);
    let (sigs_on, corpus_on, _) = run(true, 6_000);
    assert!(
        sigs_off >= 1 && sigs_on >= 1,
        "both modes find the shallow divergence"
    );
    // Feedback mode keeps divergence-triggering inputs in the corpus even
    // when they add no coverage, so the corpus grows.
    assert!(
        corpus_on > corpus_off,
        "feedback should grow the corpus: {corpus_on} vs {corpus_off}"
    );
    // And mutating from those seeds explores more divergence classes.
    assert!(
        sigs_on >= sigs_off,
        "feedback should not lose signatures: {sigs_on} vs {sigs_off}"
    );
}

#[test]
fn feedback_off_is_paper_default() {
    // The builder default matches the paper's base design.
    let afl = CompDiffAfl::from_source_default(
        STAGED,
        FuzzConfig {
            max_execs: 100,
            seed: 1,
            ..Default::default()
        },
        DiffConfig::default(),
    )
    .unwrap();
    assert!(!afl.divergence_feedback);
}

#[test]
fn feedback_mode_remains_deterministic() {
    let a = run(true, 2_000);
    let b = run(true, 2_000);
    assert_eq!(a, b);
}
