//! Precision of the IR lint's provenance channel on the fuzzing catalog.
//!
//! The paper's pitch for compiler-driven detection is that an optimizer's
//! own UB-justified rewrites are *evidence*, not heuristics: if a rewrite
//! changed observable behaviour, differential execution can confirm it.
//! This test holds the lint to that standard — every provenance-backed
//! finding on the 23-target catalog must point at a dispatch arm whose
//! ground-truth trigger input produces a dynamically confirmed divergence
//! across the default ten implementations. In other words, the provenance
//! channel is a strict-recall subset of what the dynamic oracle confirms.

use compdiff::{CompDiff, DiffConfig};
use staticheck_ir::UnstableLint;

/// Maps a source line to the dispatch arm containing it, by scanning for
/// the last `(cmd == N)` guard at or above the line. Generated targets
/// are a single `if`/`else if` chain, so the last guard seen is the
/// enclosing arm.
fn arm_cmd_for_line(src: &str, line: u32) -> Option<u8> {
    let mut cmd = None;
    for (i, l) in src.lines().enumerate() {
        if (i + 1) as u32 > line {
            break;
        }
        if let Some(pos) = l.find("(cmd == ") {
            let digits: String = l[pos + 8..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            cmd = digits.parse::<u8>().ok();
        }
    }
    cmd
}

#[test]
fn provenance_findings_are_dynamically_confirmable() {
    let lint = UnstableLint::new();
    let mut provenance_total = 0usize;
    for spec in targets::catalog() {
        let target = targets::build(&spec);
        let findings = lint
            .run_source(&target.src)
            .unwrap_or_else(|e| panic!("{} does not check: {e}", spec.name));
        let backed: Vec<_> = findings.iter().filter(|f| !f.impls.is_empty()).collect();
        if backed.is_empty() {
            continue;
        }
        let diff = CompDiff::from_source_default(&target.src, DiffConfig::default())
            .unwrap_or_else(|e| panic!("{} does not compile: {e:?}", spec.name));
        for f in backed {
            provenance_total += 1;
            let line = f.finding.span.line;
            let cmd = arm_cmd_for_line(&target.src, line).unwrap_or_else(|| {
                panic!(
                    "{}: provenance finding at line {line} is outside every dispatch arm",
                    spec.name
                )
            });
            let bug = spec
                .bugs
                .iter()
                .find(|b| b.cmd == cmd)
                .unwrap_or_else(|| panic!("{}: no injected bug for cmd {cmd}", spec.name));
            assert!(
                diff.is_divergent(&target.trigger(bug)),
                "{}: provenance finding [{}] at line {line} maps to bug `{}` \
                 whose trigger does not diverge — the provenance channel \
                 over-claimed",
                spec.name,
                f.finding.defect,
                bug.id
            );
        }
    }
    // Non-vacuous: the catalog seeds uninitialized reads, overflow-check
    // deletions, and unroll miscompiles that all leave provenance.
    assert!(
        provenance_total >= 10,
        "expected a healthy provenance-backed finding count, got {provenance_total}"
    );
}
