//! The paper's headline quantitative claims, checked end to end at small
//! scale (the full-scale numbers come from the `exp_*` binaries; see
//! EXPERIMENTS.md).

use compdiff::SubsetAnalysis;
use juliet::{evaluate, suite, table3, Group};
use minc_compile::CompilerImpl;
use minc_vm::VmConfig;

fn small_suite_evals() -> Vec<juliet::TestEval> {
    let vm = VmConfig::default();
    suite(0.004).iter().map(|t| evaluate(t, &vm)).collect()
}

/// Finding 5: CompDiff has no false positives on the good variants.
#[test]
fn finding5_no_false_positives() {
    let evals = small_suite_evals();
    let fps: Vec<&str> = evals
        .iter()
        .filter(|e| e.compdiff_fp)
        .map(|e| e.id.as_str())
        .collect();
    assert!(fps.is_empty(), "CompDiff false positives: {fps:?}");
}

/// Finding 2/3: CompDiff complements sanitizers — it uniquely detects
/// bugs in several categories and has the broadest coverage (every row
/// where any tool detects something, CompDiff detects something too,
/// except the sanitizer-specialty rows).
#[test]
fn finding2_compdiff_detects_unique_bugs() {
    let evals = small_suite_evals();
    let t = table3(&evals);
    let total_unique: usize = t.rows.iter().map(|r| r.unique).sum();
    assert!(
        total_unique > 0,
        "CompDiff must uniquely detect bugs\n{}",
        t.render()
    );
    // Rows where CompDiff beats the combined sanitizers, per the paper:
    for g in [
        Group::BadStructPointer,
        Group::UninitializedMemory,
        Group::PointerSubtraction,
    ] {
        let row = t.rows.iter().find(|r| r.group == g).unwrap();
        assert!(
            row.compdiff > row.san_total,
            "{:?}: CompDiff {} <= sanitizers {}\n{}",
            g,
            row.compdiff,
            row.san_total,
            t.render()
        );
    }
}

/// Finding 4: CompDiff misses bugs sanitizers catch — the memory-error
/// and integer rows have sanitizers ahead (it complements, not replaces).
#[test]
fn finding4_sanitizers_win_their_specialties() {
    let evals = small_suite_evals();
    let t = table3(&evals);
    for g in [Group::MemoryError, Group::IntegerError, Group::DivideByZero] {
        let row = t.rows.iter().find(|r| r.group == g).unwrap();
        assert!(
            row.san_total > row.compdiff,
            "{:?}: sanitizers {} <= CompDiff {}\n{}",
            g,
            row.san_total,
            row.compdiff,
            t.render()
        );
    }
}

/// §4.2: more implementations detect more bugs; the best pair combines
/// different families with unoptimizing + aggressive levels; same-family
/// similar-level pairs are worst; the full set is optimal.
#[test]
fn figure1_subset_structure() {
    let vm = VmConfig::default();
    let vectors: Vec<Vec<u64>> = suite(0.004)
        .iter()
        .map(|t| evaluate(t, &vm).hashes)
        .collect();
    let analysis = SubsetAnalysis::analyze(&vectors, &CompilerImpl::default_set());
    let stats = analysis.size_stats();

    // Medians grow (weakly) with subset size.
    for w in stats.windows(2) {
        assert!(
            w[1].median >= w[0].median,
            "median must not drop with size: {} -> {}",
            w[0].size,
            w[1].size
        );
    }
    // The full set detects at least as much as any subset.
    let full = analysis.full_set_detection();
    assert!(stats.iter().all(|s| s.max <= full));

    // Cross-family O0/aggressive pairs beat same-family pairs.
    let cross = analysis.detection_of(&["gcc-O0", "clang-O3"]).unwrap();
    let same = analysis.detection_of(&["gcc-O2", "gcc-O3"]).unwrap();
    assert!(
        cross > same,
        "{{gcc-O0, clang-O3}} ({cross}) must beat {{gcc-O2, gcc-O3}} ({same})"
    );
    // The best pair recovers most of the full set (paper: ~98%).
    assert!(
        stats[0].max as f64 >= 0.75 * full as f64,
        "best pair {} of {full}",
        stats[0].max
    );
}

/// RQ3 / Table 6: 42 of the 78 real-target bugs are sanitizer-visible,
/// 36 are CompDiff-unique (checked in full in the targets crate; here we
/// assert the aggregate through the public API).
#[test]
fn table6_overlap_claim() {
    let verdicts = targets::verify_all(&VmConfig::default());
    let compdiff_total = verdicts.iter().filter(|v| v.compdiff).count();
    let san_total = verdicts
        .iter()
        .filter(|v| v.compdiff && v.sanitizers.iter().any(|&s| s))
        .count();
    assert_eq!(compdiff_total, 78, "all injected bugs detected");
    assert_eq!(san_total, 42, "sanitizer overlap");
    assert_eq!(compdiff_total - san_total, 36, "CompDiff-unique bugs");
}

/// RQ5: benign non-determinism (timestamps) is scrubbed by output
/// filters, so it does not masquerade as unstable code.
#[test]
fn rq5_timestamp_filtering() {
    use compdiff::{CompDiff, DiffConfig, OutputFilter};
    // A wireshark-style warning that embeds a "timestamp" derived from
    // implementation-defined state (rand), plus real content.
    let src = r#"
        int main() {
            int h = rand() % 24;
            int m = rand() % 60;
            int s = rand() % 60;
            printf("%02d:%02d:%02d [Epan WARNING] malformed field\n", h, m, s);
            printf("payload ok\n");
            return 0;
        }
    "#;
    let raw = CompDiff::from_source_default(src, DiffConfig::default()).unwrap();
    assert!(raw.is_divergent(b""), "unscrubbed timestamps diverge");
    let filtered = CompDiff::from_source_default(
        src,
        DiffConfig {
            filters: vec![OutputFilter::Timestamps],
            ..Default::default()
        },
    )
    .unwrap();
    assert!(!filtered.is_divergent(b""), "scrubbed output is stable");
}

/// RQ2: the seeded compiler miscompilations are caught by CompDiff while
/// fuzzing the MuJS stand-in.
#[test]
fn rq2_compiler_bugs() {
    let mujs = targets::build_all()
        .into_iter()
        .find(|t| t.spec.name == "MuJS")
        .expect("MuJS target");
    let vm = VmConfig::default();
    let verdicts = targets::verify_target(&mujs, &vm);
    let compiler_bugs: Vec<_> = verdicts.iter().filter(|v| v.id.contains("misc")).collect();
    assert_eq!(compiler_bugs.len(), 3, "two gcc + one clang miscompilation");
    assert!(compiler_bugs.iter().all(|v| v.compdiff));
    assert!(
        compiler_bugs
            .iter()
            .all(|v| !v.sanitizers.iter().any(|&s| s)),
        "no sanitizer flags a miscompilation"
    );
}
