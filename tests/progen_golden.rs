//! Golden-file tests for the `progen` pipeline: pinned generator outputs
//! and evolved-then-reduced divergence witnesses.
//!
//! The generated files pin the generator's byte-level determinism across
//! refactors (same seed, same program — the CLI contract `compdiff progen
//! generate --seed N` relies on). The witness files were produced by a
//! seeded `compdiff progen evolve` run followed by automatic reduction;
//! the tests re-verify that each still diverges under the full
//! 10-implementation oracle and that each is a reduction fixpoint.

use compdiff::{CompDiff, DiffConfig, Json};
use fuzzing::Rng;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/progen")
}

fn manifest() -> Json {
    let text = std::fs::read_to_string(golden_dir().join("manifest.json")).unwrap();
    Json::parse(&text).unwrap()
}

fn unhex(s: &str) -> Vec<u8> {
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap())
        .collect()
}

#[test]
fn pinned_generator_outputs_are_stable() {
    let m = manifest();
    let entries = m.get("generated").and_then(Json::as_array).unwrap();
    assert_eq!(entries.len(), 3);
    for entry in entries {
        let file = entry.get("file").and_then(Json::as_str).unwrap();
        let seed = entry.get("seed").and_then(Json::as_u64).unwrap();
        let pinned = std::fs::read_to_string(golden_dir().join(file)).unwrap();
        // Matches the CLI: `progen generate --seed N` derives program i's
        // PRNG from mix(seed, i).
        let genome = progen::generate(&mut Rng::new(progen::mix(seed, 0)));
        assert_eq!(
            genome.source(),
            pinned,
            "generator drifted for seed {seed} ({file}); if intentional, re-pin the golden file"
        );
    }
}

#[test]
fn pinned_generator_outputs_check_and_lint() {
    let m = manifest();
    for entry in m.get("generated").and_then(Json::as_array).unwrap() {
        let file = entry.get("file").and_then(Json::as_str).unwrap();
        let src = std::fs::read_to_string(golden_dir().join(file)).unwrap();
        minc::check(&src).unwrap_or_else(|e| panic!("{file} no longer checks: {e}"));
        let findings = staticheck_ir::UnstableLint::new().run_source(&src).unwrap();
        assert!(
            !findings.is_empty(),
            "{file} should trip the unstable lint (idiom-biased by construction)"
        );
    }
}

#[test]
fn pinned_witnesses_still_diverge() {
    let m = manifest();
    let entries = m.get("witnesses").and_then(Json::as_array).unwrap();
    assert_eq!(entries.len(), 3);
    for entry in entries {
        let file = entry.get("file").and_then(Json::as_str).unwrap();
        let probe = unhex(entry.get("probe").and_then(Json::as_str).unwrap());
        let src = std::fs::read_to_string(golden_dir().join(file)).unwrap();
        let diff = CompDiff::from_source_default(&src, DiffConfig::default())
            .unwrap_or_else(|e| panic!("{file} no longer compiles: {e}"));
        let outcome = diff.run_input(&probe);
        assert!(
            outcome.divergent,
            "{file} no longer diverges on its pinned probe"
        );
    }
}

#[test]
fn pinned_witnesses_are_reduction_fixpoints() {
    let m = manifest();
    for entry in m.get("witnesses").and_then(Json::as_array).unwrap() {
        let file = entry.get("file").and_then(Json::as_str).unwrap();
        let probe = unhex(entry.get("probe").and_then(Json::as_str).unwrap());
        let src = std::fs::read_to_string(golden_dir().join(file)).unwrap();
        let out = progen::reduce(&src, &probe)
            .unwrap_or_else(|e| panic!("{file} failed to re-reduce: {e}"));
        assert_eq!(
            out.source, src,
            "{file} is not minimal: the reducer shrank it further"
        );
    }
}
