//! Property-based tests (proptest) for the core invariants.
//!
//! The headline property is *optimization soundness*: randomly generated
//! **UB-free** MinC programs must produce byte-identical output under all
//! ten compiler implementations. This is exactly CompDiff's zero-false-
//! positive precondition, checked against thousands of random programs —
//! a differential test of the compiler and VM themselves.

use compdiff::{apply_filters, hash64, detected_by, OutputFilter};
use minc_compile::{compile, CompilerImpl};
use minc_vm::{execute, ExitStatus, VmConfig};
use proptest::prelude::*;

/// A random UB-free statement over the unsigned variables u0..u3.
/// Unsigned arithmetic wraps (defined); divisors are forced odd; shift
/// amounts are masked below the width.
#[derive(Debug, Clone)]
enum Op {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Div,
    Rem,
    ShlK(u8),
    ShrK(u8),
}

#[derive(Debug, Clone)]
enum DefinedStmt {
    Assign { dst: u8, a: u8, b: u8, op: Op },
    LoopAccum { dst: u8, src: u8, trips: u8 },
    IfSwap { a: u8, b: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Add),
        Just(Op::Sub),
        Just(Op::Mul),
        Just(Op::And),
        Just(Op::Or),
        Just(Op::Xor),
        Just(Op::Div),
        Just(Op::Rem),
        (0u8..31).prop_map(Op::ShlK),
        (0u8..31).prop_map(Op::ShrK),
    ]
}

fn stmt_strategy() -> impl Strategy<Value = DefinedStmt> {
    prop_oneof![
        (0u8..4, 0u8..4, 0u8..4, op_strategy())
            .prop_map(|(dst, a, b, op)| DefinedStmt::Assign { dst, a, b, op }),
        // Trip counts 5 and 7 are excluded: they trigger the two
        // *deliberately seeded* -O3 unroller miscompilations (the paper's
        // RQ2 compiler bugs). `seeded_miscompilations_are_the_only_unsoundness`
        // below pins down that those are the only soundness violations.
        (0u8..4, 0u8..4, 1u8..9).prop_filter("seeded miscompile trips", |(_, _, t)| *t != 5 && *t != 7)
            .prop_map(|(dst, src, trips)| DefinedStmt::LoopAccum { dst, src, trips }),
        (0u8..4, 0u8..4).prop_map(|(a, b)| DefinedStmt::IfSwap { a, b }),
    ]
}

fn render_program(inits: &[u32; 4], stmts: &[DefinedStmt]) -> String {
    let mut src = String::from("int main() {\n");
    for (i, v) in inits.iter().enumerate() {
        src.push_str(&format!("    unsigned u{i} = {v}u;\n"));
    }
    src.push_str("    int k;\n");
    for (si, s) in stmts.iter().enumerate() {
        match s {
            DefinedStmt::Assign { dst, a, b, op } => {
                let expr = match op {
                    Op::Add => format!("u{a} + u{b}"),
                    Op::Sub => format!("u{a} - u{b}"),
                    Op::Mul => format!("u{a} * u{b}"),
                    Op::And => format!("u{a} & u{b}"),
                    Op::Or => format!("u{a} | u{b}"),
                    Op::Xor => format!("u{a} ^ u{b}"),
                    // `| 1` keeps the divisor non-zero: defined.
                    Op::Div => format!("u{a} / (u{b} | 1u)"),
                    Op::Rem => format!("u{a} % (u{b} | 1u)"),
                    Op::ShlK(k) => format!("u{a} << {k}"),
                    Op::ShrK(k) => format!("u{a} >> {k}"),
                };
                src.push_str(&format!("    u{dst} = {expr};\n"));
            }
            DefinedStmt::LoopAccum { dst, src: s2, trips } => {
                src.push_str(&format!(
                    "    for (k = 0; k < {trips}; k++) {{ u{dst} = u{dst} * 31u + u{s2} + (unsigned)k; }}\n"
                ));
            }
            DefinedStmt::IfSwap { a, b } => {
                src.push_str(&format!(
                    "    if (u{a} > u{b}) {{ unsigned t{si} = u{a}; u{a} = u{b}; u{b} = t{si}; }}\n"
                ));
            }
        }
    }
    src.push_str("    printf(\"%u %u %u %u\\n\", u0, u1, u2, u3);\n");
    src.push_str("    return 0;\n}\n");
    src
}

/// The two seeded -O3 miscompilations (gcc-sim: trip-7 multiply loops;
/// clang-sim: trip-5 divide loops) are the *only* soundness violations:
/// the same loops compiled at every other level agree with -O0.
#[test]
fn seeded_miscompilations_are_the_only_unsoundness() {
    for (trips, body) in [(7u8, "u0 = u0 * 31u + (unsigned)k;"), (5u8, "u0 = u0 + 100u / ((unsigned)k + 1u);")] {
        let src = format!(
            "int main() {{\n    unsigned u0 = 3u;\n    int k;\n    for (k = 0; k < {trips}; k++) {{ {body} }}\n    printf(\"%u\\n\", u0);\n    return 0;\n}}\n"
        );
        let checked = minc::check(&src).unwrap();
        let vm = VmConfig::default();
        let reference = execute(&compile(&checked, CompilerImpl::parse("gcc-O0").unwrap()), b"", &vm);
        let mut miscompiled = Vec::new();
        for ci in CompilerImpl::default_set() {
            let r = execute(&compile(&checked, ci), b"", &vm);
            if r.stdout != reference.stdout {
                miscompiled.push(ci.to_string());
            }
        }
        // Exactly one family's -O3 is affected per seeded bug.
        assert_eq!(miscompiled.len(), 1, "trips={trips}: {miscompiled:?}");
        assert!(miscompiled[0].ends_with("-O3"), "{miscompiled:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..Default::default() })]

    /// UB-free programs are stable: all ten implementations agree.
    #[test]
    fn defined_programs_never_diverge(
        inits in proptest::array::uniform4(0u32..1_000_000),
        stmts in proptest::collection::vec(stmt_strategy(), 1..12),
    ) {
        let inits = [inits[0], inits[1], inits[2], inits[3]];
        let src = render_program(&inits, &stmts);
        let checked = minc::check(&src)
            .unwrap_or_else(|e| panic!("generated program must compile: {e}\n{src}"));
        let vm = VmConfig::default();
        let mut outputs: Vec<(String, Vec<u8>, ExitStatus)> = Vec::new();
        for ci in CompilerImpl::default_set() {
            let bin = compile(&checked, ci);
            let r = execute(&bin, b"", &vm);
            outputs.push((ci.to_string(), r.stdout, r.status));
        }
        let (ref name0, ref out0, ref st0) = outputs[0];
        for (name, out, st) in &outputs[1..] {
            prop_assert_eq!(
                (out, st),
                (out0, st0),
                "{} and {} disagree on a defined program:\n{}",
                name0, name, src
            );
        }
    }

    /// Pretty-printed programs re-parse to an equivalent tree.
    #[test]
    fn pretty_print_round_trips(
        inits in proptest::array::uniform4(0u32..1_000_000),
        stmts in proptest::collection::vec(stmt_strategy(), 1..10),
    ) {
        let inits = [inits[0], inits[1], inits[2], inits[3]];
        let src = render_program(&inits, &stmts);
        let p1 = minc::parse(&src).unwrap();
        let printed = minc::pretty::program(&p1);
        let p2 = minc::parse(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        prop_assert_eq!(printed.clone(), minc::pretty::program(&p2));
    }

    /// MurmurHash3 is deterministic and single-byte changes never collide
    /// in practice.
    #[test]
    fn murmur_sensitivity(data in proptest::collection::vec(any::<u8>(), 0..256), flip in any::<u8>()) {
        prop_assert_eq!(hash64(&data), hash64(&data));
        if !data.is_empty() {
            let mut other = data.clone();
            let idx = (flip as usize) % other.len();
            other[idx] ^= 0x5a;
            if other != data {
                prop_assert_ne!(hash64(&data), hash64(&other));
            }
        }
    }

    /// Output filters are idempotent: scrubbing twice equals scrubbing once.
    #[test]
    fn filters_idempotent(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let filters = [
            OutputFilter::Timestamps,
            OutputFilter::PointerAddresses,
            OutputFilter::LongNumbers { min_digits: 6 },
        ];
        let once = apply_filters(&data, &filters);
        let twice = apply_filters(&once, &filters);
        prop_assert_eq!(once, twice);
    }

    /// Subset detection is monotone under inclusion.
    #[test]
    fn subset_detection_monotone(
        hashes in proptest::collection::vec(0u64..8, 10),
        small_mask in 0u32..1024,
        extra in 0u32..1024,
    ) {
        let big_mask = small_mask | extra;
        if detected_by(&hashes, small_mask) {
            prop_assert!(detected_by(&hashes, big_mask));
        }
    }

    /// Havoc mutants respect the length bound and campaigns of the RNG are
    /// reproducible.
    #[test]
    fn havoc_respects_bounds(seed in any::<u64>(), input in proptest::collection::vec(any::<u8>(), 1..64)) {
        let mut r1 = fuzzing::Rng::new(seed);
        let mut r2 = fuzzing::Rng::new(seed);
        let a = fuzzing::mutate::havoc(&input, &mut r1, 64);
        let b = fuzzing::mutate::havoc(&input, &mut r2, 64);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.len() <= 64);
        prop_assert!(!a.is_empty());
    }
}
