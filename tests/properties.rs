//! Property-based tests for the core invariants, driven by the repo's own
//! deterministic PRNG (`fuzzing::Rng`) so the whole workspace tests
//! offline with zero external crates.
//!
//! The headline property is *optimization soundness*: randomly generated
//! **UB-free** MinC programs must produce byte-identical output under all
//! ten compiler implementations. This is exactly CompDiff's zero-false-
//! positive precondition, checked against hundreds of random programs —
//! a differential test of the compiler and VM themselves.

use compdiff::{apply_filters, detected_by, hash64, OutputFilter};
use fuzzing::Rng;
use minc_compile::{compile, CompilerImpl};
use minc_vm::{execute, ExitStatus, VmConfig};

/// A random UB-free statement over the unsigned variables u0..u3.
/// Unsigned arithmetic wraps (defined); divisors are forced odd; shift
/// amounts are masked below the width.
#[derive(Debug, Clone)]
enum Op {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Div,
    Rem,
    ShlK(u8),
    ShrK(u8),
}

#[derive(Debug, Clone)]
enum DefinedStmt {
    Assign { dst: u8, a: u8, b: u8, op: Op },
    LoopAccum { dst: u8, src: u8, trips: u8 },
    IfSwap { a: u8, b: u8 },
}

fn random_op(rng: &mut Rng) -> Op {
    match rng.below(10) {
        0 => Op::Add,
        1 => Op::Sub,
        2 => Op::Mul,
        3 => Op::And,
        4 => Op::Or,
        5 => Op::Xor,
        6 => Op::Div,
        7 => Op::Rem,
        8 => Op::ShlK(rng.below(31) as u8),
        _ => Op::ShrK(rng.below(31) as u8),
    }
}

fn random_stmt(rng: &mut Rng) -> DefinedStmt {
    match rng.below(3) {
        0 => DefinedStmt::Assign {
            dst: rng.below(4) as u8,
            a: rng.below(4) as u8,
            b: rng.below(4) as u8,
            op: random_op(rng),
        },
        1 => {
            // Trip counts 5 and 7 are excluded: they trigger the two
            // *deliberately seeded* -O3 unroller miscompilations (the
            // paper's RQ2 compiler bugs).
            // `seeded_miscompilations_are_the_only_unsoundness` below pins
            // down that those are the only soundness violations.
            let trips = loop {
                let t = 1 + rng.below(8) as u8;
                if t != 5 && t != 7 {
                    break t;
                }
            };
            DefinedStmt::LoopAccum {
                dst: rng.below(4) as u8,
                src: rng.below(4) as u8,
                trips,
            }
        }
        _ => DefinedStmt::IfSwap {
            a: rng.below(4) as u8,
            b: rng.below(4) as u8,
        },
    }
}

fn random_inits(rng: &mut Rng) -> [u32; 4] {
    [0; 4].map(|_| rng.below(1_000_000) as u32)
}

fn random_stmts(rng: &mut Rng, max: usize) -> Vec<DefinedStmt> {
    let n = 1 + rng.below(max);
    (0..n).map(|_| random_stmt(rng)).collect()
}

fn render_program(inits: &[u32; 4], stmts: &[DefinedStmt]) -> String {
    let mut src = String::from("int main() {\n");
    for (i, v) in inits.iter().enumerate() {
        src.push_str(&format!("    unsigned u{i} = {v}u;\n"));
    }
    src.push_str("    int k;\n");
    for (si, s) in stmts.iter().enumerate() {
        match s {
            DefinedStmt::Assign { dst, a, b, op } => {
                let expr = match op {
                    Op::Add => format!("u{a} + u{b}"),
                    Op::Sub => format!("u{a} - u{b}"),
                    Op::Mul => format!("u{a} * u{b}"),
                    Op::And => format!("u{a} & u{b}"),
                    Op::Or => format!("u{a} | u{b}"),
                    Op::Xor => format!("u{a} ^ u{b}"),
                    // `| 1` keeps the divisor non-zero: defined.
                    Op::Div => format!("u{a} / (u{b} | 1u)"),
                    Op::Rem => format!("u{a} % (u{b} | 1u)"),
                    Op::ShlK(k) => format!("u{a} << {k}"),
                    Op::ShrK(k) => format!("u{a} >> {k}"),
                };
                src.push_str(&format!("    u{dst} = {expr};\n"));
            }
            DefinedStmt::LoopAccum {
                dst,
                src: s2,
                trips,
            } => {
                src.push_str(&format!(
                    "    for (k = 0; k < {trips}; k++) {{ u{dst} = u{dst} * 31u + u{s2} + (unsigned)k; }}\n"
                ));
            }
            DefinedStmt::IfSwap { a, b } => {
                src.push_str(&format!(
                    "    if (u{a} > u{b}) {{ unsigned t{si} = u{a}; u{a} = u{b}; u{b} = t{si}; }}\n"
                ));
            }
        }
    }
    src.push_str("    printf(\"%u %u %u %u\\n\", u0, u1, u2, u3);\n");
    src.push_str("    return 0;\n}\n");
    src
}

/// The two seeded -O3 miscompilations (gcc-sim: trip-7 multiply loops;
/// clang-sim: trip-5 divide loops) are the *only* soundness violations:
/// the same loops compiled at every other level agree with -O0.
#[test]
fn seeded_miscompilations_are_the_only_unsoundness() {
    for (trips, body) in [
        (7u8, "u0 = u0 * 31u + (unsigned)k;"),
        (5u8, "u0 = u0 + 100u / ((unsigned)k + 1u);"),
    ] {
        let src = format!(
            "int main() {{\n    unsigned u0 = 3u;\n    int k;\n    for (k = 0; k < {trips}; k++) {{ {body} }}\n    printf(\"%u\\n\", u0);\n    return 0;\n}}\n"
        );
        let checked = minc::check(&src).unwrap();
        let vm = VmConfig::default();
        let reference = execute(
            &compile(&checked, CompilerImpl::parse("gcc-O0").unwrap()),
            b"",
            &vm,
        );
        let mut miscompiled = Vec::new();
        for ci in CompilerImpl::default_set() {
            let r = execute(&compile(&checked, ci), b"", &vm);
            if r.stdout != reference.stdout {
                miscompiled.push(ci.to_string());
            }
        }
        // Exactly one family's -O3 is affected per seeded bug.
        assert_eq!(miscompiled.len(), 1, "trips={trips}: {miscompiled:?}");
        assert!(miscompiled[0].ends_with("-O3"), "{miscompiled:?}");
    }
}

/// UB-free programs are stable: all ten implementations agree.
#[test]
fn defined_programs_never_diverge() {
    let mut rng = Rng::new(0xdef1);
    for _case in 0..64 {
        let inits = random_inits(&mut rng);
        let stmts = random_stmts(&mut rng, 12);
        let src = render_program(&inits, &stmts);
        let checked = minc::check(&src)
            .unwrap_or_else(|e| panic!("generated program must compile: {e}\n{src}"));
        let vm = VmConfig::default();
        let mut outputs: Vec<(String, Vec<u8>, ExitStatus)> = Vec::new();
        for ci in CompilerImpl::default_set() {
            let bin = compile(&checked, ci);
            let r = execute(&bin, b"", &vm);
            outputs.push((ci.to_string(), r.stdout, r.status));
        }
        let (name0, out0, st0) = &outputs[0];
        for (name, out, st) in &outputs[1..] {
            assert_eq!(
                (out, st),
                (out0, st0),
                "{name0} and {name} disagree on a defined program:\n{src}"
            );
        }
    }
}

/// Pretty-printed programs re-parse to an equivalent tree.
#[test]
fn pretty_print_round_trips() {
    let mut rng = Rng::new(0x9e77);
    for _case in 0..64 {
        let inits = random_inits(&mut rng);
        let stmts = random_stmts(&mut rng, 10);
        let src = render_program(&inits, &stmts);
        let p1 = minc::parse(&src).unwrap();
        let printed = minc::pretty::program(&p1);
        let p2 =
            minc::parse(&printed).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        assert_eq!(printed, minc::pretty::program(&p2));
    }
}

/// MurmurHash3 is deterministic and single-byte changes never collide in
/// practice.
#[test]
fn murmur_sensitivity() {
    let mut rng = Rng::new(0x3a5);
    for _case in 0..64 {
        let data: Vec<u8> = (0..rng.below(256)).map(|_| rng.byte()).collect();
        assert_eq!(hash64(&data), hash64(&data));
        if !data.is_empty() {
            let mut other = data.clone();
            let idx = rng.below(other.len());
            other[idx] ^= 0x5a;
            if other != data {
                assert_ne!(hash64(&data), hash64(&other));
            }
        }
    }
}

/// Output filters are idempotent: scrubbing twice equals scrubbing once.
#[test]
fn filters_idempotent() {
    let mut rng = Rng::new(0xf11);
    let filters = [
        OutputFilter::Timestamps,
        OutputFilter::PointerAddresses,
        OutputFilter::LongNumbers { min_digits: 6 },
    ];
    for _case in 0..64 {
        let data: Vec<u8> = (0..rng.below(200)).map(|_| rng.byte()).collect();
        let once = apply_filters(&data, &filters);
        let twice = apply_filters(&once, &filters);
        assert_eq!(once, twice, "filters not idempotent on {data:?}");
    }
}

/// Subset detection is monotone under inclusion.
#[test]
fn subset_detection_monotone() {
    let mut rng = Rng::new(0x50b);
    for _case in 0..256 {
        let hashes: Vec<u64> = (0..10).map(|_| rng.next_u64() % 8).collect();
        let small_mask = (rng.next_u64() % 1024) as u32;
        let extra = (rng.next_u64() % 1024) as u32;
        let big_mask = small_mask | extra;
        if detected_by(&hashes, small_mask) {
            assert!(
                detected_by(&hashes, big_mask),
                "{hashes:?} {small_mask:b} {big_mask:b}"
            );
        }
    }
}

/// Havoc mutants respect the length bound and campaigns of the RNG are
/// reproducible.
#[test]
fn havoc_respects_bounds() {
    let mut meta = Rng::new(0xabc);
    for _case in 0..64 {
        let seed = meta.next_u64();
        let input: Vec<u8> = (0..1 + meta.below(63)).map(|_| meta.byte()).collect();
        let mut r1 = Rng::new(seed);
        let mut r2 = Rng::new(seed);
        let a = fuzzing::mutate::havoc(&input, &mut r1, 64);
        let b = fuzzing::mutate::havoc(&input, &mut r2, 64);
        assert_eq!(a, b);
        assert!(a.len() <= 64);
        assert!(!a.is_empty());
    }
}
