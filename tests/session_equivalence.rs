//! Persistent-mode equivalence regression suite.
//!
//! Pins the central guarantee of `minc_vm::ExecSession`: a reused session
//! is **bit-for-bit** equivalent to a fresh `execute()` — same status,
//! same stdout, same step count — on every program in the target catalog,
//! for every compiler implementation, across input batches that include
//! trap-, fault-, and timeout-producing inputs mid-batch (dirty-state
//! isolation). If a session ever diverged from a fresh VM, CompDiff would
//! report phantom discrepancies, so this suite is the safety net under
//! the entire persistent-mode optimization.

use fuzzing::{CoverageMap, CoveredHooks};
use minc_compile::{compile_source, Binary, CompilerImpl};
use minc_vm::{execute, execute_with_hooks, ExecResult, ExecSession, NoHooks, VmConfig};
use targets::{build, catalog};

/// Inputs exercised against every binary: empty, short, the magic header
/// with assorted commands, malformed headers, long and binary-ish data.
fn input_batch(magic: [u8; 2]) -> Vec<Vec<u8>> {
    let mut inputs: Vec<Vec<u8>> = vec![
        Vec::new(),
        vec![0x00],
        b"A".to_vec(),
        vec![magic[0]],
        vec![magic[0], magic[1]],
        vec![magic[0], magic[1], 0x00, b'A'],
        vec![magic[0], magic[1], 0xFF, 0xFF],
        vec![magic[1], magic[0], 0x01, b'A'], // swapped magic
        b"not the magic at all".to_vec(),
        vec![magic[0], magic[1], 0x07, b'Z', b'Z', b'Z', b'Z', b'Z'],
    ];
    // A longer payload to push checksum loops through more bytes.
    let mut long = vec![magic[0], magic[1], 0x02];
    long.extend((0u8..64).map(|i| i.wrapping_mul(37)));
    inputs.push(long);
    inputs
}

/// Asserts session output == fresh output for every input, interleaving
/// the comparisons so any state leakage from input N corrupts input N+1.
fn assert_equivalent(label: &str, bin: &Binary, inputs: &[Vec<u8>], cfg: &VmConfig) {
    let mut session = ExecSession::new(bin);
    for (i, input) in inputs.iter().enumerate() {
        let fresh = execute(bin, input, cfg);
        let persistent = session.run(bin, input, cfg);
        assert_eq!(
            persistent, fresh,
            "{label}: input #{i} ({input:?}) diverged between persistent \
             session and fresh VM"
        );
    }
}

#[test]
fn all_catalog_targets_all_impls_match_fresh_execution() {
    let impls = CompilerImpl::default_set();
    for spec in catalog() {
        let target = build(&spec);
        let checked = minc::check(&target.src)
            .unwrap_or_else(|e| panic!("{} does not check: {e:?}", spec.name));
        let mut inputs = input_batch(spec.magic);
        // Ground-truth bug triggers reach the unstable/crashing arms, so
        // the batch contains the exact inputs whose junk-dependent
        // behaviour is most sensitive to residual session state.
        for bug in &spec.bugs {
            inputs.push(target.trigger(bug));
            // And re-run a benign input right after each trigger.
            inputs.push(vec![spec.magic[0], spec.magic[1], 0x00, b'A']);
        }
        for &ci in &impls {
            let bin = minc_compile::compile(&checked, ci);
            assert_equivalent(
                &format!("{}/{}", spec.name, ci),
                &bin,
                &inputs,
                &VmConfig::default(),
            );
        }
    }
}

#[test]
fn session_equivalence_survives_traps_and_faults_mid_batch() {
    // One program with segv, abort, sigfpe, heap, and clean paths, driven
    // through a batch that alternates crashing and clean inputs.
    let src = r#"
        int main() {
            char b[8];
            long n = read_input(b, 8L);
            if (n < 1) { printf("empty\n"); return 0; }
            if (b[0] == 's') { int* p = 0; *p = 1; }
            if (b[0] == 'a') { abort(); }
            if (b[0] == 'd') { int z = (int)n - (int)n; return 5 / z; }
            if (b[0] == 'h') {
                char* m = (char*)malloc(10000L);
                memset(m, (int)b[1], 10000L);
                printf("%d\n", (int)m[9999]);
                free(m);
                return 0;
            }
            if (b[0] == 'u') { int u; printf("junk %d\n", u); }
            printf("clean %ld\n", n);
            return 0;
        }
    "#;
    let batch: Vec<Vec<u8>> = [
        &b""[..],
        b"s!",
        b"ok",
        b"a",
        b"hX",
        b"d0",
        b"u?",
        b"clean",
        b"s",
        b"hY",
        b"again",
    ]
    .iter()
    .map(|s| s.to_vec())
    .collect();
    for ci in CompilerImpl::default_set() {
        let bin = compile_source(src, ci).unwrap();
        assert_equivalent(
            &format!("crashmix/{ci}"),
            &bin,
            &batch,
            &VmConfig::default(),
        );
    }
}

#[test]
fn session_equivalence_after_timeout_mid_batch() {
    // A timeout truncates the run with frames still live; the next run
    // must be unaffected. Small step budget makes input-driven loops spin
    // out while others finish.
    let src = r#"
        int main() {
            char b[4];
            long n = read_input(b, 4L);
            if (n > 0 && b[0] == 'L') {
                long i; long acc = 0;
                for (i = 0; i < 100000000; i++) { acc += i; }
                printf("%ld\n", acc);
            }
            printf("done\n");
            return 0;
        }
    "#;
    let cfg = VmConfig {
        step_limit: 50_000,
        ..Default::default()
    };
    let batch: Vec<Vec<u8>> = [&b"L!"[..], b"ok", b"L", b"x"]
        .iter()
        .map(|s| s.to_vec())
        .collect();
    for ci in ["gcc-O0", "clang-O3"] {
        let bin = compile_source(src, CompilerImpl::parse(ci).unwrap()).unwrap();
        assert_equivalent(&format!("timeout/{ci}"), &bin, &batch, &cfg);
    }
}

#[test]
fn differ_and_fuzzer_unit_programs_match_fresh_execution() {
    // The programs the differ/fuzzer unit tests rely on: their observed
    // behaviour under sessions must match fresh execution exactly, or the
    // engine's divergence verdicts would shift under persistent mode.
    let programs: &[&str] = &[
        // differ.rs: stable accumulate
        r#"int main() { int i; int acc = 0;
            for (i = 0; i < 16; i++) { acc += i * i; }
            printf("%d\n", acc); return 0; }"#,
        // differ.rs: Listing 1 overflow check
        r#"int dump_data(int offset, int len) {
            int size = 100;
            if (offset + len > size || offset < 0 || len < 0) { return -1; }
            if (offset + len < offset) { return -1; }
            return 0; }
           int main() { printf("r=%d\n", dump_data(2147483647 - 100, 101)); return 0; }"#,
        // differ.rs: uninitialized print
        "int main() { int u; printf(\"%d\\n\", u); return 0; }",
        // differ.rs: input-gated uninitialized read
        r#"int main() { char b[4]; long n = read_input(b, 4L);
            if (n > 0 && b[0] == '!') { int u; printf("%d\n", u); }
            printf("done\n"); return 0; }"#,
        // fuzzer.rs: staged magic bytes
        r#"int main() { char buf[8]; long n = read_input(buf, 8L);
            if (n < 3) return 0;
            if (buf[0] == 'F') { if (buf[1] == 'U') { if (buf[2] == 'Z') {
                int* p = 0; *p = 1; } } }
            return 0; }"#,
        // fuzzer.rs: coverage ladder
        r#"int main() { char buf[4]; long n = read_input(buf, 4L);
            if (n > 0 && buf[0] > 'a') { printf("1"); }
            if (n > 1 && buf[1] > 'b') { printf("2"); }
            if (n > 2 && buf[2] > 'c') { printf("3"); }
            return 0; }"#,
    ];
    let inputs: Vec<Vec<u8>> = [
        &b""[..],
        b"!x",
        b"FUZ",
        b"zzz",
        b"abc",
        b"\xff\x00\x01",
        b"longer-input-bytes",
    ]
    .iter()
    .map(|s| s.to_vec())
    .collect();
    for (pi, src) in programs.iter().enumerate() {
        for ci in CompilerImpl::default_set() {
            let bin = compile_source(src, ci).unwrap();
            assert_equivalent(
                &format!("unit-program #{pi}/{ci}"),
                &bin,
                &inputs,
                &VmConfig::default(),
            );
        }
    }
}

#[test]
fn session_with_coverage_hooks_matches_fresh_instrumented_execution() {
    // The fuzz loop runs sessions under CoveredHooks; both the ExecResult
    // and the coverage map must match a fresh instrumented execution.
    let src = r#"
        int main() {
            char b[8];
            long n = read_input(b, 8L);
            long i; int acc = 0;
            for (i = 0; i < n; i++) {
                if (b[i] > 'm') { acc += 2; } else { acc -= 1; }
            }
            printf("%d\n", acc);
            return acc < 0 ? 1 : 0;
        }
    "#;
    let bin = compile_source(src, CompilerImpl::parse("clang-O1").unwrap()).unwrap();
    let cfg = VmConfig::default();
    let mut session = ExecSession::new(&bin);
    for input in [&b""[..], b"abcxyz", b"zzzzzzz", b"m", b"nmnmnmn"] {
        let mut fresh_map = CoverageMap::new();
        let fresh: ExecResult = execute_with_hooks(
            &bin,
            input,
            &cfg,
            &mut CoveredHooks::new(&mut fresh_map, NoHooks),
        );
        let mut session_map = CoverageMap::new();
        let persistent = session.run_with_hooks(
            &bin,
            input,
            &cfg,
            &mut CoveredHooks::new(&mut session_map, NoHooks),
        );
        assert_eq!(persistent, fresh, "{input:?}");
        let fresh_edges: Vec<(usize, u8)> = fresh_map.buckets().collect();
        let session_edges: Vec<(usize, u8)> = session_map.buckets().collect();
        assert_eq!(session_edges, fresh_edges, "coverage differs on {input:?}");
    }
}

#[test]
fn run_input_sessions_matches_run_input_verdicts() {
    // The differ-level API: persistent sessions must produce the same
    // divergence verdicts and hashes as the one-shot path, including on
    // escalation-triggering (partial-timeout) workloads.
    let src = r#"
        int main() {
            char b[4];
            long n = read_input(b, 4L);
            if (n > 0 && b[0] == '!') { int u; printf("%d\n", u); }
            long i; long acc = 0;
            for (i = 0; i < 20000; i++) { acc += i; }
            printf("%ld\n", acc);
            return 0;
        }
    "#;
    let cfg = compdiff::DiffConfig {
        vm: VmConfig {
            step_limit: 150_000,
            ..Default::default()
        },
        ..Default::default()
    };
    let diff = compdiff::CompDiff::from_source_default(src, cfg).unwrap();
    let mut sessions = diff.make_sessions();
    for input in [&b""[..], b"!a", b"ok", b"!b", b""] {
        let fresh = diff.run_input(input);
        let persistent = diff.run_input_sessions(&mut sessions, input);
        assert_eq!(persistent.hashes, fresh.hashes, "{input:?}");
        assert_eq!(persistent.divergent, fresh.divergent, "{input:?}");
        assert_eq!(
            persistent.unresolved_timeout, fresh.unresolved_timeout,
            "{input:?}"
        );
    }
}
